//! Skewed triangles: what happens when one vertex is a hub.
//!
//! Compares three one-round strategies on a graph whose triangles mostly
//! pass through a single heavy vertex (Section 4 of the paper):
//!
//! * the vanilla HyperCube algorithm, which is oblivious to the skew,
//! * the skew-aware triangle algorithm of §4.2.2, which detects the heavy
//!   hitter and gives its residual join a dedicated block of servers,
//! * the single-server baseline, for scale.
//!
//! Run with `cargo run --release -p pq-core --example triangle_skew`.

use pq_core::baselines::single_server_join;
use pq_core::bounds::skew_bounds::triangle_skew_upper_bound;
use pq_core::prelude::*;
use pq_relation::Tuple;

/// Build a triangle database where vertex 0 participates in `hub` triangles
/// and the remaining tuples are matchings.
fn hub_database(m: usize, hub: usize, seed: u64) -> Database {
    let mut gen = DataGenerator::new(seed, 1 << 24);
    let mut db = Database::new(1 << 24);
    let base = 1u64 << 22;
    let mut s1 = gen.matching_relation(Schema::from_strs("S1", &["a", "b"]), m - hub);
    let mut s2 = gen.matching_relation(Schema::from_strs("S2", &["a", "b"]), m - hub);
    let mut s3 = gen.matching_relation(Schema::from_strs("S3", &["a", "b"]), m - hub);
    for i in 0..hub as u64 {
        s1.push(Tuple::from([0, base + i]));
        s2.push(Tuple::from([base + i, 2 * base + i]));
        s3.push(Tuple::from([2 * base + i, 0]));
    }
    db.insert(s1);
    db.insert(s2);
    db.insert(s3);
    db
}

fn main() {
    let query = ConjunctiveQuery::triangle();
    let m = 20_000;
    let p = 64;
    println!("triangle query over relations of {m} tuples, p = {p} servers\n");

    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>10}",
        "hub size", "vanilla HC load", "skew-aware load", "single server", "triangles"
    );
    for hub_fraction in [0.0, 0.1, 0.25, 0.5] {
        let hub = ((m as f64) * hub_fraction) as usize;
        let db = hub_database(m, hub.max(1), 11);

        let vanilla = run_hypercube(&query, &db, p, 5);
        let aware = run_triangle_skew_aware(&db, p, 5);
        let single = single_server_join(&query, &db, p);
        assert_eq!(
            vanilla.output.canonicalized(),
            aware.output.canonicalized(),
            "skew-aware and vanilla answers must agree"
        );
        println!(
            "{:>10} {:>16} {:>16} {:>16} {:>10}",
            hub.max(1),
            vanilla.metrics.max_load(),
            aware.metrics.max_load(),
            single.metrics.max_load(),
            aware.output.len()
        );
    }

    // Show the analytic upper-bound shape of §4.2.2 for the heaviest case.
    let hub = m / 2;
    let db = hub_database(m, hub, 11);
    let bits = db.bits_per_value() as f64;
    let m_bits = db.relation_size_bits("S1") as f64;
    let pair = (hub as f64 * 2.0 * bits) * (hub as f64 * 2.0 * bits);
    let bound = triangle_skew_upper_bound(m_bits, &[pair, 0.0, 0.0], p);
    println!(
        "\nanalytic skew-aware bound at hub = {hub}: ~{bound:.0} bits \
         (vanilla lower bound would be {:.0} bits under no skew)",
        m_bits / (p as f64).powf(2.0 / 3.0)
    );
}
