//! Quickstart: evaluate the triangle query with the one-round HyperCube
//! algorithm and compare the measured per-server load against the paper's
//! matching lower bound.
//!
//! Run with `cargo run --release -p pq-core --example quickstart`.

use pq_core::bounds::one_round::{lower_bound_load, space_exponent_lower_bound};
use pq_core::prelude::*;

fn main() {
    // The triangle query C3 = S1(x1,x2), S2(x2,x3), S3(x3,x1).
    let query = ConjunctiveQuery::triangle();
    println!("query: {query}");

    // A skew-free (matching) database: every value has degree one.
    let m = 20_000;
    let mut gen = DataGenerator::new(42, 1 << 24);
    let db = gen.matching_database(&[
        (Schema::from_strs("S1", &["a", "b"]), m),
        (Schema::from_strs("S2", &["a", "b"]), m),
        (Schema::from_strs("S3", &["a", "b"]), m),
    ]);
    println!(
        "input: 3 matching relations of {m} tuples each ({} bits total)",
        db.total_size_bits()
    );
    println!(
        "space-exponent lower bound for one round: eps >= {:.3}",
        space_exponent_lower_bound(&query)
    );

    // Run the HyperCube algorithm for a sweep of cluster sizes.
    println!("\n{:>6} {:>14} {:>14} {:>14} {:>8}", "p", "measured L", "L_lower", "ratio", "answers");
    for p in [8usize, 27, 64, 125, 216] {
        let run = run_hypercube(&query, &db, p, 7);
        let lower = lower_bound_load(&query, &db.sizes_bits(), p);
        println!(
            "{:>6} {:>14} {:>14.0} {:>14.2} {:>8}",
            p,
            run.metrics.max_load(),
            lower,
            run.metrics.max_load() as f64 / lower,
            run.output.len()
        );
    }

    // Cross-check correctness against the single-server oracle.
    let run = run_hypercube(&query, &db, 64, 7);
    let oracle = evaluate_sequential(&query, &db);
    assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    println!("\nHyperCube output matches the sequential oracle ({} triangles).", oracle.len());
}
