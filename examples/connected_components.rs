//! Connected components on the MPC simulator (Theorem 5.20).
//!
//! The paper shows that any tuple-based MPC algorithm with load
//! `O(M/p^{1−ε})` needs `Ω(log p)` rounds to compute the connected
//! components of a sparse graph. This example runs two concrete algorithms
//! on the hard instance family (long paths of matchings) and reports their
//! round counts and per-round loads: plain min-label propagation
//! (`Θ(diameter)` iterations) versus propagation with pointer jumping
//! (`Θ(log diameter)` iterations).
//!
//! Run with `cargo run --release -p pq-core --example connected_components`.

use pq_core::multiround::connected::{connected_components, CcStrategy};
use pq_core::prelude::*;

fn main() {
    let p = 32;
    println!("connected components on p = {p} servers\n");
    println!(
        "{:>8} {:>10} {:>22} {:>22} {:>14}",
        "layers", "edges", "propagation (iter/rounds)", "jumping (iter/rounds)", "max load bits"
    );
    for layers in [4usize, 8, 16, 32, 64] {
        let mut gen = DataGenerator::new(layers as u64, 1 << 24);
        let group = 2_000;
        let edges = gen.layered_matching_graph(group, layers);

        let prop = connected_components(&edges, p, 7, CcStrategy::Propagation);
        let jump = connected_components(&edges, p, 7, CcStrategy::PointerJumping);
        assert_eq!(prop.labels.canonicalized().len(), jump.labels.canonicalized().len());
        println!(
            "{:>8} {:>10} {:>12}/{:>6} {:>15}/{:>6} {:>14}",
            layers,
            edges.len(),
            prop.iterations,
            prop.metrics.num_rounds(),
            jump.iterations,
            jump.metrics.num_rounds(),
            jump.metrics.max_load()
        );
    }

    println!(
        "\nPropagation rounds grow linearly with the component diameter; \
         pointer jumping grows logarithmically — the Ω(log p) lower bound of \
         Theorem 5.20 says no tuple-based algorithm with per-round load \
         O(M/p^(1-eps)) can do asymptotically better than that."
    );
}
