//! Multi-round plans for long chain queries (Section 5 of the paper).
//!
//! Computes `L_16` (a 16-way chain join) with bushy plans of different
//! fan-ins and shows the rounds/load tradeoff of Example 5.2 and Table 3:
//! a binary-join plan needs `log2 16 = 4` rounds at load `O(M/p)`, a 4-way
//! plan needs `log4 16 = 2` rounds at load `O(M/√p)`, and the one-round
//! HyperCube needs load `O(M/p^{1/8})`.
//!
//! Run with `cargo run --release -p pq-core --example multi_round_paths`.

use pq_core::bounds::multiround::{chain_rounds_lower_bound, rounds_upper_bound};
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan, left_deep_plan};
use pq_core::prelude::*;

fn main() {
    let k = 16;
    let query = ConjunctiveQuery::chain(k);
    let m = 30_000;
    let p = 64;

    // Matching relations: the composition of 16 partial matchings.
    let mut gen = DataGenerator::new(3, 1 << 24);
    let specs: Vec<(Schema, usize)> = (1..=k)
        .map(|j| (Schema::from_strs(&format!("S{j}"), &["a", "b"]), m))
        .collect();
    let db = gen.matching_database(&specs);
    let m_bits = db.relation_size_bits("S1");
    println!("chain query L_{k} over {k} matching relations of {m} tuples, p = {p}");
    println!("single-relation size M = {m_bits} bits\n");

    let one_round = run_hypercube(&query, &db, p, 9);
    println!(
        "one round  : load {:>10} bits  (theory: M/p^(1/tau*) = {:.0})",
        one_round.metrics.max_load(),
        m_bits as f64 / (p as f64).powf(1.0 / 8.0)
    );

    println!(
        "\n{:>12} {:>8} {:>14} {:>14} {:>10}",
        "plan", "rounds", "max load", "M/p reference", "answers"
    );
    for (label, plan) in [
        ("bushy fan-2", bushy_chain_plan(k, 2)),
        ("bushy fan-4", bushy_chain_plan(k, 4)),
        ("left-deep", left_deep_plan(&query)),
    ] {
        let run = execute_plan(&plan, &query, &db, p, 17);
        println!(
            "{:>12} {:>8} {:>14} {:>14} {:>10}",
            label,
            run.metrics.num_rounds(),
            run.metrics.max_load(),
            m_bits / p as u64,
            run.output.len()
        );
    }

    println!(
        "\nround bounds for L_{k}: lower (eps=0) = {}, upper (eps=0) = {}, \
         lower (eps=1/2) = {}, upper (eps=1/2) = {}",
        chain_rounds_lower_bound(k, 0.0),
        rounds_upper_bound(&query, 0.0),
        chain_rounds_lower_bound(k, 0.5),
        rounds_upper_bound(&query, 0.5),
    );
}
