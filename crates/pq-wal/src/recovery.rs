//! Crash recovery: rebuild the state a WAL directory describes.
//!
//! The pass is deliberately simple — and therefore easy to trust:
//!
//! 1. load the **newest checkpoint that verifies** (corrupt or deleted
//!    newer ones fall back to the previous checkpoint, which retention
//!    keeps exactly for this case);
//! 2. scan the segment log and collect every record with an LSN **after**
//!    the checkpoint, stopping at the first framing error or LSN
//!    discontinuity (the torn tail of an interrupted write);
//! 3. hand the caller the checkpointed state plus the ordered delta and
//!    dictionary-extension payloads to replay.
//!
//! The result is always a **prefix** of the pre-crash history: either
//! everything, or everything up to the record the crash tore. This crate
//! cannot replay the deltas itself (that needs the engine's apply path),
//! so the engine's durability layer drives the replay from this data.

use crate::checkpoint::{load_latest_checkpoint, Checkpoint};
use crate::log::scan_dir;
use crate::record::{Lsn, RelationInserts, WalRecord};
use pq_relation::ValueDictionary;
use std::io;
use std::path::Path;

/// One delta payload to replay, in LSN order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredDelta {
    /// The LSN the delta was logged at.
    pub lsn: Lsn,
    /// The per-relation insert batches, exactly as logged.
    pub inserts: Vec<RelationInserts>,
}

/// Everything a WAL directory says about the pre-crash state.
#[derive(Debug)]
pub struct Recovery {
    /// The newest checkpoint that verified, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Delta payloads with LSN after the checkpoint, in LSN order.
    pub deltas: Vec<RecoveredDelta>,
    /// Dictionary extensions with LSN after the checkpoint, in LSN order
    /// (`first_id`, new tokens). Apply with [`apply_dict_extensions`].
    pub dict_extensions: Vec<(u64, Vec<String>)>,
    /// Highest LSN seen anywhere (log or checkpoint); 0 for a fresh dir.
    pub last_lsn: Lsn,
    /// Log records scanned past the checkpoint (all kinds).
    pub records_replayed: u64,
    /// Valid log bytes scanned (whole log, not just past the checkpoint).
    pub bytes_scanned: u64,
    /// True when the log ended in a torn/corrupt tail that was dropped.
    pub torn_tail: bool,
    /// Corrupt checkpoint files skipped while looking for a valid one.
    pub checkpoints_discarded: u64,
}

impl Recovery {
    /// Total rows across all recovered delta payloads.
    pub fn total_rows(&self) -> usize {
        self.deltas.iter().flat_map(|d| d.inserts.iter()).map(|i| i.rows).sum()
    }
}

/// Read a WAL directory back into a [`Recovery`]. Never modifies the
/// directory (the torn tail is *reported*, not truncated — [`crate::Wal::open`]
/// truncates when the log is reopened for writing). A missing or empty
/// directory recovers to the empty state.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    let (checkpoint, checkpoints_discarded) = load_latest_checkpoint(dir)?;
    let checkpoint_lsn = checkpoint.as_ref().map_or(0, |c| c.covered_lsn);
    let scan = scan_dir(dir)?;
    let mut deltas = Vec::new();
    let mut dict_extensions = Vec::new();
    let mut records_replayed = 0;
    for (lsn, record) in scan.records() {
        if *lsn <= checkpoint_lsn {
            continue;
        }
        records_replayed += 1;
        match record {
            WalRecord::DeltaApplied { inserts } => {
                deltas.push(RecoveredDelta { lsn: *lsn, inserts: inserts.clone() });
            }
            WalRecord::DictExtend { first_id, tokens } => {
                dict_extensions.push((*first_id, tokens.clone()));
            }
            // Checkpoint markers carry no redo state; the files they
            // describe were already considered above.
            WalRecord::CheckpointStart
            | WalRecord::SnapshotWritten { .. }
            | WalRecord::CheckpointEnd { .. } => {}
        }
    }
    Ok(Recovery {
        checkpoint,
        deltas,
        dict_extensions,
        last_lsn: scan.last_lsn.max(checkpoint_lsn),
        records_replayed,
        bytes_scanned: scan.bytes,
        torn_tail: scan.torn,
        checkpoints_discarded,
    })
}

/// Replay recovered dictionary extensions onto `dictionary`. Tolerates
/// overlap (extensions the base dictionary already contains re-encode to
/// their existing ids); a **gap** — an extension starting past the end of
/// the dictionary — means the log and the base state disagree and is an
/// error.
pub fn apply_dict_extensions(
    dictionary: &mut ValueDictionary,
    extensions: &[(u64, Vec<String>)],
) -> Result<(), String> {
    for (first_id, tokens) in extensions {
        let len = dictionary.len() as u64;
        if *first_id > len {
            return Err(format!(
                "dictionary extension starts at id {first_id} but only {len} token(s) exist"
            ));
        }
        let skip = (len - first_id) as usize;
        for token in tokens.iter().skip(skip) {
            dictionary.encode(token);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::checkpoint_file_name;
    use crate::log::{SyncPolicy, Wal, WalOptions};
    use crate::testutil::TempDir;
    use pq_relation::{Database, Relation, Schema};
    use std::fs;

    fn delta_record(n: u64) -> WalRecord {
        WalRecord::DeltaApplied {
            inserts: vec![RelationInserts {
                relation: "E".into(),
                arity: 2,
                rows: 1,
                values: vec![n, n + 1],
            }],
        }
    }

    fn state() -> (Database, ValueDictionary) {
        let mut database = Database::new(8);
        database.insert(Relation::from_rows(
            Schema::from_strs("E", &["x", "y"]),
            vec![vec![0, 1]],
        ));
        (database, ValueDictionary::new())
    }

    #[test]
    fn fresh_directory_recovers_to_empty() {
        let dir = TempDir::new("rec-fresh");
        let recovery = recover(&dir.path().join("does-not-exist")).unwrap();
        assert!(recovery.checkpoint.is_none());
        assert!(recovery.deltas.is_empty());
        assert_eq!(recovery.last_lsn, 0);
        assert!(!recovery.torn_tail);
    }

    #[test]
    fn replays_only_past_the_checkpoint() {
        let dir = TempDir::new("rec-suffix");
        let (database, dictionary) = state();
        let wal = Wal::open(dir.path(), WalOptions::with_sync(SyncPolicy::Always)).unwrap();
        wal.append(&delta_record(1)).unwrap();
        wal.append(&delta_record(2)).unwrap();
        let covered = wal.checkpoint(&database, &dictionary).unwrap();
        wal.append(&delta_record(3)).unwrap();
        wal.append(&delta_record(4)).unwrap();
        drop(wal);
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.checkpoint.as_ref().unwrap().covered_lsn, covered);
        let lsns: Vec<Lsn> = recovery.deltas.iter().map(|d| d.lsn).collect();
        assert_eq!(lsns, vec![covered + 3, covered + 4]);
        assert_eq!(recovery.total_rows(), 2);
        assert!(!recovery.torn_tail);
    }

    #[test]
    fn deleted_newest_checkpoint_falls_back_to_the_previous() {
        let dir = TempDir::new("rec-del-ckpt");
        let (database, dictionary) = state();
        let wal = Wal::open(dir.path(), WalOptions::with_sync(SyncPolicy::Always)).unwrap();
        wal.append(&delta_record(1)).unwrap();
        let first = wal.checkpoint(&database, &dictionary).unwrap();
        wal.append(&delta_record(2)).unwrap();
        let second = wal.checkpoint(&database, &dictionary).unwrap();
        wal.append(&delta_record(3)).unwrap();
        drop(wal);
        fs::remove_file(dir.path().join(checkpoint_file_name(second))).unwrap();
        let recovery = recover(dir.path()).unwrap();
        // Fell back to the first checkpoint; every delta after it — the one
        // covered by the lost checkpoint too — is still in the retained log.
        assert_eq!(recovery.checkpoint.as_ref().unwrap().covered_lsn, first);
        let rows: Vec<u64> = recovery
            .deltas
            .iter()
            .flat_map(|d| d.inserts.iter())
            .flat_map(|i| i.values.clone())
            .collect();
        assert_eq!(rows, vec![2, 3, 3, 4]);
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let dir = TempDir::new("rec-torn");
        let wal = Wal::open(dir.path(), WalOptions::with_sync(SyncPolicy::Always)).unwrap();
        for i in 1..=5 {
            wal.append(&delta_record(i)).unwrap();
        }
        drop(wal);
        let scan = scan_dir(dir.path()).unwrap();
        let segment = scan.segments.last().unwrap();
        let path = segment.path.clone();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.deltas.len(), 4, "the torn fifth record is dropped");
        assert_eq!(recovery.last_lsn, 4);
    }

    #[test]
    fn dict_extensions_apply_with_overlap_but_not_gaps() {
        let mut dictionary = ValueDictionary::new();
        dictionary.encode("a");
        dictionary.encode("b");
        // Overlap: extension re-states "b" then adds "c".
        apply_dict_extensions(&mut dictionary, &[(1, vec!["b".into(), "c".into()])]).unwrap();
        assert_eq!(dictionary.tokens(), ["a", "b", "c"]);
        // Gap: starts past the end.
        let err = apply_dict_extensions(&mut dictionary, &[(5, vec!["z".into()])]);
        assert!(err.is_err());
    }
}
