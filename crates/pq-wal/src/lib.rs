//! # pq-wal — write-ahead logging and crash recovery for the delta path
//!
//! A dependency-free (std-only, offline-safe) durability subsystem for the
//! workspace. The engine's typed delta path (`Engine::apply`) gets its
//! redo log here: every delta is appended — CRC-framed, LSN'd — to a
//! segment log **before** it is applied, checkpoints bound replay work by
//! serialising the full snapshot, and recovery rebuilds exactly the
//! longest durable prefix of the pre-crash history.
//!
//! The paper this repository reproduces (Beame, Koutris and Suciu,
//! *Communication Cost in Parallel Query Processing*) analyses stateless
//! rounds over a *given* database; a serving engine additionally has to
//! keep that database across process deaths. pq-wal is the smallest
//! log-then-apply design that does: logical redo records (the deltas
//! themselves, in the same flat row encoding the cluster codec ships),
//! physical full checkpoints, and a scan-and-replay recovery with no undo,
//! because the delta path is insert-only and applies atomically.
//!
//! ## Pieces
//!
//! - [`record`]: the record types ([`WalRecord`]) and their CRC32-framed
//!   binary encoding; decoding never panics or over-reads — corruption
//!   surfaces as a typed [`RecordError`].
//! - [`log`]: the segment log manager ([`Wal`]) with [`SyncPolicy`]
//!   `always` / `group-commit` / `never`, explicit [`Wal::flush_up_to`],
//!   torn-tail truncation on open, and metrics via `pq-obs`.
//! - [`checkpoint`]: atomic (tmp + fsync + rename) snapshot files of the
//!   database and value dictionary; retention keeps the two newest so even
//!   losing the newest checkpoint file recovers from the previous one.
//! - [`recovery`]: the read-only pass — newest valid checkpoint, then the
//!   log suffix after it, stopping at the first torn frame.
//! - [`crc`]: the shared table-driven CRC-32.
//!
//! ## Example
//!
//! ```
//! use pq_wal::{recover, RelationInserts, SyncPolicy, Wal, WalOptions, WalRecord};
//!
//! let dir = std::env::temp_dir().join(format!("pq-wal-doc-{}", std::process::id()));
//! let wal = Wal::open(&dir, WalOptions::with_sync(SyncPolicy::Always))?;
//! let lsn = wal.append(&WalRecord::DeltaApplied {
//!     inserts: vec![RelationInserts {
//!         relation: "E".into(),
//!         arity: 2,
//!         rows: 1,
//!         values: vec![7, 8],
//!     }],
//! })?;
//! assert_eq!(lsn, 1);
//!
//! let recovery = recover(&dir)?;
//! assert_eq!(recovery.deltas.len(), 1);
//! assert_eq!(recovery.last_lsn, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod crc;
pub mod log;
pub mod record;
pub mod recovery;
#[cfg(test)]
mod testutil;

pub use checkpoint::{
    checkpoint_file_name, load_checkpoint_file, load_latest_checkpoint, write_checkpoint_file,
    Checkpoint, CheckpointError,
};
pub use crc::{crc32, Crc32};
pub use log::{SyncPolicy, Wal, WalOptions};
pub use record::{
    encode_record, Lsn, RecordError, RecordReader, RelationInserts, WalRecord, MAX_FRAME_BYTES,
};
pub use recovery::{apply_dict_extensions, recover, RecoveredDelta, Recovery};
