//! The LSN'd append-only log manager: segment files, sync policies, and
//! the shared scan that both [`crate::recovery`] and [`Wal::open`] use.
//!
//! A WAL directory holds numbered **segment files** `wal-<lsn>.seg` (hex
//! first-LSN, so a lexicographic sort is an LSN sort) plus the checkpoint
//! files of [`crate::checkpoint`]. Records are appended to the newest
//! segment with one `write(2)` each — so an unclean process death loses at
//! most what the kernel had not yet accepted, never already-written
//! records — and `fsync` is governed by the [`SyncPolicy`]:
//!
//! * [`SyncPolicy::Always`] — fsync after every append: no committed
//!   record is ever lost, at ~one disk round-trip per delta;
//! * [`SyncPolicy::GroupCommit`] — fsync once per accumulated batch
//!   (bytes or records, whichever threshold trips first): bounded loss on
//!   machine crash, near-`Never` latency under load;
//! * [`SyncPolicy::Never`] — never fsync on append (the OS page cache
//!   decides): survives process crashes (`kill -9`) but not power loss.
//!
//! Explicit [`Wal::flush_up_to`] honours durability regardless of policy —
//! checkpoints and clean shutdowns use it.

use crate::checkpoint::{self, latest_checkpoint_lsn};
use crate::record::{encode_record, Lsn, RecordError, RecordReader, WalRecord};
use pq_obs::{Counter, Histogram, MetricsRegistry};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// When the log manager calls `fsync` on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record.
    Always,
    /// fsync once per accumulated batch (see [`WalOptions`] thresholds).
    GroupCommit,
    /// Never fsync on append; only explicit flushes reach the disk.
    Never,
}

impl SyncPolicy {
    /// Parse the CLI spelling: `always`, `group-commit` (or `group`),
    /// `never`.
    pub fn parse(text: &str) -> Option<SyncPolicy> {
        match text.to_ascii_lowercase().as_str() {
            "always" => Some(SyncPolicy::Always),
            "group-commit" | "group" => Some(SyncPolicy::GroupCommit),
            "never" => Some(SyncPolicy::Never),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::GroupCommit => "group-commit",
            SyncPolicy::Never => "never",
        }
    }
}

/// Tunables of one [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// The fsync policy (default [`SyncPolicy::GroupCommit`]).
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the active one reaches this size
    /// (default 16 MiB).
    pub segment_bytes: u64,
    /// Group-commit: fsync once this many unsynced bytes accumulate
    /// (default 64 KiB).
    pub group_commit_bytes: u64,
    /// Group-commit: fsync once this many unsynced records accumulate
    /// (default 64).
    pub group_commit_records: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync: SyncPolicy::GroupCommit,
            segment_bytes: 16 << 20,
            group_commit_bytes: 64 << 10,
            group_commit_records: 64,
        }
    }
}

impl WalOptions {
    /// Defaults with a different sync policy.
    pub fn with_sync(sync: SyncPolicy) -> Self {
        WalOptions { sync, ..WalOptions::default() }
    }
}

/// Name of the segment file whose first record is `start`.
pub(crate) fn segment_file_name(start: Lsn) -> String {
    format!("wal-{start:016x}.seg")
}

/// Parse a segment file name back to its first LSN.
pub(crate) fn parse_segment_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    Lsn::from_str_radix(hex, 16).ok()
}

/// One scanned segment: its records (valid prefix) and where that prefix
/// ends.
#[derive(Debug)]
pub(crate) struct ScannedSegment {
    pub path: PathBuf,
    pub records: Vec<(Lsn, WalRecord)>,
    /// Byte length of the valid record prefix (file may be longer when the
    /// tail is torn).
    pub valid_bytes: usize,
    /// The framing error the scan stopped at, if any.
    pub error: Option<RecordError>,
}

/// The result of scanning a WAL directory: every decodable record in LSN
/// order, stopping at the first framing error or LSN discontinuity (the
/// torn tail — everything after it is unreachable).
#[derive(Debug)]
pub(crate) struct Scan {
    pub segments: Vec<ScannedSegment>,
    /// LSN of the last valid record (0 when none).
    pub last_lsn: Lsn,
    /// Total valid records seen.
    pub records: u64,
    /// Total valid bytes seen.
    pub bytes: u64,
    /// True when the scan stopped early (torn tail or discontinuity).
    pub torn: bool,
}

impl Scan {
    /// Iterate over all valid records in LSN order.
    pub fn records(&self) -> impl Iterator<Item = &(Lsn, WalRecord)> {
        self.segments.iter().flat_map(|s| s.records.iter())
    }
}

/// Scan every segment of `dir` in LSN order. Never modifies anything —
/// [`Wal::open`] is the destructive counterpart that truncates what this
/// scan rejects.
pub(crate) fn scan_dir(dir: &Path) -> io::Result<Scan> {
    let mut starts: Vec<(Lsn, PathBuf)> = Vec::new();
    if dir.is_dir() {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(start) = entry.file_name().to_str().and_then(parse_segment_name) {
                starts.push((start, entry.path()));
            }
        }
    }
    starts.sort();
    let mut scan =
        Scan { segments: Vec::new(), last_lsn: 0, records: 0, bytes: 0, torn: false };
    for (_, path) in starts {
        if scan.torn {
            // Everything after a torn segment is unreachable: report it as
            // an (empty) segment so open() can delete it, decode nothing.
            scan.segments.push(ScannedSegment {
                path,
                records: Vec::new(),
                valid_bytes: 0,
                error: None,
            });
            continue;
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let mut reader = RecordReader::new(&bytes);
        let mut segment = ScannedSegment {
            path,
            records: Vec::new(),
            valid_bytes: 0,
            error: None,
        };
        loop {
            match reader.next() {
                Ok(Some((lsn, record))) => {
                    if scan.last_lsn != 0 && lsn != scan.last_lsn + 1 {
                        // An LSN discontinuity is as terminal as a bad CRC:
                        // the continuous prefix ends here.
                        segment.error = Some(RecordError::Malformed(format!(
                            "LSN {lsn} after {}; log is not continuous",
                            scan.last_lsn
                        )));
                        scan.torn = true;
                        break;
                    }
                    scan.last_lsn = lsn;
                    scan.records += 1;
                    segment.records.push((lsn, record));
                    segment.valid_bytes = reader.offset();
                }
                Ok(None) => break,
                Err(error) => {
                    segment.error = Some(error);
                    scan.torn = true;
                    break;
                }
            }
        }
        scan.bytes += segment.valid_bytes as u64;
        scan.segments.push(segment);
    }
    Ok(scan)
}

/// Best-effort directory fsync (makes file creations/renames durable on
/// unix; a no-op error elsewhere is ignored).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Pre-resolved metric handles (attached via [`Wal::set_registry`]).
#[derive(Debug)]
struct WalObs {
    records_total: Counter,
    bytes_total: Counter,
    fsyncs_total: Counter,
    fsync_micros: Histogram,
    checkpoints_total: Counter,
    segments_removed_total: Counter,
}

/// Mutable log state behind the [`Wal`]'s lock.
#[derive(Debug)]
struct LogState {
    file: File,
    segment_path: PathBuf,
    segment_len: u64,
    next_lsn: Lsn,
    /// Every record with LSN ≤ this has been fsynced.
    synced_lsn: Lsn,
    unsynced_bytes: u64,
    unsynced_records: u64,
}

/// The write-ahead log manager: an opened WAL directory accepting
/// appends, flushes and checkpoints. Thread-safe (appends serialise on an
/// internal lock); cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    state: Mutex<LogState>,
    obs: OnceLock<WalObs>,
}

fn lock<'a>(state: &'a Mutex<LogState>) -> MutexGuard<'a, LogState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Wal {
    /// Open (or create) the WAL in `dir` for appending.
    ///
    /// Scans the existing segments, **truncates** the torn tail (the first
    /// record with a bad checksum, short frame or LSN discontinuity, and
    /// everything after it — exactly what recovery refuses to replay) and
    /// positions the next LSN after the last valid record, or after the
    /// newest checkpoint when the log is empty.
    pub fn open(dir: impl Into<PathBuf>, options: WalOptions) -> io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        checkpoint::remove_stale_tmp_files(&dir);
        let scan = scan_dir(&dir)?;
        // Truncate the invalid tail so re-appended LSNs can never collide
        // with unreadable leftovers.
        let mut torn_seen = false;
        let mut keep: Vec<&ScannedSegment> = Vec::new();
        for segment in &scan.segments {
            if torn_seen {
                fs::remove_file(&segment.path)?;
                continue;
            }
            if segment.error.is_some() {
                torn_seen = true;
                if segment.records.is_empty() {
                    fs::remove_file(&segment.path)?;
                    continue;
                }
                let file = OpenOptions::new().write(true).open(&segment.path)?;
                file.set_len(segment.valid_bytes as u64)?;
                file.sync_all()?;
            }
            keep.push(segment);
        }
        let next_lsn = scan.last_lsn.max(latest_checkpoint_lsn(&dir)) + 1;
        // Append to the last kept segment when it has room, else start a
        // fresh one.
        let (segment_path, segment_len) = match keep.last() {
            Some(last) if (last.valid_bytes as u64) < options.segment_bytes => {
                (last.path.clone(), last.valid_bytes as u64)
            }
            _ => (dir.join(segment_file_name(next_lsn)), 0),
        };
        let file = OpenOptions::new().create(true).append(true).open(&segment_path)?;
        sync_dir(&dir);
        Ok(Wal {
            dir,
            options,
            state: Mutex::new(LogState {
                file,
                segment_path,
                segment_len,
                next_lsn,
                synced_lsn: next_lsn - 1,
                unsynced_bytes: 0,
                unsynced_records: 0,
            }),
            obs: OnceLock::new(),
        })
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured options.
    pub fn options(&self) -> &WalOptions {
        &self.options
    }

    /// Resolve metric handles against `registry` (first call wins):
    /// `pq_wal_records_total`, `pq_wal_bytes_total`, `pq_wal_fsyncs_total`,
    /// `pq_wal_fsync_micros`, `pq_wal_checkpoints_total`,
    /// `pq_wal_segments_removed_total`.
    pub fn set_registry(&self, registry: &MetricsRegistry) {
        let _ = self.obs.set(WalObs {
            records_total: registry.counter(
                "pq_wal_records_total",
                &[],
                "Records appended to the write-ahead log",
            ),
            bytes_total: registry.counter(
                "pq_wal_bytes_total",
                &[],
                "Bytes appended to the write-ahead log",
            ),
            fsyncs_total: registry.counter(
                "pq_wal_fsyncs_total",
                &[],
                "fsync calls issued by the log manager",
            ),
            fsync_micros: registry.histogram(
                "pq_wal_fsync_micros",
                &[],
                "Latency of log-manager fsync calls",
            ),
            checkpoints_total: registry.counter(
                "pq_wal_checkpoints_total",
                &[],
                "Checkpoints completed",
            ),
            segments_removed_total: registry.counter(
                "pq_wal_segments_removed_total",
                &[],
                "Dead segment files truncated by checkpoints",
            ),
        });
    }

    /// LSN of the most recently appended record (0 when the log is empty).
    pub fn last_lsn(&self) -> Lsn {
        lock(&self.state).next_lsn - 1
    }

    /// LSN of the most recent record known durable (fsynced).
    pub fn synced_lsn(&self) -> Lsn {
        lock(&self.state).synced_lsn
    }

    /// Append one record; returns its LSN. Durability follows the
    /// [`SyncPolicy`].
    pub fn append(&self, record: &WalRecord) -> io::Result<Lsn> {
        self.append_all(std::slice::from_ref(record))
    }

    /// Append several records as one batch (one write, at most one fsync);
    /// returns the LSN of the **last** record. An empty batch returns the
    /// current last LSN.
    pub fn append_all(&self, records: &[WalRecord]) -> io::Result<Lsn> {
        let mut state = lock(&self.state);
        if records.is_empty() {
            return Ok(state.next_lsn - 1);
        }
        if state.segment_len >= self.options.segment_bytes {
            self.rotate(&mut state)?;
        }
        let mut buf = Vec::new();
        for record in records {
            let lsn = state.next_lsn;
            encode_record(record, lsn, &mut buf);
            state.next_lsn += 1;
        }
        state.file.write_all(&buf)?;
        state.segment_len += buf.len() as u64;
        state.unsynced_bytes += buf.len() as u64;
        state.unsynced_records += records.len() as u64;
        let must_sync = match self.options.sync {
            SyncPolicy::Always => true,
            SyncPolicy::GroupCommit => {
                state.unsynced_bytes >= self.options.group_commit_bytes
                    || state.unsynced_records >= self.options.group_commit_records
            }
            SyncPolicy::Never => false,
        };
        if must_sync {
            self.fsync(&mut state)?;
        }
        if let Some(obs) = self.obs.get() {
            obs.records_total.add(records.len() as u64);
            obs.bytes_total.add(buf.len() as u64);
        }
        Ok(state.next_lsn - 1)
    }

    /// Make every record with LSN ≤ `lsn` durable, regardless of policy.
    pub fn flush_up_to(&self, lsn: Lsn) -> io::Result<()> {
        let mut state = lock(&self.state);
        if lsn <= state.synced_lsn {
            return Ok(());
        }
        self.fsync(&mut state)
    }

    /// fsync the active segment (rotation keeps earlier segments synced).
    fn fsync(&self, state: &mut LogState) -> io::Result<()> {
        let start = Instant::now();
        state.file.sync_data()?;
        state.synced_lsn = state.next_lsn - 1;
        state.unsynced_bytes = 0;
        state.unsynced_records = 0;
        if let Some(obs) = self.obs.get() {
            obs.fsyncs_total.inc();
            obs.fsync_micros.observe_micros(start.elapsed());
        }
        Ok(())
    }

    /// Close the active segment (fsynced regardless of policy, so only the
    /// active segment is ever unsynced) and start a fresh one.
    fn rotate(&self, state: &mut LogState) -> io::Result<()> {
        self.fsync(state)?;
        let path = self.dir.join(segment_file_name(state.next_lsn));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        sync_dir(&self.dir);
        state.file = file;
        state.segment_path = path;
        state.segment_len = 0;
        Ok(())
    }

    /// Write a full checkpoint of `database` + `dictionary` and truncate
    /// what it makes dead. Returns the covered LSN.
    ///
    /// The sequence is crash-safe at every step — recovery falls back to
    /// the previous checkpoint until the new one is durably renamed:
    ///
    /// 1. append `CheckpointStart` (its LSN `C` is what the snapshot
    ///    covers) and flush the log up to `C`;
    /// 2. serialise the snapshot to `ckpt-C.tmp`, fsync, rename to its
    ///    final name, fsync the directory;
    /// 3. append `SnapshotWritten(C)` + `CheckpointEnd(C)`;
    /// 4. retain the two newest checkpoints, delete older ones and every
    ///    segment fully covered by the **older retained** checkpoint — so
    ///    even losing the newest checkpoint file entirely still recovers
    ///    the full state from the older one plus the retained log.
    ///
    /// The caller must guarantee `database`/`dictionary` reflect every
    /// record up to `C` and that no concurrent append interleaves (the
    /// engine holds its update lock across checkpoints).
    pub fn checkpoint(
        &self,
        database: &pq_relation::Database,
        dictionary: &pq_relation::ValueDictionary,
    ) -> io::Result<Lsn> {
        let covered = self.append(&WalRecord::CheckpointStart)?;
        self.flush_up_to(covered)?;
        checkpoint::write_checkpoint_file(&self.dir, covered, database, dictionary)?;
        self.append(&WalRecord::SnapshotWritten { checkpoint_lsn: covered })?;
        let end = self.append(&WalRecord::CheckpointEnd { checkpoint_lsn: covered })?;
        self.flush_up_to(end)?;
        let removed = self.truncate_dead(covered)?;
        if let Some(obs) = self.obs.get() {
            obs.checkpoints_total.inc();
            obs.segments_removed_total.add(removed);
        }
        Ok(covered)
    }

    /// Retention after a checkpoint at `covered`: keep the two newest
    /// checkpoint files, then delete every segment whose records are all
    /// covered by the **older** retained checkpoint. Returns the number of
    /// removed segments.
    fn truncate_dead(&self, covered: Lsn) -> io::Result<u64> {
        let mut checkpoints = checkpoint::list_checkpoints(&self.dir)?;
        checkpoints.retain(|&(lsn, _)| lsn <= covered);
        // Newest last; keep the last two.
        let keep_from = checkpoints.len().saturating_sub(2);
        for (_, path) in checkpoints.drain(..keep_from) {
            let _ = fs::remove_file(path);
        }
        let horizon = checkpoints.first().map_or(0, |&(lsn, _)| lsn);
        if horizon == 0 {
            return Ok(0);
        }
        // A segment is dead when the *next* segment starts at or before
        // horizon + 1 — then every record in it has LSN ≤ horizon. The
        // active segment is never dead (there is no next one).
        let mut starts: Vec<(Lsn, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(start) = entry.file_name().to_str().and_then(parse_segment_name) {
                starts.push((start, entry.path()));
            }
        }
        starts.sort();
        let mut removed = 0;
        let state = lock(&self.state);
        for window in starts.windows(2) {
            let (_, path) = &window[0];
            let (next_start, _) = window[1];
            if next_start <= horizon + 1 && *path != state.segment_path {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        drop(state);
        if removed > 0 {
            sync_dir(&self.dir);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RelationInserts;
    use crate::testutil::TempDir;

    fn delta(n: u64) -> WalRecord {
        WalRecord::DeltaApplied {
            inserts: vec![RelationInserts {
                relation: "R".into(),
                arity: 2,
                rows: 1,
                values: vec![n, n + 1],
            }],
        }
    }

    #[test]
    fn append_scan_round_trips_across_reopen() {
        let dir = TempDir::new("log-roundtrip");
        {
            let wal = Wal::open(dir.path(), WalOptions::default()).unwrap();
            for i in 0..10 {
                assert_eq!(wal.append(&delta(i)).unwrap(), i + 1);
            }
            assert_eq!(wal.last_lsn(), 10);
        }
        let scan = scan_dir(dir.path()).unwrap();
        assert_eq!(scan.records, 10);
        assert!(!scan.torn);
        // Reopen appends after the existing records.
        let wal = Wal::open(dir.path(), WalOptions::default()).unwrap();
        assert_eq!(wal.append(&delta(99)).unwrap(), 11);
    }

    #[test]
    fn rotation_splits_segments_and_scan_reads_across_them() {
        let dir = TempDir::new("log-rotate");
        let options = WalOptions { segment_bytes: 128, ..WalOptions::default() };
        let wal = Wal::open(dir.path(), options).unwrap();
        for i in 0..20 {
            wal.append(&delta(i)).unwrap();
        }
        drop(wal);
        let scan = scan_dir(dir.path()).unwrap();
        assert!(scan.segments.len() > 1, "expected several segments");
        assert_eq!(scan.records, 20);
        assert_eq!(scan.last_lsn, 20);
        let lsns: Vec<Lsn> = scan.records().map(|&(lsn, _)| lsn).collect();
        assert_eq!(lsns, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn sync_policies_track_the_synced_lsn() {
        let dir = TempDir::new("log-sync");
        let wal = Wal::open(dir.path(), WalOptions::with_sync(SyncPolicy::Always)).unwrap();
        wal.append(&delta(1)).unwrap();
        assert_eq!(wal.synced_lsn(), 1, "always syncs immediately");
        drop(wal);

        let dir = TempDir::new("log-sync-never");
        let wal = Wal::open(dir.path(), WalOptions::with_sync(SyncPolicy::Never)).unwrap();
        wal.append(&delta(1)).unwrap();
        assert_eq!(wal.synced_lsn(), 0, "never does not sync on append");
        wal.flush_up_to(1).unwrap();
        assert_eq!(wal.synced_lsn(), 1, "explicit flush is honoured");

        let dir = TempDir::new("log-sync-group");
        let options = WalOptions { group_commit_records: 3, ..WalOptions::default() };
        let wal = Wal::open(dir.path(), options).unwrap();
        wal.append(&delta(1)).unwrap();
        wal.append(&delta(2)).unwrap();
        assert_eq!(wal.synced_lsn(), 0, "below the group threshold");
        wal.append(&delta(3)).unwrap();
        assert_eq!(wal.synced_lsn(), 3, "the batch tripped the threshold");
    }

    #[test]
    fn open_truncates_a_torn_tail_and_later_segments() {
        let dir = TempDir::new("log-torn");
        let options = WalOptions { segment_bytes: 128, ..WalOptions::default() };
        {
            let wal = Wal::open(dir.path(), options.clone()).unwrap();
            for i in 0..20 {
                wal.append(&delta(i)).unwrap();
            }
        }
        let scan = scan_dir(dir.path()).unwrap();
        assert!(scan.segments.len() >= 3, "need a middle segment to corrupt");
        // Chop the middle segment mid-record: everything after is dead.
        let middle = &scan.segments[1];
        let cut = middle.valid_bytes - 3;
        let file = OpenOptions::new().write(true).open(&middle.path).unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);
        let survivors = scan.segments[0].records.len() + middle.records.len() - 1;

        let wal = Wal::open(dir.path(), options).unwrap();
        let rescan = scan_dir(dir.path()).unwrap();
        assert!(!rescan.torn, "open() removed the torn tail");
        assert_eq!(rescan.records as usize, survivors);
        assert_eq!(wal.last_lsn(), survivors as Lsn);
        // And the log accepts appends again, continuing the LSN sequence.
        assert_eq!(wal.append(&delta(0)).unwrap(), survivors as Lsn + 1);
    }

    #[test]
    fn append_all_is_one_batch() {
        let dir = TempDir::new("log-batch");
        let options = WalOptions { group_commit_records: 2, ..WalOptions::default() };
        let wal = Wal::open(dir.path(), options).unwrap();
        let records = [delta(1), delta(2), delta(3)];
        assert_eq!(wal.append_all(&records).unwrap(), 3);
        assert_eq!(wal.synced_lsn(), 3, "one fsync for the whole batch");
        assert_eq!(wal.append_all(&[]).unwrap(), 3, "empty batch is a no-op");
    }
}
