//! CRC-32 (IEEE 802.3 polynomial), the checksum framing every WAL record
//! and checkpoint file with. Table-driven, one table computed at first use.
//!
//! The polynomial is the ubiquitous reflected `0xEDB88320` — the same CRC
//! zlib, PNG and Ethernet use — so the standard check value holds:
//! `crc32(b"123456789") == 0xCBF4_3926`.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// A streaming CRC-32 state: feed byte slices, then [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ table[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 of one contiguous byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut streaming = Crc32::new();
        streaming.update(b"hello ");
        streaming.update(b"world");
        assert_eq!(streaming.finish(), crc32(b"hello world"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut bytes = b"the wal record payload".to_vec();
        let clean = crc32(&bytes);
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), clean, "bit {i} flip went undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
