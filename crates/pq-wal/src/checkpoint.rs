//! Checkpoint files: a full serialised snapshot of the database (every
//! relation's flat row buffer) plus the shared value dictionary, so
//! recovery replays only the log suffix after the covered LSN.
//!
//! File format (`ckpt-<lsn>.ckpt`, hex covered-LSN in the name):
//!
//! ```text
//! [ magic "PQCKPT1\n" ]
//! [ covered_lsn u64 ][ domain_size u64 ]
//! [ nrel u32 ]
//!   per relation: [ name str ][ arity u32 ][ attribute str × arity ]
//!                 [ rows u64 ][ rows·arity·8 bytes of LE row values ]
//! [ ntokens u64 ][ token str × ntokens ]
//! [ crc32 of everything above, u32 LE ]
//! ```
//!
//! where `str` is `[len u32 LE][utf8]`. Row bytes are the exact
//! [`pq_relation::Relation::write_rows_le`] layout. Files are written to a
//! `.tmp` sibling, fsynced and atomically renamed — a crash mid-write
//! leaves only a `.tmp` that [`crate::Wal::open`] sweeps away, never a
//! half-valid checkpoint under the real name.

use crate::crc::crc32;
use crate::record::{put_str, put_u32, put_u64, Cursor, Lsn, RecordError};
use pq_relation::{Database, Relation, Schema, ValueDictionary};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"PQCKPT1\n";

/// Name of the checkpoint file covering `lsn`.
pub fn checkpoint_file_name(lsn: Lsn) -> String {
    format!("ckpt-{lsn:016x}.ckpt")
}

/// Parse a checkpoint file name back to its covered LSN.
pub(crate) fn parse_checkpoint_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    Lsn::from_str_radix(hex, 16).ok()
}

/// All checkpoint files of `dir`, oldest first.
pub(crate) fn list_checkpoints(dir: &Path) -> io::Result<Vec<(Lsn, PathBuf)>> {
    let mut found = Vec::new();
    if dir.is_dir() {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(lsn) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
                found.push((lsn, entry.path()));
            }
        }
    }
    found.sort();
    Ok(found)
}

/// Covered LSN of the newest checkpoint file (by name; 0 when none).
pub(crate) fn latest_checkpoint_lsn(dir: &Path) -> Lsn {
    list_checkpoints(dir).ok().and_then(|list| list.last().map(|&(lsn, _)| lsn)).unwrap_or(0)
}

/// Delete leftover `.tmp` files from checkpoints interrupted mid-write.
pub(crate) fn remove_stale_tmp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// A loaded checkpoint: the state as of `covered_lsn`.
#[derive(Debug)]
pub struct Checkpoint {
    /// Every record with LSN ≤ this is reflected in `database`.
    pub covered_lsn: Lsn,
    /// The reconstructed database.
    pub database: Database,
    /// The reconstructed value dictionary.
    pub dictionary: ValueDictionary,
}

/// Why a checkpoint file could not be loaded. Recovery treats `Corrupt` as
/// "fall back to the previous checkpoint"; `Io` aborts.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read.
    Io(io::Error),
    /// The file content is invalid (bad magic, checksum or structure).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<RecordError> for CheckpointError {
    fn from(e: RecordError) -> Self {
        CheckpointError::Corrupt(e.to_string())
    }
}

/// Serialise `database` + `dictionary` as the checkpoint covering
/// `covered_lsn`, atomically (tmp + fsync + rename + dir fsync). Returns
/// the final path.
pub fn write_checkpoint_file(
    dir: &Path,
    covered_lsn: Lsn,
    database: &Database,
    dictionary: &ValueDictionary,
) -> io::Result<PathBuf> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    put_u64(&mut bytes, covered_lsn);
    put_u64(&mut bytes, database.domain_size());
    let relations: Vec<(&str, &std::sync::Arc<Relation>)> = database.relation_arcs().collect();
    put_u32(&mut bytes, relations.len() as u32);
    for (name, relation) in relations {
        put_str(&mut bytes, name);
        put_u32(&mut bytes, relation.arity() as u32);
        for attribute in relation.schema().attributes() {
            put_str(&mut bytes, attribute);
        }
        put_u64(&mut bytes, relation.len() as u64);
        relation.write_rows_le(&mut bytes);
    }
    put_u64(&mut bytes, dictionary.len() as u64);
    for token in dictionary.tokens() {
        put_str(&mut bytes, token);
    }
    let checksum = crc32(&bytes);
    put_u32(&mut bytes, checksum);

    let final_path = dir.join(checkpoint_file_name(covered_lsn));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(covered_lsn)));
    let mut file = OpenOptions::new().create(true).truncate(true).write(true).open(&tmp_path)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    crate::log::sync_dir(dir);
    Ok(final_path)
}

/// Load and verify one checkpoint file.
pub fn load_checkpoint_file(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(CheckpointError::Corrupt(format!("{} byte(s) is too short", bytes.len())));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch: file says {stored:#010x}, content is {computed:#010x}"
        )));
    }
    let mut cursor = Cursor::new(&body[MAGIC.len()..]);
    let covered_lsn = cursor.u64()?;
    let domain_size = cursor.u64()?;
    let mut database = Database::new(domain_size);
    let nrel = cursor.u32()? as usize;
    for _ in 0..nrel {
        let name = cursor.string()?;
        let arity = cursor.u32()? as usize;
        let mut attributes = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            attributes.push(cursor.string()?);
        }
        let rows = cursor.u64()? as usize;
        let nbytes = rows
            .checked_mul(arity)
            .and_then(|v| v.checked_mul(8))
            .ok_or_else(|| CheckpointError::Corrupt(format!("{name}: {rows}×{arity} overflows")))?;
        let row_bytes = cursor.take(nbytes)?;
        let relation = Relation::from_rows_le(Schema::new(name, attributes), rows, row_bytes)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        database.insert(relation);
    }
    let ntokens = cursor.u64()? as usize;
    let mut tokens = Vec::with_capacity(ntokens.min(1 << 20));
    for _ in 0..ntokens {
        tokens.push(cursor.string()?);
    }
    cursor.finish()?;
    Ok(Checkpoint { covered_lsn, database, dictionary: ValueDictionary::from_tokens(tokens) })
}

/// Load the newest checkpoint of `dir` that verifies, discarding corrupt
/// ones from newest to oldest. Returns the checkpoint (if any) and how many
/// corrupt files were skipped.
pub fn load_latest_checkpoint(dir: &Path) -> io::Result<(Option<Checkpoint>, u64)> {
    let mut discarded = 0;
    for (_, path) in list_checkpoints(dir)?.into_iter().rev() {
        match load_checkpoint_file(&path) {
            Ok(checkpoint) => return Ok((Some(checkpoint), discarded)),
            Err(CheckpointError::Io(e)) if e.kind() == io::ErrorKind::NotFound => discarded += 1,
            Err(CheckpointError::Io(e)) => return Err(e),
            Err(CheckpointError::Corrupt(_)) => discarded += 1,
        }
    }
    Ok((None, discarded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn sample_state() -> (Database, ValueDictionary) {
        let mut dictionary = ValueDictionary::new();
        let a = dictionary.encode("alice");
        let b = dictionary.encode("bob");
        let c = dictionary.encode("carol");
        let mut database = Database::new(16);
        database.insert(Relation::from_rows(
            Schema::from_strs("E", &["x", "y"]),
            vec![vec![a, b], vec![b, c], vec![c, a]],
        ));
        database.insert(Relation::from_rows(Schema::from_strs("V", &["x"]), vec![vec![a]]));
        (database, dictionary)
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = TempDir::new("ckpt-roundtrip");
        let (database, dictionary) = sample_state();
        let path = write_checkpoint_file(dir.path(), 42, &database, &dictionary).unwrap();
        let loaded = load_checkpoint_file(&path).unwrap();
        assert_eq!(loaded.covered_lsn, 42);
        assert_eq!(loaded.dictionary, dictionary);
        assert_eq!(loaded.database.domain_size(), 16);
        assert_eq!(loaded.database.relation_names(), vec!["E", "V"]);
        let e = loaded.database.expect_relation("E");
        assert_eq!(e.len(), 3);
        assert_eq!(e.values(), database.expect_relation("E").values());
        assert_eq!(e.schema().attributes(), ["x", "y"]);
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let dir = TempDir::new("ckpt-flip");
        let (database, dictionary) = sample_state();
        let path = write_checkpoint_file(dir.path(), 7, &database, &dictionary).unwrap();
        let clean = fs::read(&path).unwrap();
        for i in (0..clean.len()).step_by(7) {
            let mut mangled = clean.clone();
            mangled[i] ^= 0x40;
            fs::write(&path, &mangled).unwrap();
            assert!(
                matches!(load_checkpoint_file(&path), Err(CheckpointError::Corrupt(_))),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let dir = TempDir::new("ckpt-trunc");
        let (database, dictionary) = sample_state();
        let path = write_checkpoint_file(dir.path(), 7, &database, &dictionary).unwrap();
        let clean = fs::read(&path).unwrap();
        for cut in [0, 1, MAGIC.len(), clean.len() / 2, clean.len() - 1] {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                matches!(load_checkpoint_file(&path), Err(CheckpointError::Corrupt(_))),
                "truncation to {cut} byte(s) went undetected"
            );
        }
    }

    #[test]
    fn latest_falls_back_over_corrupt_checkpoints() {
        let dir = TempDir::new("ckpt-fallback");
        let (database, dictionary) = sample_state();
        write_checkpoint_file(dir.path(), 5, &database, &dictionary).unwrap();
        let newest = write_checkpoint_file(dir.path(), 9, &database, &dictionary).unwrap();
        fs::write(&newest, b"garbage").unwrap();
        let (loaded, discarded) = load_latest_checkpoint(dir.path()).unwrap();
        assert_eq!(loaded.unwrap().covered_lsn, 5);
        assert_eq!(discarded, 1);
        // With no valid checkpoint at all: None, both discarded.
        let older = dir.path().join(checkpoint_file_name(5));
        fs::write(&older, b"also garbage").unwrap();
        let (loaded, discarded) = load_latest_checkpoint(dir.path()).unwrap();
        assert!(loaded.is_none());
        assert_eq!(discarded, 2);
    }

    #[test]
    fn empty_database_round_trips() {
        let dir = TempDir::new("ckpt-empty");
        let database = Database::new(4);
        let dictionary = ValueDictionary::new();
        let path = write_checkpoint_file(dir.path(), 1, &database, &dictionary).unwrap();
        let loaded = load_checkpoint_file(&path).unwrap();
        assert_eq!(loaded.database.num_relations(), 0);
        assert!(loaded.dictionary.is_empty());
    }
}
