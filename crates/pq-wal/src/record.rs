//! WAL record types and their CRC-framed binary encoding.
//!
//! Every record is framed as
//!
//! ```text
//! [ payload_len: u32 LE ][ crc32(payload): u32 LE ][ payload ]
//! payload = [ type: u8 ][ lsn: u64 LE ][ body ]
//! ```
//!
//! so the reader can verify integrity before interpreting a single body
//! byte. Row data inside [`WalRecord::DeltaApplied`] reuses the flat
//! little-endian row encoding of [`pq_relation::values_to_le_bytes`] — the
//! same bytes the cluster codec ships, produced in one pass with no
//! per-row allocation.
//!
//! Decoding is defensive end to end: a truncated frame, a checksum
//! mismatch, an oversized declared length, an unknown type byte or a
//! malformed body all surface as a typed [`RecordError`] — recovery treats
//! the first such error as the torn tail of the log and stops, keeping the
//! clean prefix.

use crate::crc::crc32;
use pq_relation::{values_from_le_bytes, values_to_le_bytes, Value};
use std::fmt;

/// A log sequence number. LSNs start at 1 and increase by one per record;
/// 0 means "before every record" (a fresh log / no checkpoint yet).
pub type Lsn = u64;

/// Frames larger than this are rejected as corrupt before any allocation —
/// a mangled length field must not ask the reader for gigabytes.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// The flat insert batch for one relation inside a
/// [`WalRecord::DeltaApplied`] record: `rows` rows of `arity` values each,
/// row-major in `values` (exactly the storage layout of
/// [`pq_relation::Relation`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationInserts {
    /// Name of the relation the rows land in.
    pub relation: String,
    /// Row width; must match the stored relation's arity at replay time.
    pub arity: usize,
    /// Number of rows (kept explicitly so nullary relations work).
    pub rows: usize,
    /// Row-major values; `values.len() == rows * arity`.
    pub values: Vec<Value>,
}

impl RelationInserts {
    /// Iterate over borrowed row views.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[Value]> {
        // `chunks_exact(0)` panics, so nullary rows need their own arm —
        // there are `rows` of them and nothing to yield per row.
        let arity = self.arity.max(1);
        self.values
            .chunks_exact(arity)
            .take(if self.arity == 0 { 0 } else { self.rows })
    }
}

/// One logical WAL record (its LSN is assigned by the log manager at
/// append time and carried in the frame, not in the enum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A typed insert-only delta, exactly as `Engine::apply` consumed it:
    /// the logical redo record of the delta path.
    DeltaApplied {
        /// Per-relation insert batches, in relation-name order.
        inserts: Vec<RelationInserts>,
    },
    /// A checkpoint began: the snapshot serialised next covers every record
    /// up to and including this record's LSN.
    CheckpointStart,
    /// The checkpoint file covering `checkpoint_lsn` is durably on disk.
    SnapshotWritten {
        /// LSN the written snapshot covers (its `CheckpointStart`'s LSN).
        checkpoint_lsn: Lsn,
    },
    /// The checkpoint covering `checkpoint_lsn` fully completed (dead
    /// segments and stale checkpoint files have been truncated).
    CheckpointEnd {
        /// LSN the completed checkpoint covers.
        checkpoint_lsn: Lsn,
    },
    /// The shared [`pq_relation::ValueDictionary`] grew: `tokens` were
    /// assigned ids `first_id..`. Logged before the delta whose rows use
    /// the new ids, so replay decodes answers exactly as before the crash.
    DictExtend {
        /// Id of the first token in `tokens`.
        first_id: u64,
        /// The newly interned tokens, in id order.
        tokens: Vec<String>,
    },
}

impl WalRecord {
    /// The frame type byte.
    fn type_byte(&self) -> u8 {
        match self {
            WalRecord::DeltaApplied { .. } => 1,
            WalRecord::CheckpointStart => 2,
            WalRecord::SnapshotWritten { .. } => 3,
            WalRecord::CheckpointEnd { .. } => 4,
            WalRecord::DictExtend { .. } => 5,
        }
    }

    /// Short record-kind name (metrics/log labels).
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::DeltaApplied { .. } => "delta",
            WalRecord::CheckpointStart => "checkpoint-start",
            WalRecord::SnapshotWritten { .. } => "snapshot-written",
            WalRecord::CheckpointEnd { .. } => "checkpoint-end",
            WalRecord::DictExtend { .. } => "dict-extend",
        }
    }
}

/// Why a frame failed to decode. Recovery stops at the first error and
/// keeps the prefix before it (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends inside a frame — the classic torn tail of an
    /// interrupted write.
    ShortFrame {
        /// Bytes the frame declared (header + payload).
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload's checksum does not match the frame header.
    BadCrc {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the payload read back.
        computed: u32,
    },
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    OversizedFrame {
        /// The declared length.
        len: u32,
    },
    /// The checksum held but the type byte is unknown (written by a newer
    /// format version, or corruption the CRC happened to miss).
    UnknownType(u8),
    /// The checksum held but the body structure is inconsistent.
    Malformed(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::ShortFrame { needed, available } => {
                write!(f, "torn frame: {needed} byte(s) declared, {available} available")
            }
            RecordError::BadCrc { stored, computed } => {
                write!(f, "checksum mismatch: frame says {stored:#010x}, payload is {computed:#010x}")
            }
            RecordError::OversizedFrame { len } => {
                write!(f, "frame declares {len} payload byte(s), over the {MAX_FRAME_BYTES} cap")
            }
            RecordError::UnknownType(t) => write!(f, "unknown record type byte {t:#04x}"),
            RecordError::Malformed(why) => write!(f, "malformed record body: {why}"),
        }
    }
}

impl std::error::Error for RecordError {}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append the framed encoding of `record` at `lsn` to `out`; returns the
/// number of bytes appended.
pub fn encode_record(record: &WalRecord, lsn: Lsn, out: &mut Vec<u8>) -> usize {
    let mut payload = Vec::new();
    payload.push(record.type_byte());
    put_u64(&mut payload, lsn);
    match record {
        WalRecord::DeltaApplied { inserts } => {
            put_u32(&mut payload, inserts.len() as u32);
            for batch in inserts {
                put_str(&mut payload, &batch.relation);
                put_u32(&mut payload, batch.arity as u32);
                put_u64(&mut payload, batch.rows as u64);
                values_to_le_bytes(&batch.values, &mut payload);
            }
        }
        WalRecord::CheckpointStart => {}
        WalRecord::SnapshotWritten { checkpoint_lsn }
        | WalRecord::CheckpointEnd { checkpoint_lsn } => put_u64(&mut payload, *checkpoint_lsn),
        WalRecord::DictExtend { first_id, tokens } => {
            put_u64(&mut payload, *first_id);
            put_u32(&mut payload, tokens.len() as u32);
            for token in tokens {
                put_str(&mut payload, token);
            }
        }
    }
    let before = out.len();
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
    out.len() - before
}

/// A bounds-checked cursor over a verified payload.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                RecordError::Malformed(format!(
                    "body over-read: {n} byte(s) wanted at offset {} of {}",
                    self.at,
                    self.bytes.len()
                ))
            })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn string(&mut self) -> Result<String, RecordError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RecordError::Malformed("string is not UTF-8".into()))
    }

    pub(crate) fn finish(self) -> Result<(), RecordError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(RecordError::Malformed(format!(
                "{} trailing byte(s) after the body",
                self.bytes.len() - self.at
            )))
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<(Lsn, WalRecord), RecordError> {
    let mut cursor = Cursor { bytes: payload, at: 0 };
    let type_byte = cursor.take(1)?[0];
    let lsn = cursor.u64()?;
    let record = match type_byte {
        1 => {
            let nrel = cursor.u32()? as usize;
            let mut inserts = Vec::with_capacity(nrel.min(1024));
            for _ in 0..nrel {
                let relation = cursor.string()?;
                let arity = cursor.u32()? as usize;
                let rows = cursor.u64()? as usize;
                let nvalues = rows.checked_mul(arity).ok_or_else(|| {
                    RecordError::Malformed(format!("{rows} rows x {arity} arity overflows"))
                })?;
                let byte_len = nvalues.checked_mul(8).ok_or_else(|| {
                    RecordError::Malformed(format!("{nvalues} values x 8 bytes overflows"))
                })?;
                let values = values_from_le_bytes(cursor.take(byte_len)?)
                    .map_err(|e| RecordError::Malformed(e.to_string()))?;
                inserts.push(RelationInserts { relation, arity, rows, values });
            }
            WalRecord::DeltaApplied { inserts }
        }
        2 => WalRecord::CheckpointStart,
        3 => WalRecord::SnapshotWritten { checkpoint_lsn: cursor.u64()? },
        4 => WalRecord::CheckpointEnd { checkpoint_lsn: cursor.u64()? },
        5 => {
            let first_id = cursor.u64()?;
            let count = cursor.u32()? as usize;
            let mut tokens = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                tokens.push(cursor.string()?);
            }
            WalRecord::DictExtend { first_id, tokens }
        }
        other => return Err(RecordError::UnknownType(other)),
    };
    cursor.finish()?;
    Ok((lsn, record))
}

/// A sequential reader over the framed records of one in-memory segment
/// buffer. Yields `Ok(None)` on a clean end exactly at a frame boundary;
/// any partial or invalid frame is the typed error recovery stops at.
pub struct RecordReader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> RecordReader<'a> {
    /// Read records from `bytes`, starting at its beginning.
    pub fn new(bytes: &'a [u8]) -> Self {
        RecordReader { bytes, offset: 0 }
    }

    /// Byte offset of the next unread frame — after an error, the exact
    /// place the clean prefix ends (where recovery truncates).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The next record, `Ok(None)` at a clean end of the buffer.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Option<(Lsn, WalRecord)>, RecordError> {
        let remaining = &self.bytes[self.offset..];
        if remaining.is_empty() {
            return Ok(None);
        }
        if remaining.len() < 8 {
            return Err(RecordError::ShortFrame { needed: 8, available: remaining.len() });
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BYTES {
            return Err(RecordError::OversizedFrame { len });
        }
        let stored = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        let needed = 8 + len as usize;
        if remaining.len() < needed {
            return Err(RecordError::ShortFrame { needed, available: remaining.len() });
        }
        let payload = &remaining[8..needed];
        let computed = crc32(payload);
        if computed != stored {
            return Err(RecordError::BadCrc { stored, computed });
        }
        let decoded = decode_payload(payload)?;
        self.offset += needed;
        Ok(Some(decoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::DeltaApplied {
                inserts: vec![
                    RelationInserts {
                        relation: "R".into(),
                        arity: 2,
                        rows: 2,
                        values: vec![1, 2, u64::MAX, 0],
                    },
                    RelationInserts { relation: "N".into(), arity: 0, rows: 3, values: vec![] },
                ],
            },
            WalRecord::CheckpointStart,
            WalRecord::SnapshotWritten { checkpoint_lsn: 7 },
            WalRecord::CheckpointEnd { checkpoint_lsn: 7 },
            WalRecord::DictExtend { first_id: 4, tokens: vec!["alice".into(), "bob".into()] },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, r) in records.iter().enumerate() {
            encode_record(r, i as Lsn + 1, &mut out);
        }
        out
    }

    #[test]
    fn records_round_trip_with_lsns() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let mut reader = RecordReader::new(&bytes);
        for (i, expected) in records.iter().enumerate() {
            let (lsn, record) = reader.next().expect("decodes").expect("present");
            assert_eq!(lsn, i as Lsn + 1);
            assert_eq!(&record, expected);
        }
        assert_eq!(reader.next().expect("clean end"), None);
        assert_eq!(reader.offset(), bytes.len());
    }

    #[test]
    fn truncation_at_any_byte_is_a_clean_stop() {
        let records = sample_records();
        let bytes = encode_all(&records);
        for cut in 0..bytes.len() {
            let mut reader = RecordReader::new(&bytes[..cut]);
            let mut decoded = 0usize;
            loop {
                match reader.next() {
                    Ok(Some(_)) => decoded += 1,
                    Ok(None) => break,       // cut exactly at a boundary
                    Err(RecordError::ShortFrame { .. }) => break,
                    Err(other) => panic!("cut at {cut}: unexpected {other}"),
                }
            }
            assert!(decoded <= records.len());
            assert!(reader.offset() <= cut, "prefix offset within the cut");
        }
    }

    #[test]
    fn bit_flips_never_panic_and_rarely_pass() {
        let records = sample_records();
        let clean = encode_all(&records);
        for i in 0..clean.len() {
            let mut mangled = clean.clone();
            mangled[i] ^= 0x40;
            let mut reader = RecordReader::new(&mangled);
            // Every outcome is acceptable except a panic; flips in a length
            // field may shift framing, flips in a payload must fail the CRC.
            while let Ok(Some(_)) = reader.next() {}
        }
    }

    #[test]
    fn payload_flips_are_caught_by_the_crc() {
        let mut bytes = Vec::new();
        encode_record(&WalRecord::CheckpointEnd { checkpoint_lsn: 9 }, 10, &mut bytes);
        // Flip one payload byte (offset 8 is the type byte).
        bytes[9] ^= 0x01;
        let err = RecordReader::new(&bytes).next().unwrap_err();
        assert!(matches!(err, RecordError::BadCrc { .. }), "{err}");
    }

    #[test]
    fn oversized_and_unknown_frames_are_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME_BYTES + 1);
        put_u32(&mut bytes, 0);
        let err = RecordReader::new(&bytes).next().unwrap_err();
        assert!(matches!(err, RecordError::OversizedFrame { .. }), "{err}");

        // A frame with a valid CRC over an unknown type byte.
        let payload = [0xEEu8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        let err = RecordReader::new(&bytes).next().unwrap_err();
        assert_eq!(err, RecordError::UnknownType(0xEE));
    }

    #[test]
    fn trailing_garbage_inside_a_valid_crc_is_malformed() {
        let mut payload = vec![2u8]; // CheckpointStart
        payload.extend_from_slice(&5u64.to_le_bytes());
        payload.push(0xAB); // one stray body byte
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        let err = RecordReader::new(&bytes).next().unwrap_err();
        assert!(matches!(err, RecordError::Malformed(_)), "{err}");
    }

    #[test]
    fn nullary_rows_iterate_correctly() {
        let batch =
            RelationInserts { relation: "N".into(), arity: 0, rows: 2, values: vec![] };
        assert_eq!(batch.rows_iter().count(), 0);
        let batch =
            RelationInserts { relation: "R".into(), arity: 2, rows: 2, values: vec![1, 2, 3, 4] };
        let rows: Vec<&[Value]> = batch.rows_iter().collect();
        assert_eq!(rows, vec![&[1u64, 2][..], &[3, 4]]);
    }
}
