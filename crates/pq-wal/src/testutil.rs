//! Unit-test helper: a unique temp directory removed on drop (the offline
//! build has no `tempfile` crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub(crate) fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pq-wal-test-{tag}-{}-{seq}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
