//! Offline shim for the `criterion` benchmark framework.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the criterion API the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — on top of a plain
//! `std::time::Instant` harness: a short warm-up, then timed batches, then a
//! `group/id: median ns/iter` line on stdout. No statistics beyond the
//! median, no HTML reports; enough for the A/B comparisons the experiment
//! harness makes. Swap the workspace dependency to the registry crate for
//! the real analysis pipeline.
//!
//! Setting the `PQ_BENCH_FAST` environment variable skips the warm-up and
//! runs every routine exactly once — the timings are meaningless, but a CI
//! smoke step can execute every bench body (catching panics and API drift)
//! in seconds.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; hands out [`BenchmarkGroup`]s.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix in the output.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Request a sample count for the group. The shim sizes batches by
    /// target duration instead, so this only exists for API compatibility.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { median: None };
        f(&mut bencher, input);
        self.report(&id.id, bencher.median);
        self
    }

    /// Run a benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { median: None };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.median);
        self
    }

    /// Finish the group (separator line in the output).
    pub fn finish(self) {
        println!();
    }

    fn report(&self, id: &str, median: Option<Duration>) {
        match median {
            Some(d) => println!("{}/{}: {:>12.0} ns/iter", self.name, id, d.as_nanos() as f64),
            None => println!("{}/{}: no measurement (Bencher::iter never called)", self.name, id),
        }
    }
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    median: Option<Duration>,
}

impl Bencher {
    /// Time `routine`: warm up briefly, then take several timed batches and
    /// record the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if std::env::var_os("PQ_BENCH_FAST").is_some() {
            // Smoke mode: one untimed-quality run, just to execute the body.
            let t = Instant::now();
            black_box(routine());
            self.median = Some(t.elapsed());
            return;
        }
        // Warm-up: run for ~20ms or at least once.
        let warmup_deadline = Instant::now() + Duration::from_millis(20);
        let one = loop {
            let t = Instant::now();
            black_box(routine());
            let elapsed = t.elapsed();
            if Instant::now() >= warmup_deadline {
                break elapsed;
            }
        };
        // Pick a batch size aiming at ~5ms per batch.
        let per_iter = one.max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
        let mut samples: Vec<Duration> = (0..7)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed() / batch as u32
            })
            .collect();
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
    }
}

/// Define a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
