//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this crate supplies the
//! slice of the `rand` 0.8 surface the workspace actually uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] over half-open integer ranges, and
//! [`seq::SliceRandom::shuffle`] — backed by xoshiro256** seeded through
//! SplitMix64. Determinism per seed is the only property the workspace
//! relies on (generators and hash families are seeded everywhere), and that
//! holds here exactly as it does upstream.
//!
//! Swapping `[workspace.dependencies] rand` to a registry requirement
//! changes the sampled streams (different algorithm) but no API.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use core::ops::Range;

/// A source of random `u64`s; the base trait every sampler builds on.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    ///
    /// (Upstream `StdRng` is ChaCha12; the algorithms here only need a
    /// deterministic, well-mixed stream, not cryptographic strength.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3x = s3 ^ s1;
            let s1x = s1 ^ s2;
            let s0x = s0 ^ s3x;
            s2 ^= t;
            self.state = [s0x, s1x, s2, s3x.rotate_left(45)];
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// Types samplable uniformly from a half-open range via [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw a uniform value in `range` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift rejection (Lemire's method).
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= span.wrapping_neg() % span {
                        return range.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u64, usize, u32);

/// The user-facing sampling trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample a uniform value from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn unit_interval_floats() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
