//! Offline shim for `serde_derive`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal stand-in for the serde derive macros. The workspace only ever
//! *derives* `Serialize`/`Deserialize` (to keep its public types
//! wire-ready); nothing serializes yet, so the derives expand to nothing.
//! When a real serializer lands, point `[workspace.dependencies] serde` at
//! the registry crate and this shim retires with no source changes.

#![deny(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
