//! Offline shim for the `proptest` property-testing framework.
//!
//! The build environment has no network access, so this crate supplies the
//! subset of the proptest surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`], implemented for
//!   half-open integer ranges, tuples of strategies (arity 2–4) and
//!   [`collection::vec`];
//! * [`any`] for types with a full-domain [`Arbitrary`] instance;
//! * the [`proptest!`] macro, including the `#![proptest_config(...)]`
//!   header and `pattern in strategy` parameter syntax;
//! * [`prop_assert!`]/[`prop_assert_eq!`], which fail the current case with
//!   a message instead of panicking mid-sample.
//!
//! Differences from upstream: cases are drawn from a fixed deterministic
//! seed derived from the test name (no persisted failure files), and there
//! is **no shrinking** — a failing case reports the case number so it can be
//! replayed, but is not minimised. Swap the workspace dependency to the
//! registry crate to regain shrinking.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use core::ops::Range;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Derive a generator from a test name (FNV-1a of the bytes), so every
    /// `proptest!` test draws a reproducible sequence of cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform draw from a half-open `u64` range.
    pub fn below(&mut self, span: u64) -> u64 {
        self.rng.gen_range(0..span.max(1))
    }
}

/// The error carried out of a failing test case by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only the case count is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies are usable through references (the `proptest!` macro and
/// combinators both take them by value or reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Full-domain generation, backing [`any`].
pub trait Arbitrary: Sized {
    /// Draw a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy with element strategy `element` and a length drawn
    /// uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Define property tests: an optional `#![proptest_config(...)]` header
/// followed by `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        #[test]
        fn $name:ident( $( $arg:pat_param in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("case {case} of {}: {err}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in crate::collection::vec((0u64..5, any::<bool>()), 0..8),
        ) {
            prop_assert!(v.len() < 8);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn prop_map_applies(d in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0);
            prop_assert!(d < 20);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
