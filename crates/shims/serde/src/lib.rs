//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! so they are ready for wire formats, but no code path serializes anything
//! yet — and the build environment has no network access to fetch the real
//! crate. This shim supplies the two trait names and re-exports the no-op
//! derive macros from the sibling `serde_derive` shim. The derives expand to
//! nothing, so the traits here are plain markers with no required methods.
//!
//! Swapping `[workspace.dependencies] serde` from the shim path to a
//! registry requirement restores the real implementation without touching
//! any `use serde::...` line in the workspace.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
///
/// The real trait's methods are only needed by serializers, none of which
/// exist in this offline workspace; the shim derive emits no impls.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// See [`Serialize`] for why this carries no methods.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
