//! E10 — Corollary 3.19 / Example 3.20: the replication-rate / load
//! tradeoff.
//!
//! For the triangle query (τ* = 3/2) the replication rate must be
//! `Ω(√(M/L))`; for the star query (τ* = 1) constant replication is
//! possible. The HyperCube algorithm's measured replication rate (total
//! bits received / input bits) is swept against the load budget by varying
//! `p`, and compared with the Corollary 3.19 bound at the measured load.

use pq_bench::matching_database_for_query;
use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_core::bounds::replication::{replication_rate_lower_bound, replication_rate_shape};
use pq_core::prelude::*;

fn main() {
    let m = 16_000usize;

    for query in [ConjunctiveQuery::triangle(), ConjunctiveQuery::star(3)] {
        let db = matching_database_for_query(&query, m, 19);
        let mut report = ExperimentReport::new(
            "E10 / replication rate",
            format!("{}: measured replication vs the Corollary 3.19 bound", query.name()),
            &[
                "p",
                "measured L [bits]",
                "measured replication",
                "Cor. 3.19 bound",
                "(M/L)^(tau*-1) shape",
            ],
        );
        for p in [4usize, 8, 16, 32, 64, 128, 256] {
            let run = run_hypercube(&query, &db, p, 23);
            let load = run.metrics.max_load() as f64;
            let bound = replication_rate_lower_bound(&query, &db.sizes_bits(), load);
            let shape = replication_rate_shape(&query, db.relation_size_bits("S1") as f64, load);
            report.add_row(vec![
                p.to_string(),
                fmt_f64(load),
                fmt_f64(run.metrics.replication_rate()),
                fmt_f64(bound),
                fmt_f64(shape),
            ]);
        }
        report.print();
    }
}
