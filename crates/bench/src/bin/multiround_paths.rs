//! E8 — Examples 5.2/5.3, Lemma 5.4, Corollary 5.15: multi-round plans for
//! chain queries and the rounds/load tradeoff.
//!
//! For L_k the bushy plan with fan-in `kε` reaches load `O(M/p^{1−ε})` in
//! `~log_{kε} k` rounds; the measured rounds and per-round loads are printed
//! next to the round lower bound and the `M/p^{1−ε}` reference.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_core::bounds::multiround::{chain_rounds_lower_bound, rounds_upper_bound};
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan, left_deep_plan, star_of_paths_plan};
use pq_core::prelude::*;
use pq_relation::Relation;

/// An identity-matching database for a binary-atom query: every relation is
/// the identity matching of size `m`, so it is a matching database with a
/// non-trivial answer (`m` tuples) and non-empty intermediate views.
fn identity_database(query: &ConjunctiveQuery, m: usize) -> Database {
    let mut db = Database::new((m as u64).max(2));
    for atom in query.atoms() {
        db.insert(Relation::from_rows(
            Schema::from_strs(atom.relation(), &["a", "b"]),
            (0..m as u64).map(|i| vec![i, i]).collect(),
        ));
    }
    db
}

fn main() {
    let p = 64usize;
    let m = 8_000usize;

    // Chains with different fan-ins (ε = 0 → fan-in 2, ε = 1/2 → fan-in 4).
    let mut report = ExperimentReport::new(
        "E8a / chain plans",
        format!("bushy plans for L_k on matching data, m = {m}, p = {p}"),
        &[
            "query",
            "plan",
            "rounds (measured)",
            "rounds lower",
            "rounds upper",
            "max load [bits]",
            "M/p^(1-eps) ref",
            "answers",
        ],
    );
    for k in [8usize, 16] {
        let query = ConjunctiveQuery::chain(k);
        let db = identity_database(&query, m);
        let m_bits = db.relation_size_bits("S1") as f64;
        for (label, fan_in, eps) in [("fan-2 (eps=0)", 2usize, 0.0f64), ("fan-4 (eps=1/2)", 4, 0.5)] {
            let run = execute_plan(&bushy_chain_plan(k, fan_in), &query, &db, p, 11);
            report.add_row(vec![
                query.name().to_string(),
                label.to_string(),
                run.metrics.num_rounds().to_string(),
                chain_rounds_lower_bound(k, eps).to_string(),
                rounds_upper_bound(&query, eps).to_string(),
                run.metrics.max_load().to_string(),
                fmt_f64(m_bits / (p as f64).powf(1.0 - eps)),
                run.output.len().to_string(),
            ]);
        }
        // Left-deep strawman.
        let run = execute_plan(&left_deep_plan(&query), &query, &db, p, 11);
        report.add_row(vec![
            query.name().to_string(),
            "left-deep".to_string(),
            run.metrics.num_rounds().to_string(),
            chain_rounds_lower_bound(k, 0.0).to_string(),
            rounds_upper_bound(&query, 0.0).to_string(),
            run.metrics.max_load().to_string(),
            fmt_f64(m_bits / p as f64),
            run.output.len().to_string(),
        ]);
    }
    report.print();

    // SP_k: two rounds at load O(M/p) versus one round at load O(M/p^{1/k}).
    let mut sp_report = ExperimentReport::new(
        "E8b / SP_k (Example 5.3)",
        format!("SP_k: one-round HC vs the two-round plan, m = {m}, p = {p}"),
        &[
            "query",
            "1-round load [bits]",
            "M/p^(1/k) ref",
            "2-round load [bits]",
            "M/p ref",
            "answers",
        ],
    );
    for k in [2usize, 3] {
        let query = ConjunctiveQuery::star_of_paths(k);
        let db = identity_database(&query, m);
        let m_bits = db.relation_size_bits("R1") as f64;
        let one = run_hypercube(&query, &db, p, 31);
        let two = execute_plan(&star_of_paths_plan(k), &query, &db, p, 31);
        assert_eq!(one.output.canonicalized(), two.output.canonicalized());
        sp_report.add_row(vec![
            query.name().to_string(),
            one.metrics.max_load().to_string(),
            fmt_f64(m_bits / (p as f64).powf(1.0 / k as f64)),
            two.metrics.max_load().to_string(),
            fmt_f64(m_bits / p as f64),
            two.output.len().to_string(),
        ]);
    }
    sp_report.print();

    // Per-round loads for the L_16 fan-4 plan (Example 5.2's shape).
    let query = ConjunctiveQuery::chain(16);
    let db = identity_database(&query, m);
    let run = execute_plan(&bushy_chain_plan(16, 4), &query, &db, p, 11);
    let mut round_report = ExperimentReport::new(
        "E8c / per-round loads",
        "L_16 with the fan-4 plan (Example 5.2): two rounds, load ~ M/sqrt(p)".to_string(),
        &["round", "max load [bits]", "views computed"],
    );
    for (i, load) in run.metrics.per_round_max_loads().iter().enumerate() {
        round_report.add_row(vec![
            (i + 1).to_string(),
            load.to_string(),
            run.round_views[i].join(", "),
        ]);
    }
    round_report.print();
}
