//! E9 — Theorem 5.20: connected components with bounded load need Ω(log p)
//! rounds.
//!
//! The hard instances are graphs whose components are paths crossing
//! `k = p^δ` layers of matchings. The experiment sweeps `p` (scaling the
//! number of layers with it) and reports the rounds used by min-label
//! propagation and by propagation + pointer jumping under a per-round load
//! that stays `O(M/p)`, together with `log2 p` for reference.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_core::multiround::connected::{connected_components, CcStrategy};
use pq_relation::DataGenerator;

fn main() {
    let mut report = ExperimentReport::new(
        "E9 / connected components",
        "rounds vs p on layered-matching graphs with k = p^(2/3) layers",
        &[
            "p",
            "layers",
            "edges",
            "propagation rounds",
            "jumping rounds",
            "log2 p",
            "max load [bits]",
            "M/p [bits]",
        ],
    );

    for p in [8usize, 16, 32, 64, 128] {
        let layers = ((p as f64).powf(2.0 / 3.0).round() as usize).max(2);
        let group = 60_000 / layers; // keep |E| roughly constant
        let mut gen = DataGenerator::new(p as u64, 1 << 24);
        let edges = gen.layered_matching_graph(group, layers);
        let input_bits = edges.size_bits(pq_relation::bits_per_value(1 << 24));

        let prop = connected_components(&edges, p, 7, CcStrategy::Propagation);
        let jump = connected_components(&edges, p, 7, CcStrategy::PointerJumping);
        assert_eq!(
            prop.labels.canonicalized().len(),
            jump.labels.canonicalized().len()
        );

        report.add_row(vec![
            p.to_string(),
            layers.to_string(),
            edges.len().to_string(),
            prop.metrics.num_rounds().to_string(),
            jump.metrics.num_rounds().to_string(),
            fmt_f64((p as f64).log2()),
            jump.metrics.max_load().to_string(),
            fmt_f64(input_bits as f64 / p as f64),
        ]);
    }
    report.print();
}
