//! E6 — Section 4.2.1 + 4.2.3: the skew-aware star-query algorithm matches
//! the heavy-hitter bound of Eq. 20 (and the Theorem 4.4 lower bound).
//!
//! Star queries T_k with planted heavy hitters of varying weight; for each
//! configuration the measured load of the skew-aware algorithm is compared
//! against the vanilla HyperCube, the Eq. 20 upper/lower bound shape and the
//! Theorem 4.4 lower bound computed from exact z-statistics.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_bench::skewed_star_database;
use pq_core::bounds::skew_bounds::{skewed_lower_bound, star_heavy_hitter_bound, SkewStatistics};
use pq_core::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let p = 64usize;

    for k in [2usize, 3] {
        // The heavy hitter's answer is a Cartesian product of size heavy^k:
        // keep m (and with it the heavy-hitter detection threshold m/p) small
        // enough for k = 3 that detectable hitters still give a bounded output.
        let m = if k == 2 { 12_000usize } else { 4_000 };
        let query = ConjunctiveQuery::star(k);
        let mut report = ExperimentReport::new(
            "E6 / skew-aware star",
            format!("T_{k} with one planted heavy hitter, m = {m}, p = {p}"),
            &[
                "heavy hitter freq",
                "vanilla HC L",
                "skew-aware L",
                "Eq.20 bound",
                "Thm 4.4 lower",
                "aware/bound",
                "answers",
            ],
        );
        // The heavy hitter's answer is a Cartesian product of size heavy^k,
        // so the planted frequencies are kept small enough that the output
        // stays around a million tuples.
        let heavy_values: &[usize] = if k == 2 { &[100, 400, 1_000] } else { &[70, 100, 130] };
        for &heavy in heavy_values {
            let db = skewed_star_database(k, m, heavy.max(1), 31);

            let vanilla = run_hypercube(&query, &db, p, 7);
            let aware = run_star_skew_aware(&query, &db, p, 7);
            assert_eq!(
                vanilla.output.canonicalized(),
                aware.output.canonicalized(),
                "vanilla and skew-aware answers must agree"
            );

            let bits = db.bits_per_value() as f64;
            let hh_bits = heavy.max(1) as f64 * 2.0 * bits;
            let maps: Vec<BTreeMap<u64, f64>> =
                (0..k).map(|_| BTreeMap::from([(0u64, hh_bits)])).collect();
            let eq20 = star_heavy_hitter_bound(&maps, p)
                .max(db.relation_size_bits("S1") as f64 / p as f64);

            let stats = SkewStatistics::compute(&query, &db, &["z".to_string()]);
            let thm44 = skewed_lower_bound(&query, &stats, p);

            report.add_row(vec![
                heavy.to_string(),
                vanilla.metrics.max_load().to_string(),
                aware.metrics.max_load().to_string(),
                fmt_f64(eq20),
                fmt_f64(thm44),
                fmt_f64(aware.metrics.max_load() as f64 / eq20),
                aware.output.len().to_string(),
            ]);
        }
        report.print();
    }
}
