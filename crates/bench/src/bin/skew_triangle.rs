//! E7 — Section 4.2.2: the skew-aware triangle algorithm.
//!
//! A hub vertex participates in a growing fraction of the triangles; the
//! measured load of the Case-1/Case-2 algorithm is compared against the
//! vanilla HyperCube and the analytic bound
//! `Õ(max(M/p^{2/3}, √(Σ_h M_R(h)·M_T(h)/p)))`.

use pq_bench::hub_triangle_database;
use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_core::bounds::skew_bounds::triangle_skew_upper_bound;
use pq_core::prelude::*;

fn main() {
    let m = 16_000usize;
    let p = 64usize;
    let query = ConjunctiveQuery::triangle();

    let mut report = ExperimentReport::new(
        "E7 / skew-aware triangle",
        format!("triangle with a hub vertex, m = {m}, p = {p}"),
        &[
            "hub fraction",
            "vanilla HC L",
            "skew-aware L",
            "analytic bound",
            "M/p^(2/3)",
            "triangles",
        ],
    );

    for hub_fraction in [0.0f64, 0.05, 0.15, 0.3, 0.5] {
        let hub = (((m as f64) * hub_fraction) as usize).max(1);
        let db = hub_triangle_database(m, hub, 17);
        let vanilla = run_hypercube(&query, &db, p, 19);
        let aware = run_triangle_skew_aware(&db, p, 19);
        assert_eq!(
            vanilla.output.canonicalized(),
            aware.output.canonicalized(),
            "vanilla and skew-aware answers must agree"
        );

        let bits = db.bits_per_value() as f64;
        let m_bits = db.relation_size_bits("S1") as f64;
        let hub_bits = hub as f64 * 2.0 * bits;
        let bound = triangle_skew_upper_bound(m_bits, &[hub_bits * hub_bits, 0.0, 0.0], p);

        report.add_row(vec![
            fmt_f64(hub_fraction),
            vanilla.metrics.max_load().to_string(),
            aware.metrics.max_load().to_string(),
            fmt_f64(bound),
            fmt_f64(m_bits / (p as f64).powf(2.0 / 3.0)),
            aware.output.len().to_string(),
        ]);
    }
    report.print();
}
