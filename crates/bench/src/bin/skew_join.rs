//! E5 — Example 4.1 and Section 4.1: the simple join under skew.
//!
//! Compares, as the heavy hitter grows, the per-server load of
//! (a) the standard shuffle hash join (the skew-free-optimal share
//! assignment, which degrades to `O(M)` under skew),
//! (b) the skew-oblivious HyperCube with the Eq. 18 shares, and
//! (c) the skew-aware star algorithm of §4.2.1,
//! against the skew-free bound `M/p`, the oblivious bound `M/p^{1/3}` and
//! the heavy-hitter bound of Eq. 20.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_bench::skewed_star_database;
use pq_core::baselines::shuffle_hash_join;
use pq_core::bounds::skew_bounds::star_heavy_hitter_bound;
use pq_core::hypercube::run_hypercube_with_shares;
use pq_core::prelude::*;
use pq_core::shares::{integer_shares, ShareRounding};
use pq_core::skew::oblivious::oblivious_share_exponents;
use std::collections::BTreeMap;

fn main() {
    let query = ConjunctiveQuery::simple_join();
    // The heavy hitter's answer is a full Cartesian product (heavy² tuples),
    // so m is kept moderate to bound the output size of the experiment.
    let m = 6_000usize;
    let p = 64usize;

    let mut report = ExperimentReport::new(
        "E5 / Example 4.1",
        format!("simple join S1(z,x1) ⋈ S2(z,x2), m = {m}, p = {p}: load under growing skew"),
        &[
            "heavy fraction",
            "hash join L",
            "oblivious HC L",
            "skew-aware L",
            "M/p",
            "M/p^(1/3)",
            "Eq.20 bound",
            "answers",
        ],
    );

    for heavy_fraction in [0.0f64, 0.01, 0.05, 0.1, 0.2] {
        let heavy = ((m as f64) * heavy_fraction) as usize;
        let db = skewed_star_database(2, m, heavy.max(1), 23);
        let m_bits = db.relation_size_bits("S1");

        let hash = shuffle_hash_join(&query, &db, p, 5);

        let oblivious_exps = oblivious_share_exponents(&query, &db.sizes_bits(), p);
        let oblivious_shares = integer_shares(&oblivious_exps, ShareRounding::GreedyFill);
        let oblivious = run_hypercube_with_shares(&query, &db, p, &oblivious_shares, 5);

        let aware = run_star_skew_aware(&query, &db, p, 5);

        assert_eq!(
            hash.output.canonicalized(),
            aware.output.canonicalized(),
            "all algorithms must agree on the answer"
        );
        assert_eq!(
            oblivious.output.canonicalized().len(),
            aware.output.canonicalized().len()
        );

        let bits = db.bits_per_value() as f64;
        let hh_bits = heavy.max(1) as f64 * 2.0 * bits;
        let maps = [
            BTreeMap::from([(0u64, hh_bits)]),
            BTreeMap::from([(0u64, hh_bits)]),
        ];
        let eq20 = star_heavy_hitter_bound(&maps, p).max(m_bits as f64 / p as f64);

        report.add_row(vec![
            fmt_f64(heavy_fraction),
            hash.metrics.max_load().to_string(),
            oblivious.metrics.max_load().to_string(),
            aware.metrics.max_load().to_string(),
            fmt_f64(m_bits as f64 / p as f64),
            fmt_f64(m_bits as f64 / (p as f64).powf(1.0 / 3.0)),
            fmt_f64(eq20),
            aware.output.len().to_string(),
        ]);
    }
    report.print();
}
