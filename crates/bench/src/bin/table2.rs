//! E1 — Table 2 of the paper: share exponents, fractional vertex-covering
//! number τ*, and the one-round space-exponent lower bound `1 − 1/τ*` for
//! the named query families C_k, T_k, L_k and B_{k,m}.
//!
//! Every number is *derived* from the query hypergraph by the LP/polytope
//! machinery (no hard-coded formulas) and printed next to the closed form
//! the paper states, so any mismatch is immediately visible.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_bench::uniform_sizes;
use pq_core::bounds::one_round::space_exponent_lower_bound;
use pq_core::shares::optimal_share_exponents;
use pq_query::{packing, ConjunctiveQuery};

fn share_exponent_summary(q: &ConjunctiveQuery) -> String {
    // Equal sizes: µ is irrelevant to the exponents, pick a large M.
    let e = optimal_share_exponents(q, &uniform_sizes(q, 1 << 30), 1 << 16);
    let mut parts: Vec<String> = Vec::new();
    for v in q.variables() {
        parts.push(format!("{}={}", v, fmt_f64(e.exponents[&v])));
    }
    parts.join(" ")
}

fn main() {
    let mut report = ExperimentReport::new(
        "E1 / Table 2",
        "share exponents, tau*, and space-exponent lower bound per query family",
        &[
            "query",
            "tau* (LP)",
            "tau* (paper)",
            "eps lower bound (LP)",
            "eps (paper)",
            "share exponents (LP)",
        ],
    );

    let mut add = |q: &ConjunctiveQuery, tau_paper: f64, eps_paper: f64| {
        let tau = packing::vertex_cover_number(q);
        let eps = space_exponent_lower_bound(q);
        report.add_row(vec![
            q.name().to_string(),
            fmt_f64(tau),
            fmt_f64(tau_paper),
            fmt_f64(eps),
            fmt_f64(eps_paper),
            share_exponent_summary(q),
        ]);
    };

    for k in 3..=8 {
        let q = ConjunctiveQuery::cycle(k);
        add(&q, k as f64 / 2.0, 1.0 - 2.0 / k as f64);
    }
    for k in 2..=5 {
        let q = ConjunctiveQuery::star(k);
        add(&q, 1.0, 0.0);
    }
    for k in 2..=8 {
        let q = ConjunctiveQuery::chain(k);
        let tau = (k as f64 / 2.0).ceil();
        add(&q, tau, 1.0 - 1.0 / tau);
    }
    for (k, m) in [(3usize, 2usize), (4, 2), (5, 2), (4, 3), (5, 3), (6, 3)] {
        let q = ConjunctiveQuery::b_query(k, m);
        add(&q, k as f64 / m as f64, 1.0 - m as f64 / k as f64);
    }

    report.print();
}
