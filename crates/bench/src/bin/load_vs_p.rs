//! E4 — Theorems 3.4, 3.5 and 3.15: on skew-free (matching) databases the
//! HyperCube algorithm's measured maximum load tracks
//! `L_upper = L_lower = M / p^{1/τ*}` as the number of servers grows, for a
//! collection of query shapes (triangle, chains, star, K4).

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_bench::matching_database_for_query;
use pq_core::bounds::one_round::{lower_bound_load, upper_bound_load};
use pq_core::prelude::*;
use pq_query::packing::vertex_cover_number;

fn main() {
    let queries = vec![
        (ConjunctiveQuery::triangle(), 12_000usize),
        (ConjunctiveQuery::chain(3), 12_000),
        (ConjunctiveQuery::chain(4), 12_000),
        (ConjunctiveQuery::star(3), 12_000),
        (ConjunctiveQuery::k4(), 4_000),
    ];

    for (query, m) in queries {
        let db = matching_database_for_query(&query, m, 41);
        let tau = vertex_cover_number(&query);
        let mut report = ExperimentReport::new(
            "E4 / load vs p",
            format!(
                "{} on matching relations of {m} tuples (tau* = {}), expected load ~ M/p^(1/tau*)",
                query.name(),
                fmt_f64(tau)
            ),
            &[
                "p",
                "measured L [bits]",
                "L_lower [bits]",
                "L_upper [bits]",
                "measured/lower",
                "answers",
            ],
        );
        for p in [4usize, 8, 16, 32, 64, 128] {
            let run = run_hypercube(&query, &db, p, 13);
            let lower = lower_bound_load(&query, &db.sizes_bits(), p);
            let upper = upper_bound_load(&query, &db.sizes_bits(), p);
            report.add_row(vec![
                p.to_string(),
                run.metrics.max_load().to_string(),
                fmt_f64(lower),
                fmt_f64(upper),
                fmt_f64(run.metrics.max_load() as f64 / lower),
                run.output.len().to_string(),
            ]);
        }
        report.print();
    }
}
