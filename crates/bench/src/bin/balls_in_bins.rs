//! E11 — Appendix A: weighted balls-in-bins tail bounds, the engine behind
//! the HyperCube load analysis (Lemma 3.2 / Corollary 3.3 / Lemma 4.2).
//!
//! Two experiments:
//! * hash `n` balls of bounded weight into `K` bins many times and compare
//!   the empirical maximum bin load against the `(1+δ)·m/K` level predicted
//!   by Theorem A.1 at failure probability 1e-6;
//! * partition a binary matching relation with the HyperCube hash grid and
//!   compare the maximum cell against the `O(m/p)` prediction of
//!   Corollary 3.3.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_core::bounds::balls::{load_multiplier_for_confidence, max_bin_load, weighted_balls_tail_bound};
use pq_relation::{BucketHasher, DataGenerator, HashFamily, MultiplyShiftHash, Schema};

fn main() {
    // ---- Balls in bins. ----
    let mut report = ExperimentReport::new(
        "E11a / weighted balls in bins",
        "empirical max bin load vs the Theorem A.1 prediction (100 trials each)",
        &[
            "balls",
            "bins K",
            "max ball weight",
            "mean m/K",
            "empirical max (worst trial)",
            "predicted (1+delta)m/K @1e-6",
            "bound value at empirical delta",
        ],
    );
    let family = MultiplyShiftHash::new(97);
    for (n, k, heavy_weight) in [(100_000usize, 64usize, 1.0f64), (100_000, 256, 1.0), (50_000, 64, 8.0)] {
        let ids: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut weights = vec![1.0f64; n];
        // A sprinkling of heavier balls, still within beta*m/K.
        for w in weights.iter_mut().step_by(97) {
            *w = heavy_weight;
        }
        let total: f64 = weights.iter().sum();
        let mean = total / k as f64;
        let beta = weights.iter().cloned().fold(0.0, f64::max) * k as f64 / total;
        let mut worst = 0.0f64;
        for trial in 0..100 {
            let max = max_bin_load(&ids, &weights, k, &family, trial);
            worst = worst.max(max);
        }
        let predicted = load_multiplier_for_confidence(k, beta, 1e-6) * mean;
        let empirical_delta = (worst / mean - 1.0).max(0.0);
        report.add_row(vec![
            n.to_string(),
            k.to_string(),
            fmt_f64(heavy_weight),
            fmt_f64(mean),
            fmt_f64(worst),
            fmt_f64(predicted),
            format!("{:.2e}", weighted_balls_tail_bound(k, beta, empirical_delta)),
        ]);
    }
    report.print();

    // ---- HyperCube partitioning of a matching relation (Corollary 3.3). ----
    let mut hc_report = ExperimentReport::new(
        "E11b / HyperCube cell loads",
        "max grid-cell tuples when hashing a matching relation into a p1 x p2 grid",
        &["tuples m", "grid", "mean m/p", "empirical max", "max/mean"],
    );
    let mut gen = DataGenerator::new(5, 1 << 24);
    for (m, p1, p2) in [(100_000usize, 8usize, 8usize), (100_000, 16, 16), (200_000, 32, 8)] {
        let rel = gen.matching_relation(Schema::from_strs("R", &["a", "b"]), m);
        let h1 = family.hasher(1000 + p1, p1);
        let h2 = family.hasher(2000 + p2, p2);
        let mut cells = vec![0usize; p1 * p2];
        for t in rel.iter() {
            cells[h1.bucket(t[0]) * p2 + h2.bucket(t[1])] += 1;
        }
        let max = *cells.iter().max().expect("non-empty");
        let mean = m as f64 / (p1 * p2) as f64;
        hc_report.add_row(vec![
            m.to_string(),
            format!("{p1}x{p2}"),
            fmt_f64(mean),
            max.to_string(),
            fmt_f64(max as f64 / mean),
        ]);
    }
    hc_report.print();
}
