//! E3 — Example 3.17 / Lemma 3.18: the triangle query with unequal relation
//! sizes. Enumerates the five vertices of the edge-packing polytope with
//! their loads `L(u, M, p)`, locates the crossover `p ≈ M/M_1` between the
//! linear-speedup regime (broadcast the small relation) and the
//! `p^{2/3}`-speedup regime, and verifies the HyperCube algorithm's measured
//! load on both sides of the crossover.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_core::bounds::one_round::{argmax_packing, load_for_packing, lower_bound_load, speedup_exponent};
use pq_core::prelude::*;
use pq_query::packing::fractional_edge_packing_vertices;
use pq_relation::{DataGenerator, Schema};
use std::collections::BTreeMap;

fn main() {
    let query = ConjunctiveQuery::triangle();

    // Analytic part: the five polytope vertices and their loads.
    let m1_bits = 1u64 << 14;
    let m_bits = 1u64 << 22;
    let mut sizes: BTreeMap<String, u64> = BTreeMap::new();
    sizes.insert("S1".to_string(), m1_bits);
    sizes.insert("S2".to_string(), m_bits);
    sizes.insert("S3".to_string(), m_bits);
    let sizes_vec = [m1_bits as f64, m_bits as f64, m_bits as f64];

    let mut vertex_report = ExperimentReport::new(
        "E3a / Example 3.17",
        format!("packing-polytope vertices of C3 with M1={m1_bits}, M2=M3={m_bits}, p=256"),
        &["packing u", "L(u, M, p) [bits]"],
    );
    for u in fractional_edge_packing_vertices(&query) {
        let load = load_for_packing(&u, &sizes_vec, 256);
        vertex_report.add_row(vec![
            format!("({}, {}, {})", fmt_f64(u[0]), fmt_f64(u[1]), fmt_f64(u[2])),
            fmt_f64(load),
        ]);
    }
    vertex_report.print();

    // Crossover sweep: speedup exponent flips from 1 (linear) to 2/3 at
    // p ~ M/M1 = 2^8 = 256.
    let mut crossover = ExperimentReport::new(
        "E3b / Lemma 3.18",
        "optimal packing and speedup exponent as p grows (crossover at p = M/M1 = 256)",
        &["p", "L_lower [bits]", "argmax packing", "speedup exponent"],
    );
    for exp in [2u32, 4, 6, 8, 10, 12, 14] {
        let p = 1usize << exp;
        let (u, load) = argmax_packing(&query, &sizes, p);
        crossover.add_row(vec![
            p.to_string(),
            fmt_f64(load),
            format!("({}, {}, {})", fmt_f64(u[0]), fmt_f64(u[1]), fmt_f64(u[2])),
            fmt_f64(speedup_exponent(&query, &sizes, p)),
        ]);
    }
    crossover.print();

    // Measured part: run HyperCube with a small S1 and larger S2, S3 on both
    // sides of the crossover and compare the measured load with L_lower.
    let m1 = 200usize;
    let m = 12_800usize; // M/M1 = 64: crossover at p = 64
    let mut gen = DataGenerator::new(7, 1 << 22);
    let db = gen.matching_database(&[
        (Schema::from_strs("S1", &["a", "b"]), m1),
        (Schema::from_strs("S2", &["a", "b"]), m),
        (Schema::from_strs("S3", &["a", "b"]), m),
    ]);
    let mut measured = ExperimentReport::new(
        "E3c / measured",
        format!("HyperCube load with |S1|={m1}, |S2|=|S3|={m} (crossover at p=64)"),
        &["p", "measured load [bits]", "L_lower [bits]", "ratio", "shares"],
    );
    for p in [8usize, 16, 32, 64, 128, 256, 512] {
        let run = run_hypercube(&query, &db, p, 3);
        let lower = lower_bound_load(&query, &db.sizes_bits(), p);
        let shares: Vec<String> = query
            .variables()
            .iter()
            .map(|v| format!("{}={}", v, run.shares[v]))
            .collect();
        measured.add_row(vec![
            p.to_string(),
            run.metrics.max_load().to_string(),
            fmt_f64(lower),
            fmt_f64(run.metrics.max_load() as f64 / lower),
            shares.join(" "),
        ]);
    }
    measured.print();
}
