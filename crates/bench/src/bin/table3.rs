//! E2 — Table 3 of the paper: the rounds/space tradeoff. For C_k, L_k, T_k
//! and SP_k it reports (a) the space exponent achievable in one round
//! (`1 − 1/τ*`), (b) the number of rounds needed to reach load `O(M/p)`
//! (ε = 0), upper bound from Lemma 5.4 and lower bound from
//! Cor. 5.15/5.17/Lemma 5.18, and (c) the measured number of rounds of the
//! executable plans on the simulator.

use pq_bench::report::{fmt_f64, ExperimentReport};
use pq_bench::{identity_chain_database, matching_database_for_query};
use pq_core::bounds::multiround::{
    chain_rounds_lower_bound, cycle_rounds_lower_bound, rounds_upper_bound,
    treelike_rounds_lower_bound,
};
use pq_core::bounds::one_round::space_exponent_lower_bound;
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan, star_of_paths_plan};
use pq_core::prelude::*;
use pq_query::ConjunctiveQuery;

fn main() {
    let mut report = ExperimentReport::new(
        "E2 / Table 3",
        "space exponent for one round and rounds to reach load O(M/p)",
        &[
            "query",
            "eps (1 round)",
            "eps paper",
            "rounds lower",
            "rounds upper",
            "rounds paper",
            "measured rounds",
        ],
    );

    // C_k: paper says eps = 1 - 2/k, rounds ~ ceil(log2 k).
    for k in [4usize, 6, 8] {
        let q = ConjunctiveQuery::cycle(k);
        let eps = space_exponent_lower_bound(&q);
        let lower = cycle_rounds_lower_bound(k, 0.0);
        let upper = rounds_upper_bound(&q, 0.0);
        report.add_row(vec![
            q.name().to_string(),
            fmt_f64(eps),
            fmt_f64(1.0 - 2.0 / k as f64),
            lower.to_string(),
            upper.to_string(),
            format!("~log2 {k} = {}", (k as f64).log2().ceil() as usize),
            "-".to_string(),
        ]);
    }

    // L_k: measured via the bushy binary plan.
    for k in [4usize, 8, 16] {
        let q = ConjunctiveQuery::chain(k);
        let eps = space_exponent_lower_bound(&q);
        let lower = chain_rounds_lower_bound(k, 0.0);
        let upper = rounds_upper_bound(&q, 0.0);
        let db = identity_chain_database(k, 2_000);
        let run = execute_plan(&bushy_chain_plan(k, 2), &q, &db, 16, 7);
        report.add_row(vec![
            q.name().to_string(),
            fmt_f64(eps),
            fmt_f64(1.0 - 1.0 / (k as f64 / 2.0).ceil()),
            lower.to_string(),
            upper.to_string(),
            format!("~log2 {k} = {}", (k as f64).log2().ceil() as usize),
            run.metrics.num_rounds().to_string(),
        ]);
    }

    // T_k: one round suffices at eps = 0.
    for k in [3usize, 5] {
        let q = ConjunctiveQuery::star(k);
        let db = matching_database_for_query(&q, 2_000, 3);
        let run = run_hypercube(&q, &db, 16, 5);
        report.add_row(vec![
            q.name().to_string(),
            fmt_f64(space_exponent_lower_bound(&q)),
            "0".to_string(),
            "1".to_string(),
            rounds_upper_bound(&q, 0.0).to_string(),
            "1".to_string(),
            run.metrics.num_rounds().to_string(),
        ]);
    }

    // SP_k: eps = 1 - 1/k for one round; two rounds reach load O(M/p).
    for k in [2usize, 3, 4] {
        let q = ConjunctiveQuery::star_of_paths(k);
        let db = matching_database_for_query(&q, 2_000, 9);
        let run = execute_plan(&star_of_paths_plan(k), &q, &db, 4 * k, 11);
        report.add_row(vec![
            q.name().to_string(),
            fmt_f64(space_exponent_lower_bound(&q)),
            fmt_f64(1.0 - 1.0 / k as f64),
            treelike_rounds_lower_bound(&q, 0.0).to_string(),
            rounds_upper_bound(&q, 0.0).to_string(),
            "2".to_string(),
            run.metrics.num_rounds().to_string(),
        ]);
    }

    report.print();
}
