//! Database builders shared by the experiment binaries.

use pq_query::ConjunctiveQuery;
use pq_relation::{DataGenerator, Database, Relation, Schema, Tuple};
use std::collections::BTreeMap;

/// A matching database for an arbitrary query: one random matching relation
/// of `m` tuples per atom, over a domain large enough that accidental skew
/// is negligible.
pub fn matching_database_for_query(query: &ConjunctiveQuery, m: usize, seed: u64) -> Database {
    let domain = ((m as u64) * 64).max(1 << 12);
    let mut gen = DataGenerator::new(seed, domain);
    let specs: Vec<(Schema, usize)> = query
        .atoms()
        .iter()
        .map(|a| {
            let cols: Vec<String> = (0..a.arity()).map(|i| format!("c{i}")).collect();
            (Schema::new(a.relation(), cols), m)
        })
        .collect();
    gen.matching_database(&specs)
}

/// Equal bit sizes for every relation of a query (used by the analytic
/// tables, which assume `M_1 = … = M_ℓ`).
pub fn uniform_sizes(query: &ConjunctiveQuery, bits: u64) -> BTreeMap<String, u64> {
    query
        .relation_names()
        .into_iter()
        .map(|r| (r, bits))
        .collect()
}

/// A star-query database (`T_k`) where value `0` of the centre variable `z`
/// carries `heavy` tuples in every relation and the remaining tuples form
/// matchings.
pub fn skewed_star_database(k: usize, m: usize, heavy: usize, seed: u64) -> Database {
    assert!(heavy <= m, "heavy tuples cannot exceed the cardinality");
    let domain = 1u64 << 24;
    let mut gen = DataGenerator::new(seed, domain);
    let mut db = Database::new(domain);
    for j in 1..=k {
        let mut rel = gen.matching_relation(
            Schema::from_strs(&format!("S{j}"), &["a", "b"]),
            m - heavy,
        );
        for i in 0..heavy as u64 {
            rel.push(Tuple::from([0, (1 << 23) + (j as u64) * (m as u64) + i]));
        }
        db.insert(rel);
    }
    db
}

/// A triangle database where vertex `0` is a hub participating in `hub`
/// triangles (its degree in `S1` and `S3` is `hub`), and the remaining
/// tuples are matchings.
pub fn hub_triangle_database(m: usize, hub: usize, seed: u64) -> Database {
    assert!(hub <= m, "hub tuples cannot exceed the cardinality");
    let domain = 1u64 << 24;
    let mut gen = DataGenerator::new(seed, domain);
    let mut db = Database::new(domain);
    let base = 1u64 << 22;
    let mut s1 = gen.matching_relation(Schema::from_strs("S1", &["a", "b"]), m - hub);
    let mut s2 = gen.matching_relation(Schema::from_strs("S2", &["a", "b"]), m - hub);
    let mut s3 = gen.matching_relation(Schema::from_strs("S3", &["a", "b"]), m - hub);
    for i in 0..hub as u64 {
        s1.push(Tuple::from([0, base + i]));
        s2.push(Tuple::from([base + i, 2 * base + i]));
        s3.push(Tuple::from([2 * base + i, 0]));
    }
    db.insert(s1);
    db.insert(s2);
    db.insert(s3);
    db
}

/// A chain-query database (`L_k`) of identity matchings, which yields
/// exactly `m` answers — convenient when a predictable output size matters.
pub fn identity_chain_database(k: usize, m: usize) -> Database {
    let mut db = Database::new((m as u64).max(2));
    for j in 1..=k {
        db.insert(Relation::from_rows(
            Schema::from_strs(&format!("S{j}"), &["a", "b"]),
            (0..m as u64).map(|i| vec![i, i]).collect(),
        ));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_database_covers_all_atoms() {
        let q = ConjunctiveQuery::cycle(4);
        let db = matching_database_for_query(&q, 100, 1);
        assert_eq!(db.num_relations(), 4);
        assert!(db.is_matching_database());
        for name in q.relation_names() {
            assert_eq!(db.expect_relation(&name).len(), 100);
        }
    }

    #[test]
    fn skewed_star_has_requested_heavy_hitter() {
        let db = skewed_star_database(3, 500, 100, 2);
        for j in 1..=3 {
            let rel = db.expect_relation(&format!("S{j}"));
            assert_eq!(rel.len(), 500);
            assert_eq!(rel.select_eq("a", 0).len(), 100);
        }
    }

    #[test]
    fn hub_triangle_contains_hub_triangles() {
        let db = hub_triangle_database(300, 50, 3);
        let q = ConjunctiveQuery::triangle();
        let out = pq_query::evaluate_sequential(&q, &db);
        assert!(out.len() >= 50);
    }

    #[test]
    fn identity_chain_has_m_answers() {
        let db = identity_chain_database(4, 77);
        let q = ConjunctiveQuery::chain(4);
        assert_eq!(pq_query::evaluate_sequential(&q, &db).len(), 77);
    }

    #[test]
    fn uniform_sizes_covers_relations() {
        let q = ConjunctiveQuery::star(3);
        let sizes = uniform_sizes(&q, 1 << 20);
        assert_eq!(sizes.len(), 3);
        assert!(sizes.values().all(|&s| s == 1 << 20));
    }
}
