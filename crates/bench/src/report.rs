//! Plain-text / markdown reporting helpers for the experiment binaries.

use serde::Serialize;

/// A small experiment report: a title, column headers and string rows,
/// printable both as an aligned console table and as a markdown table
/// (the format pasted into `EXPERIMENTS.md`).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. "E1 / Table 2").
    pub id: String,
    /// One-line description.
    pub description: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentReport {
    /// Create an empty report.
    pub fn new(id: impl Into<String>, description: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentReport {
            id: id.into(),
            description: description.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifying each cell).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Render as an aligned console table.
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.description));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        markdown_table(&self.headers, &self.rows)
    }

    /// Print both representations to stdout (console first, then the
    /// markdown block to paste into EXPERIMENTS.md).
    pub fn print(&self) {
        println!("{}", self.to_console());
        println!("markdown:\n{}", self.to_markdown());
    }
}

/// Render headers + rows as a markdown table.
pub fn markdown_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Format a float compactly (3 significant-ish decimals, no trailing zeros
/// for integers).
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_console_and_markdown() {
        let mut r = ExperimentReport::new("E0", "demo", &["a", "b"]);
        r.add_row(vec!["1".into(), "2".into()]);
        r.add_row(vec!["300".into(), "4".into()]);
        let console = r.to_console();
        assert!(console.contains("E0"));
        assert!(console.contains("300"));
        let md = r.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| 300 | 4 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut r = ExperimentReport::new("E0", "demo", &["a", "b"]);
        r.add_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(2.46813), "2.468");
        assert_eq!(fmt_f64(123456.7), "123457");
    }
}
