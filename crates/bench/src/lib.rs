//! Shared helpers for the experiment harness binaries (`src/bin/*.rs`) and
//! the Criterion benchmarks.
//!
//! Each binary reproduces one table, worked example or asymptotic claim from
//! the paper's evaluation; the mapping is recorded in `DESIGN.md`
//! (experiment index) and the observed outputs in `EXPERIMENTS.md`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod data;
pub mod report;

pub use data::{
    hub_triangle_database, identity_chain_database, matching_database_for_query,
    skewed_star_database, uniform_sizes,
};
pub use report::{markdown_table, ExperimentReport};
