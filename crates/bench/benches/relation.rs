//! Criterion microbenchmark for the storage layer in isolation: binary and
//! 3-way natural joins and hash partitioning over matching relations at
//! m ∈ {10k, 100k}. Baselines live in `BENCH_relation.json`, so regressions
//! in `pq-relation`'s flat row storage or the join/shuffle hot path show up
//! independently of planning and the end-to-end engine pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_mpc::partition_by_hash;
use pq_relation::{natural_join, natural_join_all, DataGenerator, MultiplyShiftHash, Relation, Schema};

/// A chain of `k` identity matchings S1(x0,x1), …, Sk(x{k-1},xk) of `m`
/// rows each: every join step matches 1:1, so intermediate sizes stay `m`
/// and the benchmark isolates per-row costs rather than output explosion.
fn identity_chain(k: usize, m: usize) -> Vec<Relation> {
    (1..=k)
        .map(|j| {
            Relation::from_rows(
                Schema::from_strs(
                    &format!("S{j}"),
                    &[&format!("x{}", j - 1), &format!("x{j}")],
                ),
                (0..m as u64).map(|i| vec![i, i]).collect(),
            )
        })
        .collect()
}

fn bench_relation(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation");
    group.sample_size(10);
    for m in [10_000usize, 100_000] {
        let chain = identity_chain(3, m);

        group.bench_with_input(BenchmarkId::new("binary_join", m), &chain, |b, chain| {
            b.iter(|| natural_join(&chain[0], &chain[1]).len())
        });

        group.bench_with_input(BenchmarkId::new("three_way_join", m), &chain, |b, chain| {
            b.iter(|| natural_join_all(chain).len())
        });

        let mut gen = DataGenerator::new(11, (m as u64) * 16);
        let skewless = gen.matching_relation(Schema::from_strs("R", &["x", "y"]), m);
        let family = MultiplyShiftHash::new(5);
        group.bench_with_input(
            BenchmarkId::new("hash_partition_p16", m),
            &skewless,
            |b, rel| {
                b.iter(|| {
                    partition_by_hash(rel, "x", 16, &family, 0)
                        .iter()
                        .map(Relation::len)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_relation);
criterion_main!(benches);
