//! Criterion benchmarks for the one-round HyperCube algorithm (E4 support):
//! end-to-end simulated runtime per query shape and cluster size on
//! matching data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::matching_database_for_query;
use pq_core::hypercube::run_hypercube;
use pq_query::ConjunctiveQuery;

fn bench_hypercube_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube_one_round");
    group.sample_size(10);
    let cases = vec![
        (ConjunctiveQuery::triangle(), 4_000usize),
        (ConjunctiveQuery::chain(3), 4_000),
        (ConjunctiveQuery::star(3), 4_000),
    ];
    for (query, m) in cases {
        let db = matching_database_for_query(&query, m, 7);
        for p in [16usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(query.name().to_string(), format!("p{p}")),
                &p,
                |b, &p| b.iter(|| run_hypercube(&query, &db, p, 11)),
            );
        }
    }
    group.finish();
}

fn bench_hypercube_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube_input_scaling");
    group.sample_size(10);
    let query = ConjunctiveQuery::triangle();
    for m in [1_000usize, 4_000, 16_000] {
        let db = matching_database_for_query(&query, m, 13);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| run_hypercube(&query, &db, 64, 17))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hypercube_queries, bench_hypercube_scaling);
criterion_main!(benches);
