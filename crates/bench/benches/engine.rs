//! Criterion benchmark for the `pq-engine` end-to-end pipeline: cold runs
//! (the plan cache is cleared before every iteration, so each run pays
//! parse + LPs + candidate pricing + execute; the snapshot's statistics
//! catalogue is computed once at engine construction, as on any warm
//! server) versus warm runs (plan served from the shared LRU cache). Both
//! share one engine, so the gap between the two is exactly the planning
//! cost the cache amortises; baselines are recorded in `BENCH_engine.json`.
//!
//! The `engine_update` group measures the mutation paths of the
//! append-heavy workload (one single-row insert per iteration at m=4000):
//! the typed `Engine::apply` delta path (statistics maintained
//! incrementally, untouched relations shared) against the closure-based
//! `Engine::update` fallback (touched relations re-analysed from scratch),
//! each alone and interleaved with a warm query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::matching_database_for_query;
use pq_engine::{ClusterConfig, Delta, DurabilityOptions, Engine, ExecBackend};
use pq_mpc::net::LocalWorkers;
use pq_query::ConjunctiveQuery;
use pq_wal::SyncPolicy;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    let cases = [
        ("triangle", ConjunctiveQuery::triangle(), 16usize),
        ("chain4", ConjunctiveQuery::chain(4), 16),
        ("star3", ConjunctiveQuery::star(3), 16),
    ];
    for (name, query, p) in cases {
        for m in [1_000usize, 4_000] {
            let db = matching_database_for_query(&query, m, 7);
            let text = query.to_string();

            let cold_engine = Engine::new(db.clone(), p);
            let cold = cold_engine.session();
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_cold"), m),
                &text,
                |b, text| {
                    b.iter(|| {
                        cold_engine.clear_plan_cache_keep_stats();
                        cold.run(text).expect("runs").outcome.output.len()
                    })
                },
            );

            let warm = Engine::new(db.clone(), p).session();
            warm.run(&text).expect("warm-up run");
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_warm"), m),
                &text,
                |b, text| b.iter(|| warm.run(text).expect("runs").outcome.output.len()),
            );
        }
    }
    group.finish();
}

fn bench_engine_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_update");
    group.sample_size(10);
    let query = ConjunctiveQuery::chain(3);
    let text = query.to_string();
    let m = 4_000usize;
    let db = matching_database_for_query(&query, m, 7);
    // A value far outside the generated domain: the inserted row joins
    // nothing, so interleaved query outputs stay comparable as the
    // relation grows across iterations.
    let row = vec![1u64 << 40, (1u64 << 40) + 1];

    // The typed O(delta) path: one single-row insert per iteration.
    let apply_engine = Engine::new(db.clone(), 16);
    group.bench_with_input(BenchmarkId::new("apply_insert", m), &row, |b, row| {
        b.iter(|| {
            apply_engine
                .apply(Delta::insert("S1", vec![row.clone()]))
                .expect("valid delta")
                .fingerprint()
        })
    });

    // The closure fallback: same single-row insert, but the touched
    // relation's statistics are rebuilt by re-scanning it.
    let update_engine = Engine::new(db.clone(), 16);
    group.bench_with_input(BenchmarkId::new("update_recompute", m), &row, |b, row| {
        b.iter(|| {
            update_engine
                .update(|db| db.relation_mut("S1").unwrap().push_row(row))
                .fingerprint()
        })
    });

    // The append-heavy serving mix the ROADMAP targets: one insert, one
    // (plan-cached) query per iteration.
    let mixed_engine = Engine::new(db.clone(), 16);
    let mixed = mixed_engine.session();
    mixed.run(&text).expect("warm-up run");
    group.bench_with_input(
        BenchmarkId::new("apply_insert_then_query", m),
        &row,
        |b, row| {
            b.iter(|| {
                mixed_engine
                    .apply(Delta::insert("S1", vec![row.clone()]))
                    .expect("valid delta");
                mixed.run(&text).expect("runs").outcome.output.len()
            })
        },
    );
    group.finish();
}

/// The price of a real wire: the same warm (plan-cached) triangle run on
/// the in-process simulator versus the cluster backend over 3 local worker
/// threads behind loopback TCP. The gap is pure distribution cost — frame
/// encode/decode, kernel round trips, the barrier — since both backends
/// route identical messages from the identical plan.
fn bench_engine_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_backend");
    group.sample_size(10);
    let query = ConjunctiveQuery::triangle();
    let text = query.to_string();
    let m = 4_000usize;
    let db = matching_database_for_query(&query, m, 7);
    let p = 4usize;

    let sim = Engine::new(db.clone(), p).session();
    sim.run(&text).expect("warm-up run");
    group.bench_with_input(BenchmarkId::new("simulator_warm", m), &text, |b, text| {
        b.iter(|| sim.run(text).expect("runs").outcome.output.len())
    });

    let workers = LocalWorkers::spawn(3).expect("spawn local workers");
    let cluster = Engine::new(db.clone(), p)
        .with_backend(ExecBackend::cluster(ClusterConfig::new(
            workers.addresses().to_vec(),
        )))
        .session();
    cluster.run(&text).expect("warm-up run");
    group.bench_with_input(BenchmarkId::new("cluster_warm", m), &text, |b, text| {
        b.iter(|| cluster.run(text).expect("runs").outcome.output.len())
    });
    drop(cluster);
    workers.shutdown();
    group.finish();
}

/// The redial tax the connection pool deletes: one minimal single-atom
/// round driven through a persistent [`pq_mpc::net::WorkerPool`] (dial +
/// Hello paid once, before the measurement) versus a fresh
/// [`pq_mpc::net::Coordinator::connect`] per iteration (dial + Hello +
/// TCP handshake every time — what every cluster query paid before the
/// pool existed).
fn bench_cluster_reconnect(c: &mut Criterion) {
    use pq_mpc::net::{AtomSpec, Coordinator, RoundProgram, WorkerPool};
    use pq_mpc::Message;
    use pq_relation::{Relation, Schema};

    let mut group = c.benchmark_group("cluster_reconnect");
    group.sample_size(10);
    let program = RoundProgram {
        name: "Q".into(),
        output_vars: vec!["x".into(), "y".into()],
        atoms: vec![AtomSpec {
            relation: "R".into(),
            variables: vec!["x".into(), "y".into()],
        }],
    };
    let messages = || {
        (0..2)
            .map(|to| {
                Message::tuples(
                    to,
                    Relation::from_rows(
                        Schema::from_strs("R", &["x", "y"]),
                        vec![vec![1, 2], vec![3, 4]],
                    ),
                )
            })
            .collect::<Vec<_>>()
    };
    let workers = LocalWorkers::spawn(2).expect("spawn local workers");
    let config = ClusterConfig::new(workers.addresses().to_vec());

    let pool = WorkerPool::new(config.clone());
    pool.execute(2, 16, 0, &program, &messages, None).expect("warm-up round");
    group.bench_function("pooled_round", |b| {
        b.iter(|| {
            pool.execute(2, 16, 0, &program, &messages, None)
                .expect("runs")
                .0
                .len()
        })
    });

    group.bench_function("fresh_dial_round", |b| {
        b.iter(|| {
            let mut coordinator = Coordinator::connect(&config, 2, 16).expect("connect");
            coordinator.run_round(messages(), &program).expect("runs").len()
        })
    });
    drop(pool);
    workers.shutdown();
    group.finish();
}

/// The persistent executor pool's scaling curve: the same warm
/// (plan-cached) triangle — a three-way join — run on engines whose pool
/// is sized 1, 2 and 4. Pool size 1 is the fully inline path (zero worker
/// threads, the regression guard against the pre-pool records); larger
/// pools split per-server work and, at m=100k, the morsel-parallel join
/// and routing kernels (per-server fragments cross the 2×MORSEL_ROWS
/// probe threshold). Every size returns byte-identical rows.
fn bench_engine_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallel");
    group.sample_size(10);
    let query = ConjunctiveQuery::triangle();
    let text = query.to_string();

    // The big three-way join where parallelism has room to pay.
    let big = matching_database_for_query(&query, 100_000, 7);
    for threads in [1usize, 2, 4] {
        let session = Engine::new(big.clone(), 16).with_threads(threads).session();
        session.run(&text).expect("warm-up run");
        group.bench_with_input(
            BenchmarkId::new(format!("three_way_join_t{threads}"), 100_000),
            &text,
            |b, text| b.iter(|| session.run(text).expect("runs").outcome.output.len()),
        );
    }

    // The small warm triangle: the fixed pool overhead must stay in the
    // noise at every size (t1 inline ≈ the engine_end_to_end record).
    let small = matching_database_for_query(&query, 4_000, 7);
    for threads in [1usize, 2, 4] {
        let session = Engine::new(small.clone(), 16).with_threads(threads).session();
        session.run(&text).expect("warm-up run");
        group.bench_with_input(
            BenchmarkId::new(format!("triangle_warm_t{threads}"), 4_000),
            &text,
            |b, text| b.iter(|| session.run(text).expect("runs").outcome.output.len()),
        );
    }
    group.finish();
}

/// The cost of the observability layer itself: the identical warm
/// (plan-cached) triangle run with metrics recording on (the default)
/// versus stripped (`with_metrics_enabled(false)`, which turns every
/// instrumentation site into one relaxed atomic load). The acceptance
/// budget for the gap is < 2%: a traced run is a handful of `Instant`
/// reads and atomic adds against ~2ms of execution.
fn bench_engine_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_obs");
    group.sample_size(10);
    let query = ConjunctiveQuery::triangle();
    let text = query.to_string();
    let m = 4_000usize;
    let db = matching_database_for_query(&query, m, 7);
    let p = 16usize;

    let observed = Engine::new(db.clone(), p).session();
    observed.run(&text).expect("warm-up run");
    group.bench_with_input(BenchmarkId::new("instrumented_warm", m), &text, |b, text| {
        b.iter(|| observed.run(text).expect("runs").outcome.output.len())
    });

    let stripped = Engine::new(db.clone(), p)
        .with_metrics_enabled(false)
        .session();
    stripped.run(&text).expect("warm-up run");
    group.bench_with_input(BenchmarkId::new("stripped_warm", m), &text, |b, text| {
        b.iter(|| stripped.run(text).expect("runs").outcome.output.len())
    });
    group.finish();
}

/// The price of durability on the delta path: the same single-row
/// `Engine::apply` as `engine_update/apply_insert`, but logged to a
/// write-ahead log first, under each sync policy. `never` pays one
/// buffered `write(2)` per delta (process-crash durable via the page
/// cache), `group-commit` adds an fsync every 64 records / 64 KiB, and
/// `always` fsyncs every append — the full spectrum from "almost free" to
/// "every delta machine-crash durable". The `recover_scan` case measures
/// the other end of the deal: scanning and decoding a 1000-delta log
/// suffix back out of the directory, as startup recovery does.
fn bench_engine_wal(c: &mut Criterion) {
    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir()
                .join(format!("pq-bench-wal-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    let mut group = c.benchmark_group("engine_wal");
    group.sample_size(10);
    let query = ConjunctiveQuery::chain(3);
    let m = 4_000usize;
    let db = matching_database_for_query(&query, m, 7);
    let dict = pq_relation::ValueDictionary::new();
    let row = vec![1u64 << 40, (1u64 << 40) + 1];

    // The in-memory baseline the WAL rides on, for the headline ratio.
    let plain = Engine::new(db.clone(), 16);
    group.bench_with_input(BenchmarkId::new("apply_in_memory", m), &row, |b, row| {
        b.iter(|| {
            plain
                .apply(Delta::insert("S1", vec![row.clone()]))
                .expect("valid delta")
                .fingerprint()
        })
    });

    for sync in [SyncPolicy::Never, SyncPolicy::GroupCommit, SyncPolicy::Always] {
        let dir = TempDir::new(sync.name());
        let options = DurabilityOptions { sync, checkpoint_every: 0 };
        let opened =
            pq_engine::open_durable(&dir.0, options, 16, Some((db.clone(), dict.clone())))
                .expect("durable open");
        let id = BenchmarkId::new(format!("apply_wal_{}", sync.name()), m);
        group.bench_with_input(id, &row, |b, row| {
            b.iter(|| {
                opened
                    .engine
                    .apply(Delta::insert("S1", vec![row.clone()]))
                    .expect("valid delta")
                    .fingerprint()
            })
        });
    }

    // Startup recovery's hot half: scan the directory, verify CRCs and
    // decode 1000 logged single-row deltas (read-only, so each iteration
    // sees the identical log).
    let dir = TempDir::new("recover");
    let options = DurabilityOptions { sync: SyncPolicy::Never, checkpoint_every: 0 };
    let opened = pq_engine::open_durable(&dir.0, options, 16, Some((db.clone(), dict.clone())))
        .expect("durable open");
    for i in 0..1_000u64 {
        opened
            .engine
            .apply(Delta::insert("S1", vec![vec![(1 << 41) + 2 * i, (1 << 41) + 2 * i + 1]]))
            .expect("valid delta");
    }
    drop(opened);
    group.bench_with_input(BenchmarkId::new("recover_scan", 1_000), &dir.0, |b, dir| {
        b.iter(|| {
            let recovery = pq_wal::recover(dir).expect("recover");
            assert_eq!(recovery.deltas.len(), 1_000);
            recovery.records_replayed
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_engine_update,
    bench_engine_backend,
    bench_cluster_reconnect,
    bench_engine_parallel,
    bench_engine_obs,
    bench_engine_wal
);
criterion_main!(benches);
