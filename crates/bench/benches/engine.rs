//! Criterion benchmark for the `pq-engine` end-to-end pipeline: cold runs
//! (the plan cache is cleared before every iteration, so each run pays
//! parse + LPs + candidate pricing + execute; the snapshot's statistics
//! catalogue is computed once at engine construction, as on any warm
//! server) versus warm runs (plan served from the shared LRU cache). Both
//! share one engine, so the gap between the two is exactly the planning
//! cost the cache amortises; baselines are recorded in `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::matching_database_for_query;
use pq_engine::Engine;
use pq_query::ConjunctiveQuery;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    let cases = [
        ("triangle", ConjunctiveQuery::triangle(), 16usize),
        ("chain4", ConjunctiveQuery::chain(4), 16),
        ("star3", ConjunctiveQuery::star(3), 16),
    ];
    for (name, query, p) in cases {
        for m in [1_000usize, 4_000] {
            let db = matching_database_for_query(&query, m, 7);
            let text = query.to_string();

            let cold_engine = Engine::new(db.clone(), p);
            let cold = cold_engine.session();
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_cold"), m),
                &text,
                |b, text| {
                    b.iter(|| {
                        cold_engine.clear_plan_cache_keep_stats();
                        cold.run(text).expect("runs").outcome.output.len()
                    })
                },
            );

            let warm = Engine::new(db.clone(), p).session();
            warm.run(&text).expect("warm-up run");
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_warm"), m),
                &text,
                |b, text| b.iter(|| warm.run(text).expect("runs").outcome.output.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
