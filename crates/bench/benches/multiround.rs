//! Criterion benchmarks for the multi-round machinery (E8/E9 support):
//! bushy-plan execution for chain queries and the connected-components
//! strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::matching_database_for_query;
use pq_core::multiround::connected::{connected_components, CcStrategy};
use pq_core::multiround::plan::{bushy_chain_plan, execute_plan};
use pq_query::ConjunctiveQuery;
use pq_relation::DataGenerator;

fn bench_chain_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_plan_execution");
    group.sample_size(10);
    let k = 8;
    let query = ConjunctiveQuery::chain(k);
    let db = matching_database_for_query(&query, 4_000, 3);
    for fan_in in [2usize, 4] {
        let plan = bushy_chain_plan(k, fan_in);
        group.bench_with_input(BenchmarkId::from_parameter(format!("fan{fan_in}")), &plan, |b, plan| {
            b.iter(|| execute_plan(plan, &query, &db, 32, 7))
        });
    }
    group.finish();
}

fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("connected_components");
    group.sample_size(10);
    let mut gen = DataGenerator::new(11, 1 << 24);
    let edges = gen.layered_matching_graph(1_000, 16);
    for strategy in [CcStrategy::Propagation, CcStrategy::PointerJumping] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| b.iter(|| connected_components(&edges, 16, 7, s)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chain_plans, bench_connected_components);
criterion_main!(benches);
