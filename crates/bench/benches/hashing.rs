//! Criterion benchmark for the hash families (ablation from DESIGN.md):
//! multiply-shift versus tabulation hashing, as used by the HyperCube
//! router.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_relation::{BucketHasher, HashFamily, MultiplyShiftHash, TabulationHash};

fn bench_hash_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_family_throughput");
    let values: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();

    let ms = MultiplyShiftHash::new(7).hasher(0, 64);
    group.bench_with_input(BenchmarkId::from_parameter("multiply_shift"), &values, |b, vs| {
        b.iter(|| vs.iter().map(|&v| ms.bucket(v)).sum::<usize>())
    });

    let tab = TabulationHash::new(7).hasher(0, 64);
    group.bench_with_input(BenchmarkId::from_parameter("tabulation"), &values, |b, vs| {
        b.iter(|| vs.iter().map(|&v| tab.bucket(v)).sum::<usize>())
    });
    group.finish();
}

criterion_group!(benches, bench_hash_families);
criterion_main!(benches);
