//! Criterion benchmark for the local (per-server) evaluation strategy
//! (ablation from DESIGN.md): binary-at-a-time natural join versus the
//! greedy multiway natural join used by `natural_join_all`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::matching_database_for_query;
use pq_query::{instantiate, ConjunctiveQuery};
use pq_relation::{natural_join, natural_join_all};

fn bench_local_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_join_strategy");
    group.sample_size(20);
    let query = ConjunctiveQuery::chain(4);
    for m in [2_000usize, 8_000] {
        let db = matching_database_for_query(&query, m, 3);
        let bound = instantiate(&query, &db);
        group.bench_with_input(BenchmarkId::new("greedy_multiway", m), &bound, |b, bound| {
            b.iter(|| natural_join_all(bound))
        });
        group.bench_with_input(BenchmarkId::new("left_deep_binary", m), &bound, |b, bound| {
            b.iter(|| {
                let mut acc = bound[0].clone();
                for r in &bound[1..] {
                    acc = natural_join(&acc, r);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_join);
criterion_main!(benches);
