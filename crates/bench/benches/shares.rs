//! Criterion benchmarks for the share-exponent machinery (ablation from
//! DESIGN.md): the LP solve itself, and floor vs greedy-fill share
//! integerisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::uniform_sizes;
use pq_core::shares::{integer_shares, optimal_share_exponents, ShareRounding};
use pq_query::{packing, ConjunctiveQuery};

fn bench_share_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("share_exponent_lp");
    let queries = vec![
        ConjunctiveQuery::triangle(),
        ConjunctiveQuery::chain(8),
        ConjunctiveQuery::cycle(8),
        ConjunctiveQuery::k4(),
        ConjunctiveQuery::b_query(6, 2),
    ];
    for q in queries {
        let sizes = uniform_sizes(&q, 1 << 24);
        group.bench_with_input(BenchmarkId::from_parameter(q.name().to_string()), &q, |b, q| {
            b.iter(|| optimal_share_exponents(q, &sizes, 64))
        });
    }
    group.finish();
}

fn bench_share_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("share_rounding");
    let q = ConjunctiveQuery::cycle(6);
    let sizes = uniform_sizes(&q, 1 << 24);
    let exps = optimal_share_exponents(&q, &sizes, 1000);
    for strategy in [ShareRounding::Floor, ShareRounding::GreedyFill] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| b.iter(|| integer_shares(&exps, s)),
        );
    }
    group.finish();
}

fn bench_packing_polytope(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing_polytope_vertices");
    for q in [
        ConjunctiveQuery::triangle(),
        ConjunctiveQuery::cycle(6),
        ConjunctiveQuery::k4(),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(q.name().to_string()), &q, |b, q| {
            b.iter(|| packing::fractional_edge_packing_vertices(q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_share_lp, bench_share_rounding, bench_packing_polytope);
criterion_main!(benches);
