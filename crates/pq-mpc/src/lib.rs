//! The MPC (Massively Parallel Communication) cluster simulator.
//!
//! The MPC model (Section 2.1 of the paper) is parameterised by the number
//! of servers `p`, the number of rounds `r`, and the maximum load `L` — the
//! number of bits any server *receives* in any single round. Local
//! computation is free; only communication is charged. This crate simulates
//! exactly that cost model:
//!
//! * [`cluster::Cluster`] owns `p` [`server::Server`]s and executes
//!   synchronised communication rounds, accounting the bits each server
//!   receives per round;
//! * [`message::Message`] carries either relation fragments (tuples) or raw
//!   bit payloads (e.g. broadcast heavy-hitter statistics);
//! * [`metrics::RunMetrics`] reports the quantities the paper's theorems
//!   bound: the number of rounds `r`, the maximum load `L`, per-round loads,
//!   and the replication rate `r = Σ_s L_s / |I|` of Section 3.4;
//! * [`partition`] distributes input relations across servers
//!   (the partitioned-input model) or keeps them whole on conceptual input
//!   servers (the input-server model used by the lower bounds);
//! * [`parallel`] fans per-server computation phases out over the
//!   persistent `pq-exec` worker pool — the simulator's wall-clock
//!   accelerator, irrelevant to the cost model;
//! * [`net`] runs the same round structure over real TCP sockets — worker
//!   processes, a coordinator, and a binary framed protocol — so the
//!   model's idealised load can be compared against measured bytes on an
//!   actual wire.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod message;
pub mod metrics;
pub mod net;
pub mod parallel;
pub mod partition;
pub mod server;

pub use cluster::Cluster;
pub use message::{broadcast_relation, Message, Payload};
pub use metrics::{RoundStats, RunMetrics};
pub use net::{
    serve_worker, shutdown_workers, AtomSpec, ClusterConfig, ClusterError, Coordinator,
    LocalWorkers, RoundProgram,
};
pub use parallel::map_servers_parallel;
pub use partition::{partition_by_hash, partition_round_robin};
pub use server::{Server, ServerId};
