//! Messages exchanged during a communication phase.

use crate::server::ServerId;
use pq_relation::Relation;
use serde::{Deserialize, Serialize};

/// The payload of a message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// A fragment of a relation: the receiving server stores it under the
    /// relation's name (merging with fragments of the same relation received
    /// earlier). Its cost is `arity · |tuples| · bits_per_value`.
    Tuples(Relation),
    /// An opaque payload of a given size in bits, stored under a label
    /// (used for statistics such as heavy-hitter frequencies, whose size the
    /// paper argues is `O(p)` values). Cost is exactly `bits`.
    Raw {
        /// Label under which the receiving server can look the payload up.
        label: String,
        /// Size of the payload in bits, charged to the receiver's load.
        bits: u64,
    },
}

impl Payload {
    /// Size of the payload in bits, given the per-value width.
    pub fn size_bits(&self, bits_per_value: u64) -> u64 {
        match self {
            Payload::Tuples(rel) => rel.size_bits(bits_per_value),
            Payload::Raw { bits, .. } => *bits,
        }
    }
}

/// A message addressed to one server. The sender is not tracked: the MPC
/// cost model only charges the *receiver's* load, and the lower bounds are
/// stated in the input-server model where round-one senders are conceptual
/// input servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Destination server.
    pub to: ServerId,
    /// Payload delivered to the destination.
    pub payload: Payload,
}

impl Message {
    /// A message carrying relation tuples.
    pub fn tuples(to: ServerId, relation: Relation) -> Self {
        Message {
            to,
            payload: Payload::Tuples(relation),
        }
    }

    /// A message carrying `bits` opaque bits under `label`.
    pub fn raw(to: ServerId, label: impl Into<String>, bits: u64) -> Self {
        Message {
            to,
            payload: Payload::Raw {
                label: label.into(),
                bits,
            },
        }
    }
}

/// Broadcast a relation to every one of `p` servers (one message each).
pub fn broadcast_relation(relation: &Relation, p: usize) -> Vec<Message> {
    (0..p).map(|s| Message::tuples(s, relation.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Relation, Schema};

    fn rel() -> Relation {
        Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            vec![vec![1, 2], vec![3, 4]],
        )
    }

    #[test]
    fn payload_sizes() {
        let p = Payload::Tuples(rel());
        assert_eq!(p.size_bits(10), 2 * 2 * 10);
        let r = Payload::Raw {
            label: "stats".into(),
            bits: 123,
        };
        assert_eq!(r.size_bits(10), 123);
    }

    #[test]
    fn constructors() {
        let m = Message::tuples(3, rel());
        assert_eq!(m.to, 3);
        assert!(matches!(m.payload, Payload::Tuples(_)));
        let m = Message::raw(1, "hh", 64);
        assert_eq!(m.to, 1);
        assert_eq!(m.payload.size_bits(8), 64);
    }

    #[test]
    fn broadcast_sends_to_every_server() {
        let msgs = broadcast_relation(&rel(), 4);
        assert_eq!(msgs.len(), 4);
        let dests: Vec<_> = msgs.iter().map(|m| m.to).collect();
        assert_eq!(dests, vec![0, 1, 2, 3]);
    }
}
