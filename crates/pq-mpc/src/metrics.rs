//! Run metrics: the quantities the paper's theorems bound.

use serde::{Deserialize, Serialize};

/// Statistics of a single communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round number (1-based, matching the paper's "round 1 is the first
    /// communication").
    pub round: usize,
    /// Bits received by each server during this round.
    pub received_bits: Vec<u64>,
    /// Number of messages delivered.
    pub messages: usize,
    /// **Measured** bytes each server read off a real network during this
    /// round, frame headers included — empty for simulator runs, where no
    /// wire exists. Unlike [`RoundStats::received_bits`] (the model's
    /// idealised `bits_per_value` accounting), this is what the kernel
    /// actually delivered to each worker process.
    pub wire_bytes: Vec<u64>,
    /// Wall-clock duration of this round in microseconds (shuffle + local
    /// join + barrier), zero for simulator runs: the MPC model charges
    /// communication, not time, so this is measurement-only.
    pub wall_micros: u64,
}

impl RoundStats {
    /// A round with model accounting only — what the in-process simulator
    /// records, with no wire underneath.
    pub fn simulated(round: usize, received_bits: Vec<u64>, messages: usize) -> Self {
        RoundStats {
            round,
            received_bits,
            messages,
            wire_bytes: Vec::new(),
            wall_micros: 0,
        }
    }
    /// The maximum load of this round: `max_s` bits received by server `s`.
    pub fn max_load(&self) -> u64 {
        self.received_bits.iter().copied().max().unwrap_or(0)
    }

    /// Total bits received across all servers this round.
    pub fn total_bits(&self) -> u64 {
        self.received_bits.iter().sum()
    }

    /// Mean load per server this round.
    pub fn mean_load(&self) -> f64 {
        if self.received_bits.is_empty() {
            0.0
        } else {
            self.total_bits() as f64 / self.received_bits.len() as f64
        }
    }

    /// Total measured bytes on the wire this round (0 for simulator runs).
    pub fn total_wire_bytes(&self) -> u64 {
        self.wire_bytes.iter().sum()
    }

    /// The largest number of bytes any single worker read this round.
    pub fn max_wire_bytes(&self) -> u64 {
        self.wire_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Metrics of a full algorithm run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-round statistics, in execution order.
    pub rounds: Vec<RoundStats>,
    /// Total input size `|I|` in bits (used for the replication rate).
    pub input_bits: u64,
    /// Measured bytes spent collecting head fragments back at the
    /// coordinator after the final round (0 for simulator runs). Kept out
    /// of the per-round [`RoundStats::wire_bytes`]: the MPC cost model does
    /// not charge output collection, so mixing it into round loads would
    /// skew any comparison against the paper's bounds.
    pub result_wire_bytes: u64,
    /// True when the run's answer came from a *fallback* path rather than
    /// the requested backend — the cluster stayed unhealthy past its
    /// retry budget and the engine degraded to the simulator. A retry
    /// that succeeded on the cluster (even on a reduced worker topology,
    /// which computes the exact answer) is **not** degraded.
    pub degraded: bool,
}

impl RunMetrics {
    /// Number of communication rounds `r`.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The maximum load `L`: the largest number of bits any server received
    /// in any single round.
    pub fn max_load(&self) -> u64 {
        self.rounds.iter().map(RoundStats::max_load).max().unwrap_or(0)
    }

    /// Maximum load of each round, in order.
    pub fn per_round_max_loads(&self) -> Vec<u64> {
        self.rounds.iter().map(RoundStats::max_load).collect()
    }

    /// Total bits communicated over the whole run.
    pub fn total_bits(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_bits).sum()
    }

    /// The replication rate `r = Σ_s L_s / |I|` of Section 3.4: how many
    /// times, on average, each input bit was communicated. Returns 0 when
    /// the input size is unknown (zero).
    pub fn replication_rate(&self) -> f64 {
        if self.input_bits == 0 {
            0.0
        } else {
            self.total_bits() as f64 / self.input_bits as f64
        }
    }

    /// The *space exponent* ε implied by a measured load, number of servers
    /// and input size: the value such that `L = |I| / p^(1−ε)` (Section 3.4).
    /// Returns `None` when the inputs make the exponent undefined
    /// (`p <= 1`, zero load or zero input).
    pub fn space_exponent(&self, p: usize) -> Option<f64> {
        let load = self.max_load();
        if p <= 1 || load == 0 || self.input_bits == 0 {
            return None;
        }
        // L = I / p^(1-eps)  =>  1 - eps = ln(I/L)/ln(p)
        let ratio = self.input_bits as f64 / load as f64;
        Some(1.0 - ratio.ln() / (p as f64).ln())
    }

    /// Total measured bytes on the wire across all shuffle rounds (result
    /// collection excluded; see [`RunMetrics::result_wire_bytes`]). Zero
    /// for simulator runs.
    pub fn bytes_on_wire(&self) -> u64 {
        self.rounds.iter().map(RoundStats::total_wire_bytes).sum()
    }

    /// Total measured bytes per round, in execution order.
    pub fn bytes_on_wire_per_round(&self) -> Vec<u64> {
        self.rounds.iter().map(RoundStats::total_wire_bytes).collect()
    }

    /// True when this run was measured on a real wire (any round carries
    /// nonzero measured traffic), as opposed to simulated.
    pub fn is_measured(&self) -> bool {
        self.bytes_on_wire() > 0 || self.result_wire_bytes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            rounds: vec![
                RoundStats::simulated(1, vec![100, 200, 150, 50], 10),
                RoundStats::simulated(2, vec![80, 90, 100, 95], 8),
            ],
            input_bits: 400,
            result_wire_bytes: 0,
            degraded: false,
        }
    }

    #[test]
    fn round_stats_aggregates() {
        let m = metrics();
        assert_eq!(m.rounds[0].max_load(), 200);
        assert_eq!(m.rounds[0].total_bits(), 500);
        assert_eq!(m.rounds[0].mean_load(), 125.0);
        assert_eq!(m.rounds[1].max_load(), 100);
    }

    #[test]
    fn run_metrics_aggregates() {
        let m = metrics();
        assert_eq!(m.num_rounds(), 2);
        assert_eq!(m.max_load(), 200);
        assert_eq!(m.per_round_max_loads(), vec![200, 100]);
        assert_eq!(m.total_bits(), 500 + 365);
        assert!((m.replication_rate() - 865.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_well_defined() {
        let m = RunMetrics::default();
        assert_eq!(m.num_rounds(), 0);
        assert_eq!(m.max_load(), 0);
        assert_eq!(m.replication_rate(), 0.0);
        assert_eq!(m.space_exponent(4), None);
    }

    #[test]
    fn space_exponent_matches_definition() {
        // p = 16, input = 1 << 20 bits, load = input / p  =>  eps = 0.
        let m = RunMetrics {
            rounds: vec![RoundStats::simulated(1, vec![1 << 16; 16], 16)],
            input_bits: 1 << 20,
            result_wire_bytes: 0,
            degraded: false,
        };
        let eps = m.space_exponent(16).unwrap();
        assert!(eps.abs() < 1e-9);
        // Load = input / sqrt(p)  =>  eps = 1/2.
        let m = RunMetrics {
            rounds: vec![RoundStats::simulated(1, vec![1 << 18; 16], 16)],
            input_bits: 1 << 20,
            result_wire_bytes: 0,
            degraded: false,
        };
        let eps = m.space_exponent(16).unwrap();
        assert!((eps - 0.5).abs() < 1e-9);
        assert_eq!(m.space_exponent(1), None);
    }

    #[test]
    fn mean_load_of_empty_round() {
        let r = RoundStats::simulated(1, vec![], 0);
        assert_eq!(r.mean_load(), 0.0);
        assert_eq!(r.max_load(), 0);
    }

    #[test]
    fn wire_byte_accounting() {
        let mut m = metrics();
        assert_eq!(m.bytes_on_wire(), 0);
        assert!(!m.is_measured(), "simulated runs carry no wire bytes");
        m.rounds[0].wire_bytes = vec![100, 250, 50, 0];
        m.rounds[1].wire_bytes = vec![10, 20, 30, 40];
        m.result_wire_bytes = 77;
        assert_eq!(m.rounds[0].total_wire_bytes(), 400);
        assert_eq!(m.rounds[0].max_wire_bytes(), 250);
        assert_eq!(m.bytes_on_wire(), 500);
        assert_eq!(m.bytes_on_wire_per_round(), vec![400, 100]);
        assert!(m.is_measured());
    }
}
