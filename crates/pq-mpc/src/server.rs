//! A single simulated server.

use crate::message::Payload;
use pq_relation::Relation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a server in `[0, p)`.
pub type ServerId = usize;

/// A simulated server: the data it has received (its *knowledge*), grouped
/// by relation name, plus any raw payloads.
///
/// The MPC model places no bound on local storage other than the load
/// itself (a server must store what it receives), so servers simply
/// accumulate fragments across rounds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Server {
    id: ServerId,
    fragments: BTreeMap<String, Relation>,
    raw: BTreeMap<String, u64>,
}

impl Server {
    /// Create an empty server.
    pub fn new(id: ServerId) -> Self {
        Server {
            id,
            fragments: BTreeMap::new(),
            raw: BTreeMap::new(),
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Deliver a payload to this server (merging relation fragments of the
    /// same name).
    pub fn receive(&mut self, payload: Payload) {
        match payload {
            Payload::Tuples(rel) => match self.fragments.get_mut(rel.name()) {
                // Merging fragments is one flat-buffer copy.
                Some(existing) => existing.append(&rel),
                None => {
                    self.fragments.insert(rel.name().to_string(), rel);
                }
            },
            Payload::Raw { label, bits } => {
                *self.raw.entry(label).or_insert(0) += bits;
            }
        }
    }

    /// The fragment of relation `name` received so far (possibly absent).
    pub fn fragment(&self, name: &str) -> Option<&Relation> {
        self.fragments.get(name)
    }

    /// All received fragments, keyed by relation name.
    pub fn fragments(&self) -> &BTreeMap<String, Relation> {
        &self.fragments
    }

    /// Fragments as a flat list (convenient for joining).
    pub fn fragment_list(&self) -> Vec<Relation> {
        self.fragments.values().cloned().collect()
    }

    /// Number of bits recorded under a raw label.
    pub fn raw_bits(&self, label: &str) -> u64 {
        self.raw.get(label).copied().unwrap_or(0)
    }

    /// Total number of tuples stored across all fragments.
    pub fn stored_tuples(&self) -> usize {
        self.fragments.values().map(Relation::len).sum()
    }

    /// Total stored size in bits (fragments plus raw payloads).
    pub fn stored_bits(&self, bits_per_value: u64) -> u64 {
        let tuple_bits: u64 = self
            .fragments
            .values()
            .map(|r| r.size_bits(bits_per_value))
            .sum();
        tuple_bits + self.raw.values().sum::<u64>()
    }

    /// Forget everything (used between independent experiments that reuse a
    /// cluster).
    pub fn clear(&mut self) {
        self.fragments.clear();
        self.raw.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Relation, Schema};

    fn frag(name: &str, rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, &["x", "y"]), rows)
    }

    #[test]
    fn receiving_merges_fragments_by_name() {
        let mut s = Server::new(2);
        assert_eq!(s.id(), 2);
        s.receive(Payload::Tuples(frag("R", vec![vec![1, 2]])));
        s.receive(Payload::Tuples(frag("R", vec![vec![3, 4]])));
        s.receive(Payload::Tuples(frag("S", vec![vec![5, 6]])));
        assert_eq!(s.fragment("R").unwrap().len(), 2);
        assert_eq!(s.fragment("S").unwrap().len(), 1);
        assert!(s.fragment("T").is_none());
        assert_eq!(s.stored_tuples(), 3);
        assert_eq!(s.fragment_list().len(), 2);
    }

    #[test]
    fn raw_payloads_accumulate() {
        let mut s = Server::new(0);
        s.receive(Payload::Raw { label: "hh".into(), bits: 100 });
        s.receive(Payload::Raw { label: "hh".into(), bits: 50 });
        assert_eq!(s.raw_bits("hh"), 150);
        assert_eq!(s.raw_bits("other"), 0);
        assert_eq!(s.stored_bits(8), 150);
    }

    #[test]
    fn stored_bits_counts_fragments_and_raw() {
        let mut s = Server::new(0);
        s.receive(Payload::Tuples(frag("R", vec![vec![1, 2], vec![3, 4]])));
        s.receive(Payload::Raw { label: "x".into(), bits: 10 });
        assert_eq!(s.stored_bits(8), 2 * 2 * 8 + 10);
    }

    #[test]
    fn clear_resets_state() {
        let mut s = Server::new(1);
        s.receive(Payload::Tuples(frag("R", vec![vec![1, 2]])));
        s.clear();
        assert_eq!(s.stored_tuples(), 0);
        assert_eq!(s.stored_bits(8), 0);
    }
}
