//! Thread-parallel execution of the (cost-free) computation phases.
//!
//! The MPC cost model does not charge local computation, but the simulator
//! still has to *perform* it. For large experiments the per-server local
//! joins dominate wall-clock time, so this module fans the per-server work
//! out over the persistent executor pool in `pq-exec` — the engine's pool
//! when one is installed on the calling thread, the process-wide fallback
//! otherwise. No thread is ever spawned on the query hot path; workers are
//! long-lived and parked between queries. Results are collected in server
//! order, so callers see a deterministic outcome regardless of scheduling,
//! and a panicking server task re-raises its original panic payload on the
//! caller (it no longer surfaces as a poisoned result lock).

/// Apply `f` to every server-indexed item of `inputs` in parallel and return
/// the outputs in input order. A thin shim over
/// [`TaskPool::map_indexed`](pq_exec::TaskPool::map_indexed) on the current
/// (or global) pool, which runs inline when the pool has size 1.
pub fn map_servers_parallel<T, R, F>(inputs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    pq_exec::current_or_global().map_indexed(inputs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let outputs = map_servers_parallel(&inputs, |i, &x| x * 2 + i as u64);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(*out, inputs[i] * 2 + i as u64);
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let outputs: Vec<u32> = map_servers_parallel(&Vec::<u32>::new(), |_, &x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn single_item_runs_sequentially() {
        let outputs = map_servers_parallel(&[41u32], |_, &x| x + 1);
        assert_eq!(outputs, vec![42]);
    }

    #[test]
    fn heavier_work_is_correct() {
        let inputs: Vec<u64> = (0..64).collect();
        let outputs = map_servers_parallel(&inputs, |_, &x| (0..=x).sum::<u64>());
        for (i, out) in outputs.iter().enumerate() {
            let x = i as u64;
            assert_eq!(*out, x * (x + 1) / 2);
        }
    }

    #[test]
    fn runs_on_an_installed_pool() {
        let pool = pq_exec::TaskPool::new(2);
        let before = pool.stats().tasks;
        let inputs: Vec<u64> = (0..200).collect();
        let outputs = pool.install(|| map_servers_parallel(&inputs, |_, &x| x + 1));
        assert_eq!(outputs[199], 200);
        assert!(
            pool.stats().tasks > before,
            "the shim must route work through the installed pool"
        );
    }

    #[test]
    fn a_panicking_server_propagates_the_original_payload() {
        let inputs: Vec<u64> = (0..50).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_servers_parallel(&inputs, |_, &x| {
                if x == 13 {
                    panic!("server 13 exploded");
                }
                x
            })
        }))
        .expect_err("the panic must reach the caller");
        let message = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("exploded"),
            "original payload, not a poisoned-lock error: {message}"
        );
        // The shared pool is resume-safe: the next map still works.
        let outputs = map_servers_parallel(&inputs, |_, &x| x);
        assert_eq!(outputs.len(), inputs.len());
    }
}
