//! Thread-parallel execution of the (cost-free) computation phases.
//!
//! The MPC cost model does not charge local computation, but the simulator
//! still has to *perform* it. For large experiments the per-server local
//! joins dominate wall-clock time, so this module fans the per-server work
//! out over real threads with `std::thread::scope`. Results are collected
//! in server order, so callers see a deterministic outcome regardless of
//! scheduling.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Apply `f` to every server-indexed item of `inputs` in parallel and return
/// the outputs in input order. Falls back to a sequential loop for small
/// inputs or single-CPU machines.
pub fn map_servers_parallel<T, R, F>(inputs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if workers <= 1 || n <= 2 {
        return inputs.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &inputs[i]);
                results.lock().expect("result lock poisoned")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("result lock poisoned")
        .into_iter()
        .map(|r| r.expect("every index processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let outputs = map_servers_parallel(&inputs, |i, &x| x * 2 + i as u64);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(*out, inputs[i] * 2 + i as u64);
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let outputs: Vec<u32> = map_servers_parallel(&Vec::<u32>::new(), |_, &x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn single_item_runs_sequentially() {
        let outputs = map_servers_parallel(&[41u32], |_, &x| x + 1);
        assert_eq!(outputs, vec![42]);
    }

    #[test]
    fn heavier_work_is_correct() {
        let inputs: Vec<u64> = (0..64).collect();
        let outputs = map_servers_parallel(&inputs, |_, &x| (0..=x).sum::<u64>());
        for (i, out) in outputs.iter().enumerate() {
            let x = i as u64;
            assert_eq!(*out, x * (x + 1) / 2);
        }
    }
}
