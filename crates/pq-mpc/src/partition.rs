//! Input partitioning helpers.
//!
//! The MPC model assumes the input is initially spread uniformly over the
//! `p` servers (the *partitioned-input* model); for lower bounds the paper
//! uses the equivalent *input-server* model where each relation sits whole
//! on its own conceptual input server (Section 2.1). For upper bounds the
//! distinction is immaterial — the HyperCube routing decisions depend only
//! on each tuple — so algorithms here construct round-one messages straight
//! from the full relations. These helpers exist for the partitioned-input
//! mode and for experiments that want an explicit initial placement.

use crate::server::ServerId;
use pq_relation::{BucketHasher, HashFamily, Relation};

/// Split a relation into `p` fragments round-robin (uniform partitioning,
/// the model's initial data placement).
pub fn partition_round_robin(relation: &Relation, p: usize) -> Vec<Relation> {
    assert!(p > 0, "cannot partition over zero servers");
    let per_part = relation.len() / p + 1;
    let mut parts: Vec<Relation> = (0..p)
        .map(|_| Relation::with_capacity(relation.schema().clone(), per_part))
        .collect();
    for (i, row) in relation.iter().enumerate() {
        parts[i % p].push_row(row);
    }
    parts
}

/// Split a relation into `p` fragments by hashing one attribute — a standard
/// parallel hash partitioning (the baseline join algorithms use it).
///
/// # Panics
/// Panics when the attribute is not part of the relation's schema.
pub fn partition_by_hash<F: HashFamily>(
    relation: &Relation,
    attribute: &str,
    p: usize,
    family: &F,
    hash_index: usize,
) -> Vec<Relation> {
    assert!(p > 0, "cannot partition over zero servers");
    let pos = relation
        .schema()
        .position(attribute)
        .unwrap_or_else(|| panic!("attribute `{attribute}` not in `{}`", relation.name()));
    let hasher = family.hasher(hash_index, p);
    // Pre-size every fragment for the balanced case; row copies below are
    // plain `extend_from_slice`s of borrowed row views — no per-row tuple is
    // allocated or cloned.
    let per_part = relation.len() / p + 1;
    let mut parts: Vec<Relation> = (0..p)
        .map(|_| Relation::with_capacity(relation.schema().clone(), per_part))
        .collect();
    for row in relation.iter() {
        let dest: ServerId = hasher.bucket(row[pos]);
        parts[dest].push_row(row);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{MultiplyShiftHash, Relation, Schema};

    fn rel(m: usize) -> Relation {
        Relation::from_rows(
            Schema::from_strs("R", &["x", "y"]),
            (0..m as u64).map(|i| vec![i, i + 1000]).collect(),
        )
    }

    #[test]
    fn round_robin_is_balanced_and_complete() {
        let r = rel(103);
        let parts = partition_round_robin(&r, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, 103);
        for p in &parts {
            assert!(p.len() == 25 || p.len() == 26);
        }
    }

    #[test]
    fn hash_partition_is_complete_and_key_local() {
        let r = rel(200);
        let family = MultiplyShiftHash::new(7);
        let parts = partition_by_hash(&r, "x", 8, &family, 0);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, 200);
        // Every tuple with the same key lands on the same server: check by
        // re-hashing.
        let hasher = family.hasher(0, 8);
        use pq_relation::BucketHasher;
        for (s, part) in parts.iter().enumerate() {
            for t in part.iter() {
                assert_eq!(hasher.bucket(t[0]), s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn hash_partition_unknown_attribute_panics() {
        let r = rel(5);
        partition_by_hash(&r, "zzz", 2, &MultiplyShiftHash::new(1), 0);
    }

    #[test]
    #[should_panic(expected = "zero servers")]
    fn round_robin_zero_servers_panics() {
        partition_round_robin(&rel(5), 0);
    }

    #[test]
    fn partitioning_empty_relation_gives_empty_parts() {
        let r = Relation::empty(Schema::from_strs("R", &["x", "y"]));
        let parts = partition_round_robin(&r, 3);
        assert!(parts.iter().all(Relation::is_empty));
    }
}
