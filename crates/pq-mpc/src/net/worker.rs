//! The worker side of the cluster protocol.
//!
//! A worker is a passive party: it accepts one coordinator connection at a
//! time, accumulates relation fragments exactly like the simulator's
//! [`crate::Server`] (merged by relation name — one flat-buffer append per
//! fragment), and on every `Execute` frame joins the fragments of the
//! listed atoms, projects to the output variables and replies with an
//! `Answer` frame carrying its head fragment and the bytes it measured on
//! the wire for the round. Local computation is free in the MPC model, so
//! the join itself is the plain sequential
//! [`pq_relation::natural_join_all`].
//!
//! A `Shutdown` frame ends the whole serve loop (not just the current
//! connection) — the fix for the daemon's listener otherwise looping
//! forever with no teardown path. [`LocalWorkers`] runs the same loop on
//! in-process threads bound to ephemeral localhost ports, which is how the
//! test suites and benchmarks stand up a real-socket cluster without
//! managing child processes.

use crate::net::codec::{read_frame, write_frame, Frame};
use pq_obs::{Counter, LogLevel, Logger, MetricsRegistry};
use pq_relation::{natural_join_all, project, Relation, Schema};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

/// A worker loop's observability bundle: frame/byte/round counters
/// resolved once from a [`MetricsRegistry`], plus the structured logger
/// that replaces the loop's ad-hoc stderr prints. Build one per worker
/// process with [`WorkerObs::new`] and serve through
/// [`serve_worker_observed`].
#[derive(Debug, Clone)]
pub struct WorkerObs {
    frames: Counter,
    wire_bytes: Counter,
    rounds: Counter,
    logger: Logger,
}

impl WorkerObs {
    /// Resolve the worker-side counters in `registry` and log through
    /// `logger`. Counter names: `pq_worker_frames_total`,
    /// `pq_worker_wire_bytes_total`, `pq_worker_rounds_total` — distinct
    /// from the coordinator's `pq_cluster_*` names, so a process hosting
    /// both sides never double-counts a byte.
    pub fn new(registry: &MetricsRegistry, logger: Logger) -> Self {
        WorkerObs {
            frames: registry.counter(
                "pq_worker_frames_total",
                &[],
                "Protocol frames this worker received",
            ),
            wire_bytes: registry.counter(
                "pq_worker_wire_bytes_total",
                &[],
                "Bytes this worker read off its socket, frame headers included",
            ),
            rounds: registry.counter(
                "pq_worker_rounds_total",
                &[],
                "Execute frames (communication rounds) this worker answered",
            ),
            logger,
        }
    }

    /// The fallback bundle used by the plain [`serve_worker`] entry point:
    /// counters into a throwaway registry, warnings and errors to stderr.
    fn fallback() -> Self {
        WorkerObs::new(
            &MetricsRegistry::new(),
            Logger::new("pq-mpc-worker", LogLevel::Warn),
        )
    }
}

/// Serve one coordinator connection. Returns `true` when a `Shutdown`
/// frame asked the whole worker to exit (vs. the peer merely hanging up).
fn serve_connection(stream: TcpStream, obs: &WorkerObs) -> bool {
    let peer = stream.local_addr().map(|a| a.to_string()).unwrap_or_default();
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    // Fragments merged by relation name, like the simulator's Server; the
    // MPC model lets knowledge accumulate across rounds.
    let mut fragments: BTreeMap<String, Relation> = BTreeMap::new();
    // Measured bytes read since the last Answer (frame headers included).
    let mut wire_bytes = 0u64;
    loop {
        let (frame, frame_bytes) = match read_frame(&mut reader) {
            Ok(Some(read)) => read,
            // Orderly close between frames: this coordinator is done.
            Ok(None) => return false,
            Err(e) => {
                obs.logger
                    .warn("dropping connection after framing error")
                    .kv("peer", &peer)
                    .kv("error", &e)
                    .emit();
                // Best-effort located error back to the peer, then drop the
                // connection — after a framing error the stream cannot be
                // resynchronised.
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: format!("worker {peer}: {e}"),
                    },
                );
                let _ = writer.flush();
                return false;
            }
        };
        obs.frames.inc();
        obs.wire_bytes.add(frame_bytes);
        match frame {
            Frame::Hello { .. } => {
                // A new run on a reused connection: forget previous state.
                fragments.clear();
                wire_bytes = 0;
            }
            Frame::Fragment { relation, .. } => {
                wire_bytes += frame_bytes;
                match fragments.get_mut(relation.name()) {
                    Some(existing) => existing.append(&relation),
                    None => {
                        fragments.insert(relation.name().to_string(), relation);
                    }
                }
            }
            Frame::Execute {
                round,
                name,
                output_vars,
                atoms,
            } => {
                wire_bytes += frame_bytes;
                obs.rounds.inc();
                let answer = local_answer(&fragments, &name, &output_vars, &atoms);
                let ok = write_frame(
                    &mut writer,
                    &Frame::Answer {
                        round,
                        bytes_received: wire_bytes,
                        relation: answer,
                    },
                )
                .is_ok()
                    && writer.flush().is_ok();
                wire_bytes = 0;
                if !ok {
                    return false;
                }
            }
            Frame::Shutdown => return true,
            Frame::Error { message } => {
                obs.logger
                    .warn("coordinator reported an error")
                    .kv("peer", &peer)
                    .kv("error", &message)
                    .emit();
                return false;
            }
            Frame::Answer { .. } => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: "protocol violation: workers receive no Answer frames".into(),
                    },
                );
                let _ = writer.flush();
                return false;
            }
        }
    }
}

/// The worker's local computation: join the fragments of the listed atoms
/// (a missing fragment is the correctly-shaped empty relation — no rows
/// were routed here, so this grid point contributes no answers) and
/// project to the output variables with set semantics.
fn local_answer(
    fragments: &BTreeMap<String, Relation>,
    name: &str,
    output_vars: &[String],
    atoms: &[(String, Vec<String>)],
) -> Relation {
    let bound: Vec<Relation> = atoms
        .iter()
        .map(|(relation, variables)| match fragments.get(relation) {
            Some(fragment) => fragment.clone(),
            None => Relation::empty(Schema::new(relation.clone(), variables.clone())),
        })
        .collect();
    let joined = natural_join_all(&bound);
    project(&joined, output_vars, name)
}

/// Run the worker loop on `listener`: serve coordinator connections one at
/// a time until a `Shutdown` frame arrives, then return. I/O errors on a
/// single connection never kill the loop; accept errors do (the listener
/// itself is broken).
///
/// Counters go to a throwaway registry and warnings to stderr; a daemon
/// that wants the numbers uses [`serve_worker_observed`].
pub fn serve_worker(listener: &TcpListener) -> std::io::Result<()> {
    serve_worker_observed(listener, &WorkerObs::fallback())
}

/// [`serve_worker`] with the worker's frames/bytes/rounds counted into the
/// registry behind `obs` and connection events logged structurally: what
/// `pqd --worker` runs.
pub fn serve_worker_observed(listener: &TcpListener, obs: &WorkerObs) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        obs.logger
            .debug("coordinator connected")
            .kv("peer", &peer)
            .emit();
        let shutdown = serve_connection(stream, obs);
        obs.logger
            .debug("coordinator connection closed")
            .kv("peer", &peer)
            .kv("shutdown", shutdown)
            .emit();
        if shutdown {
            return Ok(());
        }
    }
    Ok(())
}

/// A cluster of worker loops on in-process threads, each listening on an
/// ephemeral localhost port — real sockets, real frames, no child-process
/// management. Dropping the handle shuts the workers down (each is sent a
/// `Shutdown` frame and joined), so tests cannot leak threads; call
/// [`LocalWorkers::shutdown`] to do it explicitly.
#[derive(Debug)]
pub struct LocalWorkers {
    addresses: Vec<String>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LocalWorkers {
    /// Spawn `n` workers. Their addresses are in slot order, ready to be
    /// handed to a [`crate::net::ClusterConfig`].
    ///
    /// # Errors
    /// Fails when an ephemeral localhost port cannot be bound.
    pub fn spawn(n: usize) -> std::io::Result<LocalWorkers> {
        let mut addresses = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addresses.push(listener.local_addr()?.to_string());
            handles.push(std::thread::spawn(move || {
                let _ = serve_worker(&listener);
            }));
        }
        Ok(LocalWorkers { addresses, handles })
    }

    /// The workers' `host:port` addresses, in slot order.
    pub fn addresses(&self) -> &[String] {
        &self.addresses
    }

    /// Shut every worker down (a `Shutdown` frame each) and join the
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for address in &self.addresses {
            if let Ok(stream) = TcpStream::connect(address) {
                let mut writer = BufWriter::new(stream);
                let _ = write_frame(&mut writer, &Frame::Shutdown);
                let _ = writer.flush();
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LocalWorkers {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::codec::read_frame;
    use pq_relation::Schema;
    use std::io::BufReader;

    fn frag(name: &str, attrs: &[&str], rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, attrs), rows)
    }

    /// Drive one worker over a real socket by hand: shuffle two fragments,
    /// execute, check the answer, and shut down.
    #[test]
    fn worker_joins_its_fragments_and_shuts_down() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            &Frame::Hello {
                worker: 0,
                workers: 1,
                bits_per_value: 8,
            },
        )
        .unwrap();
        let mut sent = 0u64;
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]),
            },
        )
        .unwrap();
        // A second fragment of the same relation must merge, not replace.
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![5, 6]]),
            },
        )
        .unwrap();
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("S", &["y", "z"], vec![vec![2, 20], vec![6, 60]]),
            },
        )
        .unwrap();
        sent += write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec!["x".into(), "y".into(), "z".into()],
                atoms: vec![
                    ("R".into(), vec!["x".into(), "y".into()]),
                    ("S".into(), vec!["y".into(), "z".into()]),
                ],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an answer");
        let Frame::Answer {
            round,
            bytes_received,
            relation,
        } = frame
        else {
            panic!("expected an Answer, got {frame:?}");
        };
        assert_eq!(round, 1);
        assert_eq!(
            bytes_received, sent,
            "the worker measures exactly the fragment + execute bytes (Hello excluded)"
        );
        assert_eq!(relation.schema().attributes(), &["x", "y", "z"]);
        let mut rows: Vec<Vec<u64>> = relation.iter().map(|r| r.to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 20], vec![5, 6, 60]]);
        drop(writer);
        drop(reader);
        workers.shutdown(); // must not hang: Shutdown ends the serve loop
    }

    #[test]
    fn missing_fragments_yield_an_empty_correctly_shaped_answer() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // R arrives, S never does: this grid point must answer empty.
        write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![1, 2]]),
            },
        )
        .unwrap();
        write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec!["x".into(), "y".into(), "z".into()],
                atoms: vec![
                    ("R".into(), vec!["x".into(), "y".into()]),
                    ("S".into(), vec!["y".into(), "z".into()]),
                ],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an answer");
        let Frame::Answer { relation, .. } = frame else {
            panic!("expected an Answer");
        };
        assert!(relation.is_empty());
        assert_eq!(relation.arity(), 3);
    }

    #[test]
    fn a_framing_error_gets_a_located_error_frame_back() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(b"GARBAGE!").unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an error frame");
        let Frame::Error { message } = frame else {
            panic!("expected an Error frame, got {frame:?}");
        };
        assert!(message.contains("magic"), "{message}");
        // The worker dropped that connection but still serves new ones.
        let probe = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut probe_writer = BufWriter::new(probe.try_clone().unwrap());
        write_frame(
            &mut probe_writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec![],
                atoms: vec![],
            },
        )
        .unwrap();
        probe_writer.flush().unwrap();
        let mut probe_reader = BufReader::new(probe);
        assert!(matches!(
            read_frame(&mut probe_reader).unwrap(),
            Some((Frame::Answer { .. }, _))
        ));
    }
}
