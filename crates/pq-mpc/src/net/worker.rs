//! The worker side of the cluster protocol.
//!
//! A worker is a passive party: it serves each coordinator connection on
//! its own thread (so a connection pool holding a socket open between runs
//! never blocks a second coordinator, a liveness probe, or the shutdown
//! path), accumulates relation fragments exactly like the simulator's
//! [`crate::Server`] (merged by relation name — one flat-buffer append per
//! fragment, state strictly per connection), and on every `Execute` frame
//! joins the fragments of the listed atoms, projects to the output
//! variables and replies with an `Answer` frame carrying its head fragment
//! and the bytes it measured on the wire for the round. Local computation
//! is free in the MPC model, but the wall clock still pays for it: the
//! coordinator folds many logical servers onto each worker (`server %
//! workers`) and merges their fragments, so the one join a worker runs per
//! round is large — each connection therefore runs its local join under
//! the worker's persistent [`pq_exec::TaskPool`]
//! ([`serve_worker_pooled`]; the other entry points use the process-wide
//! pool), which lets the morsel-parallel kernels in [`pq_relation`] spread
//! that single join across cores without spawning a thread per round. A
//! `Ping` frame is answered with an immediate `Pong` without touching
//! fragment state — the cheap liveness check of the coordinator-side
//! [`crate::net::WorkerPool`].
//!
//! A `Shutdown` frame ends the whole serve loop (not just the current
//! connection) — the fix for the daemon's listener otherwise looping
//! forever with no teardown path. Connections are bounded by
//! [`WorkerLimits`]: a peer that ships more accumulated fragment bytes
//! than the cap gets a typed `Error` frame and a structured log line
//! instead of unbounded merge growth. [`LocalWorkers`] runs the same loop
//! on in-process threads bound to ephemeral localhost ports, which is how
//! the test suites and benchmarks stand up a real-socket cluster without
//! managing child processes.

use crate::net::codec::{read_frame, write_frame, Frame};
use pq_obs::{Counter, LogLevel, Logger, MetricsRegistry};
use pq_relation::{natural_join_all, project, Relation, Schema};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A worker loop's observability bundle: frame/byte/round counters
/// resolved once from a [`MetricsRegistry`], plus the structured logger
/// that replaces the loop's ad-hoc stderr prints. Build one per worker
/// process with [`WorkerObs::new`] and serve through
/// [`serve_worker_observed`].
#[derive(Debug, Clone)]
pub struct WorkerObs {
    frames: Counter,
    wire_bytes: Counter,
    rounds: Counter,
    logger: Logger,
}

impl WorkerObs {
    /// Resolve the worker-side counters in `registry` and log through
    /// `logger`. Counter names: `pq_worker_frames_total`,
    /// `pq_worker_wire_bytes_total`, `pq_worker_rounds_total` — distinct
    /// from the coordinator's `pq_cluster_*` names, so a process hosting
    /// both sides never double-counts a byte.
    pub fn new(registry: &MetricsRegistry, logger: Logger) -> Self {
        WorkerObs {
            frames: registry.counter(
                "pq_worker_frames_total",
                &[],
                "Protocol frames this worker received",
            ),
            wire_bytes: registry.counter(
                "pq_worker_wire_bytes_total",
                &[],
                "Bytes this worker read off its socket, frame headers included",
            ),
            rounds: registry.counter(
                "pq_worker_rounds_total",
                &[],
                "Execute frames (communication rounds) this worker answered",
            ),
            logger,
        }
    }

    /// The fallback bundle used by the plain [`serve_worker`] entry point:
    /// counters into a throwaway registry, warnings and errors to stderr.
    fn fallback() -> Self {
        WorkerObs::new(
            &MetricsRegistry::new(),
            Logger::new("pq-mpc-worker", LogLevel::Warn),
        )
    }
}

/// Per-connection resource bounds for the worker loop.
///
/// A coordinator that keeps shipping fragments without ever executing a
/// round would otherwise grow the worker's merge store without limit; the
/// cap turns that into a typed `Error` frame and a dropped connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLimits {
    /// Maximum accumulated fragment bytes (stored row-buffer bytes, summed
    /// across all relations) one connection may hold. Exceeding it rejects
    /// the offending fragment with an `Error` frame and closes the
    /// connection. The default matches the 1 GiB frame cap
    /// [`crate::net::MAX_FRAME_LEN`].
    pub max_fragment_bytes: u64,
}

impl Default for WorkerLimits {
    fn default() -> Self {
        WorkerLimits {
            max_fragment_bytes: crate::net::codec::MAX_FRAME_LEN as u64,
        }
    }
}

/// Serve one coordinator connection. Returns `true` when a `Shutdown`
/// frame asked the whole worker to exit (vs. the peer merely hanging up).
fn serve_connection(
    stream: TcpStream,
    obs: &WorkerObs,
    limits: WorkerLimits,
    pool: &Arc<pq_exec::TaskPool>,
) -> bool {
    let peer = stream.local_addr().map(|a| a.to_string()).unwrap_or_default();
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    // Fragments merged by relation name, like the simulator's Server; the
    // MPC model lets knowledge accumulate across rounds.
    let mut fragments: BTreeMap<String, Relation> = BTreeMap::new();
    // Measured bytes read since the last Answer (frame headers included).
    let mut wire_bytes = 0u64;
    // Stored fragment bytes accumulated on this connection, checked
    // against `limits.max_fragment_bytes`.
    let mut fragment_bytes = 0u64;
    loop {
        let (frame, frame_bytes) = match read_frame(&mut reader) {
            Ok(Some(read)) => read,
            // Orderly close between frames: this coordinator is done.
            Ok(None) => return false,
            Err(e) => {
                obs.logger
                    .warn("dropping connection after framing error")
                    .kv("peer", &peer)
                    .kv("error", &e)
                    .emit();
                // Best-effort located error back to the peer, then drop the
                // connection — after a framing error the stream cannot be
                // resynchronised.
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: format!("worker {peer}: {e}"),
                    },
                );
                let _ = writer.flush();
                return false;
            }
        };
        obs.frames.inc();
        obs.wire_bytes.add(frame_bytes);
        match frame {
            Frame::Hello { .. } => {
                // A new run on a reused connection: forget previous state.
                fragments.clear();
                wire_bytes = 0;
                fragment_bytes = 0;
            }
            Frame::Fragment { relation, .. } => {
                wire_bytes += frame_bytes;
                let incoming = (relation.len() * relation.arity()) as u64 * 8;
                if fragment_bytes.saturating_add(incoming) > limits.max_fragment_bytes {
                    obs.logger
                        .warn("rejecting fragment over the per-connection byte cap")
                        .kv("peer", &peer)
                        .kv("relation", relation.name())
                        .kv("held_bytes", fragment_bytes)
                        .kv("incoming_bytes", incoming)
                        .kv("max_fragment_bytes", limits.max_fragment_bytes)
                        .emit();
                    let _ = write_frame(
                        &mut writer,
                        &Frame::Error {
                            message: format!(
                                "worker {peer}: fragment store over the {}-byte cap \
                                 ({fragment_bytes} held + {incoming} incoming)",
                                limits.max_fragment_bytes
                            ),
                        },
                    );
                    let _ = writer.flush();
                    return false;
                }
                fragment_bytes += incoming;
                match fragments.get_mut(relation.name()) {
                    Some(existing) => existing.append(&relation),
                    None => {
                        fragments.insert(relation.name().to_string(), relation);
                    }
                }
            }
            Frame::Ping { nonce } => {
                // Liveness probe: answer immediately, touch nothing else —
                // pings are pool traffic, not round traffic, so they stay
                // out of the round's `wire_bytes` account.
                let ok = write_frame(&mut writer, &Frame::Pong { nonce }).is_ok()
                    && writer.flush().is_ok();
                if !ok {
                    return false;
                }
            }
            Frame::Execute {
                round,
                name,
                output_vars,
                atoms,
            } => {
                wire_bytes += frame_bytes;
                obs.rounds.inc();
                // The folded logical servers were merged into these
                // fragments by the coordinator, so this one join carries
                // the whole round's local work — run it on the pool so the
                // morsel kernels parallelise it.
                let answer =
                    pool.install(|| local_answer(&fragments, &name, &output_vars, &atoms));
                let ok = write_frame(
                    &mut writer,
                    &Frame::Answer {
                        round,
                        bytes_received: wire_bytes,
                        relation: answer,
                    },
                )
                .is_ok()
                    && writer.flush().is_ok();
                wire_bytes = 0;
                if !ok {
                    return false;
                }
            }
            Frame::Shutdown => return true,
            Frame::Error { message } => {
                obs.logger
                    .warn("coordinator reported an error")
                    .kv("peer", &peer)
                    .kv("error", &message)
                    .emit();
                return false;
            }
            Frame::Answer { .. } | Frame::Pong { .. } => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: "protocol violation: workers receive no Answer or Pong frames"
                            .into(),
                    },
                );
                let _ = writer.flush();
                return false;
            }
        }
    }
}

/// The worker's local computation: join the fragments of the listed atoms
/// (a missing fragment is the correctly-shaped empty relation — no rows
/// were routed here, so this grid point contributes no answers) and
/// project to the output variables with set semantics.
fn local_answer(
    fragments: &BTreeMap<String, Relation>,
    name: &str,
    output_vars: &[String],
    atoms: &[(String, Vec<String>)],
) -> Relation {
    let bound: Vec<Relation> = atoms
        .iter()
        .map(|(relation, variables)| match fragments.get(relation) {
            Some(fragment) => fragment.clone(),
            None => Relation::empty(Schema::new(relation.clone(), variables.clone())),
        })
        .collect();
    let joined = natural_join_all(&bound);
    project(&joined, output_vars, name)
}

/// Run the worker loop on `listener`: accept coordinator connections and
/// serve each on its own thread until a `Shutdown` frame arrives on any of
/// them, then return. Concurrent service is what lets a coordinator-side
/// [`crate::net::WorkerPool`] keep an idle Hello'd connection open between
/// runs without starving other coordinators (or the shutdown path) of the
/// accept loop. I/O errors on a single connection never kill the loop;
/// accept errors do (the listener itself is broken).
///
/// Counters go to a throwaway registry and warnings to stderr; a daemon
/// that wants the numbers uses [`serve_worker_observed`].
pub fn serve_worker(listener: &TcpListener) -> std::io::Result<()> {
    serve_worker_with(listener, &WorkerObs::fallback(), WorkerLimits::default())
}

/// [`serve_worker`] with the worker's frames/bytes/rounds counted into the
/// registry behind `obs` and connection events logged structurally: what
/// `pqd --worker` runs.
pub fn serve_worker_observed(listener: &TcpListener, obs: &WorkerObs) -> std::io::Result<()> {
    serve_worker_with(listener, obs, WorkerLimits::default())
}

/// [`serve_worker_observed`] with explicit per-connection resource bounds.
pub fn serve_worker_with(
    listener: &TcpListener,
    obs: &WorkerObs,
    limits: WorkerLimits,
) -> std::io::Result<()> {
    serve_worker_pooled(listener, obs, limits, &pq_exec::global())
}

/// [`serve_worker_with`] running every round's local join on `pool`: the
/// entry point for a daemon that sizes (`--threads`) and meters its own
/// executor pool. Each connection still gets its own service thread —
/// that thread parks on socket reads; the pool parallelises the join
/// *inside* a round.
pub fn serve_worker_pooled(
    listener: &TcpListener,
    obs: &WorkerObs,
    limits: WorkerLimits,
    pool: &Arc<pq_exec::TaskPool>,
) -> std::io::Result<()> {
    // Set by the connection thread that receives a Shutdown frame; the
    // accept loop checks it after every accept. The shutting-down thread
    // also dials the listener itself so a blocked accept wakes up.
    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let stream = stream?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        obs.logger
            .debug("coordinator connected")
            .kv("peer", &peer)
            .emit();
        let obs = obs.clone();
        let stop = Arc::clone(&stop);
        let wake = listener.local_addr();
        let pool = Arc::clone(pool);
        std::thread::spawn(move || {
            let shutdown = serve_connection(stream, &obs, limits, &pool);
            obs.logger
                .debug("coordinator connection closed")
                .kv("peer", &peer)
                .kv("shutdown", shutdown)
                .emit();
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it notices the flag; the dialled
                // connection is dropped immediately and serves no frames.
                if let Ok(addr) = wake {
                    let _ = TcpStream::connect(addr);
                }
            }
        });
    }
    Ok(())
}

/// A cluster of worker loops on in-process threads, each listening on an
/// ephemeral localhost port — real sockets, real frames, no child-process
/// management. Dropping the handle shuts the workers down (each is sent a
/// `Shutdown` frame and joined), so tests cannot leak threads; call
/// [`LocalWorkers::shutdown`] to do it explicitly.
#[derive(Debug)]
pub struct LocalWorkers {
    addresses: Vec<String>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LocalWorkers {
    /// Spawn `n` workers. Their addresses are in slot order, ready to be
    /// handed to a [`crate::net::ClusterConfig`].
    ///
    /// # Errors
    /// Fails when an ephemeral localhost port cannot be bound.
    pub fn spawn(n: usize) -> std::io::Result<LocalWorkers> {
        LocalWorkers::spawn_with(n, WorkerLimits::default())
    }

    /// [`LocalWorkers::spawn`] with explicit per-connection resource
    /// bounds applied to every worker.
    ///
    /// # Errors
    /// Fails when an ephemeral localhost port cannot be bound.
    pub fn spawn_with(n: usize, limits: WorkerLimits) -> std::io::Result<LocalWorkers> {
        let mut addresses = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addresses.push(listener.local_addr()?.to_string());
            handles.push(std::thread::spawn(move || {
                let _ = serve_worker_with(&listener, &WorkerObs::fallback(), limits);
            }));
        }
        Ok(LocalWorkers { addresses, handles })
    }

    /// The workers' `host:port` addresses, in slot order.
    pub fn addresses(&self) -> &[String] {
        &self.addresses
    }

    /// Shut every worker down (a `Shutdown` frame each) and join the
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for address in &self.addresses {
            if let Ok(stream) = TcpStream::connect(address) {
                let mut writer = BufWriter::new(stream);
                let _ = write_frame(&mut writer, &Frame::Shutdown);
                let _ = writer.flush();
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LocalWorkers {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::codec::read_frame;
    use pq_relation::Schema;
    use std::io::BufReader;

    fn frag(name: &str, attrs: &[&str], rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, attrs), rows)
    }

    /// Drive one worker over a real socket by hand: shuffle two fragments,
    /// execute, check the answer, and shut down.
    #[test]
    fn worker_joins_its_fragments_and_shuts_down() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            &Frame::Hello {
                worker: 0,
                workers: 1,
                bits_per_value: 8,
            },
        )
        .unwrap();
        let mut sent = 0u64;
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]),
            },
        )
        .unwrap();
        // A second fragment of the same relation must merge, not replace.
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![5, 6]]),
            },
        )
        .unwrap();
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("S", &["y", "z"], vec![vec![2, 20], vec![6, 60]]),
            },
        )
        .unwrap();
        sent += write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec!["x".into(), "y".into(), "z".into()],
                atoms: vec![
                    ("R".into(), vec!["x".into(), "y".into()]),
                    ("S".into(), vec!["y".into(), "z".into()]),
                ],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an answer");
        let Frame::Answer {
            round,
            bytes_received,
            relation,
        } = frame
        else {
            panic!("expected an Answer, got {frame:?}");
        };
        assert_eq!(round, 1);
        assert_eq!(
            bytes_received, sent,
            "the worker measures exactly the fragment + execute bytes (Hello excluded)"
        );
        assert_eq!(relation.schema().attributes(), &["x", "y", "z"]);
        let mut rows: Vec<Vec<u64>> = relation.iter().map(|r| r.to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 20], vec![5, 6, 60]]);
        drop(writer);
        drop(reader);
        workers.shutdown(); // must not hang: Shutdown ends the serve loop
    }

    #[test]
    fn missing_fragments_yield_an_empty_correctly_shaped_answer() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // R arrives, S never does: this grid point must answer empty.
        write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![1, 2]]),
            },
        )
        .unwrap();
        write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec!["x".into(), "y".into(), "z".into()],
                atoms: vec![
                    ("R".into(), vec!["x".into(), "y".into()]),
                    ("S".into(), vec!["y".into(), "z".into()]),
                ],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an answer");
        let Frame::Answer { relation, .. } = frame else {
            panic!("expected an Answer");
        };
        assert!(relation.is_empty());
        assert_eq!(relation.arity(), 3);
    }

    #[test]
    fn a_framing_error_gets_a_located_error_frame_back() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(b"GARBAGE!").unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an error frame");
        let Frame::Error { message } = frame else {
            panic!("expected an Error frame, got {frame:?}");
        };
        assert!(message.contains("magic"), "{message}");
        // The worker dropped that connection but still serves new ones.
        let probe = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut probe_writer = BufWriter::new(probe.try_clone().unwrap());
        write_frame(
            &mut probe_writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec![],
                atoms: vec![],
            },
        )
        .unwrap();
        probe_writer.flush().unwrap();
        let mut probe_reader = BufReader::new(probe);
        assert!(matches!(
            read_frame(&mut probe_reader).unwrap(),
            Some((Frame::Answer { .. }, _))
        ));
    }

    /// A Ping is answered with a matching Pong and leaves the connection's
    /// fragment state and round byte account untouched.
    #[test]
    fn ping_is_answered_without_disturbing_round_state() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut sent = 0u64;
        sent += write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x"], vec![vec![7]]),
            },
        )
        .unwrap();
        write_frame(&mut writer, &Frame::Ping { nonce: 0xFEED }).unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("a pong");
        assert!(matches!(frame, Frame::Pong { nonce: 0xFEED }), "{frame:?}");
        // The round's byte account excludes the ping: the Answer reports
        // exactly fragment + execute bytes.
        sent += write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec!["x".into()],
                atoms: vec![("R".into(), vec!["x".into()])],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an answer");
        let Frame::Answer {
            bytes_received,
            relation,
            ..
        } = frame
        else {
            panic!("expected an Answer, got {frame:?}");
        };
        assert_eq!(bytes_received, sent, "pings stay out of round accounting");
        assert_eq!(relation.len(), 1, "the pre-ping fragment survived");
    }

    /// Fragments past the per-connection byte cap get a typed Error frame
    /// and a dropped connection, while the worker keeps serving new ones;
    /// a fresh Hello resets the budget.
    #[test]
    fn over_budget_fragments_are_rejected_with_a_typed_error() {
        // Budget of exactly two 2-column rows (2 rows × 2 cols × 8 bytes).
        let limits = WorkerLimits {
            max_fragment_bytes: 32,
        };
        let workers = LocalWorkers::spawn_with(1, limits).unwrap();
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]),
            },
        )
        .unwrap();
        // One more row blows the 32-byte budget.
        write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![5, 6]]),
            },
        )
        .unwrap();
        writer.flush().unwrap();
        let (frame, _) = read_frame(&mut reader).unwrap().expect("an error frame");
        let Frame::Error { message } = frame else {
            panic!("expected an Error frame, got {frame:?}");
        };
        assert!(message.contains("byte cap"), "{message}");
        // The worker survives: a new connection starts with a fresh budget.
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            &Frame::Fragment {
                round: 1,
                relation: frag("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]),
            },
        )
        .unwrap();
        write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec!["x".into(), "y".into()],
                atoms: vec![("R".into(), vec!["x".into(), "y".into()])],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Some((Frame::Answer { .. }, _))
        ));
    }

    /// Two coordinators are served concurrently: one holds its connection
    /// open (as a pool does between runs) while the other completes a full
    /// round — impossible under one-connection-at-a-time service.
    #[test]
    fn an_idle_held_connection_does_not_block_other_coordinators() {
        let workers = LocalWorkers::spawn(1).unwrap();
        // Coordinator A connects and goes idle, holding the socket open.
        let idle = TcpStream::connect(&workers.addresses()[0]).unwrap();
        // Coordinator B runs a complete round meanwhile.
        let stream = TcpStream::connect(&workers.addresses()[0]).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            &Frame::Execute {
                round: 1,
                name: "Q".into(),
                output_vars: vec![],
                atoms: vec![],
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Some((Frame::Answer { .. }, _))
        ));
        // A's connection still works after B's round.
        let mut idle_reader = BufReader::new(idle.try_clone().unwrap());
        let mut idle_writer = BufWriter::new(idle);
        write_frame(&mut idle_writer, &Frame::Ping { nonce: 1 }).unwrap();
        idle_writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut idle_reader).unwrap(),
            Some((Frame::Pong { nonce: 1 }, _))
        ));
        drop(idle_writer);
        drop(idle_reader);
        workers.shutdown();
    }
}
