//! The resilience layer of the cluster backend: a persistent,
//! health-checked connection pool with retry, deadlines, and a circuit
//! breaker.
//!
//! A [`WorkerPool`] owns one connection slot per configured worker and
//! keeps dialled, Hello'd sockets alive *across* runs — deleting the
//! dial + Hello tax every [`Coordinator::connect`] pays per query. Each
//! run:
//!
//! 1. asks the [`crate::net::retry::Breaker`] for admission (an open
//!    breaker fails fast with [`ClusterError::BreakerOpen`], which is how
//!    the engine above knows to degrade to the simulator);
//! 2. starts the per-query deadline clock — a budget covering dials,
//!    health pings, rounds *and* backoff pauses, so a run can never hang
//!    past it;
//! 3. acquires connections: pooled sockets idle past
//!    `health_check_after` are pinged (`Ping`/`Pong`) first, dead ones
//!    silently redialled;
//! 4. runs the round through a [`Coordinator`] built over the borrowed
//!    connections;
//! 5. on success, returns the connections to their slots for the next
//!    run; on failure, drops *all* of them (a failed round leaves workers
//!    in an unknown state) and retries on a freshly rebuilt topology
//!    after a capped, jittered backoff.
//!
//! # Why retrying a round is safe
//!
//! Rounds are idempotent by construction. The messages a run ships are
//! recomputed per attempt by a pure closure over the engine's *immutable*
//! snapshot — nothing is consumed by a failed attempt. Every attempt
//! opens with a `Hello` on every connection, which resets the worker's
//! per-connection fragment state, and a worker folds fragments only from
//! its own connection — so a half-shipped failed attempt leaves no
//! residue a retry could observe. Same seed, same snapshot, same routing:
//! a retried round computes byte-for-byte the answer the first attempt
//! would have.
//!
//! # Routing around dead workers
//!
//! The first attempt of a run requires the full configured topology —
//! the common case, and the one whose cost accounting
//! (`wire_bytes.len() == workers`) downstream assertions rely on. Retry
//! attempts may *shrink* the topology to the workers that still answer,
//! as long as at least [`ClusterConfig::effective_min_workers`] of them
//! do (default: a majority). That is sound because the coordinator folds
//! `p` logical servers onto whatever worker count it Hello'd (`server %
//! workers` — see [`crate::net`]): a 2-worker retry of a 3-worker run
//! computes the same answer, just with more logical servers per process.
//! A reduced-topology success is therefore *not* a degraded answer — it
//! is exact — and is reported with `degraded = false`.

use crate::message::Message;
use crate::metrics::RunMetrics;
use crate::net::coordinator::{
    ClusterConfig, ClusterError, Connection, Coordinator, RoundProgram,
};
use crate::net::retry::{Breaker, Clock, SystemClock};
use pq_obs::MetricsRegistry;
use pq_relation::Relation;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A pooled idle connection and when it was last used (for the
/// health-check age test).
#[derive(Debug)]
struct IdleConn {
    connection: Connection,
    last_used: Instant,
}

/// Cumulative counters a pool keeps about itself, mirrored into the
/// metrics registry per run. Snapshot with [`WorkerPool::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Runs the pool executed successfully.
    pub runs_ok: u64,
    /// Runs that failed past the whole retry budget (or fast, breaker
    /// open).
    pub runs_failed: u64,
    /// Retry attempts performed (attempts beyond the first, per run).
    pub retries: u64,
    /// Sockets (re)dialled — first dials and replacements alike.
    pub reconnects: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    runs_ok: AtomicU64,
    runs_failed: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
}

#[derive(Debug)]
struct PoolInner {
    config: ClusterConfig,
    clock: Arc<dyn Clock>,
    /// Serialises runs: workers serve one round at a time per connection
    /// anyway, and a single run owning every slot keeps acquire/return
    /// trivially consistent. Each run's deadline clock starts *after*
    /// this lock is acquired, so queued runs get their full budget.
    run_lock: Mutex<()>,
    /// One slot per configured worker address; `None` = not connected.
    slots: Mutex<Vec<Option<IdleConn>>>,
    breaker: Breaker,
    stats: AtomicStats,
    /// Salts the jittered backoff so concurrent pools don't march in
    /// lockstep; bumped once per run.
    runs: AtomicU64,
    /// Ping nonces, bumped per probe so back-to-back pings on one socket
    /// never share a token.
    nonces: AtomicU64,
    /// The registry run metrics and pool gauges are mirrored into, once
    /// one is supplied to [`WorkerPool::execute`].
    registry: Mutex<Option<Arc<MetricsRegistry>>>,
}

/// A persistent, health-checked pool of worker connections — the handle
/// `ExecBackend::Cluster` holds. Cheap to clone (all clones share the
/// slots, breaker and stats); dropping the last clone closes the pooled
/// sockets but leaves the workers running.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// A pool over `config`'s workers. No sockets are dialled until the
    /// first [`WorkerPool::execute`].
    pub fn new(config: ClusterConfig) -> Self {
        WorkerPool::with_clock(config, Arc::new(SystemClock))
    }

    /// [`WorkerPool::new`] with an injected [`Clock`] — how the tests
    /// observe the backoff schedule without sleeping it.
    pub fn with_clock(config: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        let slots = (0..config.workers.len()).map(|_| None).collect();
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_cooldown);
        WorkerPool {
            inner: Arc::new(PoolInner {
                config,
                clock,
                run_lock: Mutex::new(()),
                slots: Mutex::new(slots),
                breaker,
                stats: AtomicStats::default(),
                runs: AtomicU64::new(0),
                nonces: AtomicU64::new(0),
                registry: Mutex::new(None),
            }),
        }
    }

    /// The configuration this pool was built over.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Snapshot of the pool's cumulative counters.
    pub fn stats(&self) -> PoolStats {
        let s = &self.inner.stats;
        PoolStats {
            runs_ok: s.runs_ok.load(Ordering::Relaxed),
            runs_failed: s.runs_failed.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            reconnects: s.reconnects.load(Ordering::Relaxed),
        }
    }

    /// Number of currently pooled (idle, believed-live) connections.
    pub fn pooled_connections(&self) -> usize {
        self.inner
            .slots
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// The circuit breaker's current state (for the
    /// `pq_cluster_breaker_state` gauge).
    pub fn breaker_state(&self) -> crate::net::retry::BreakerState {
        self.inner.breaker.state()
    }

    /// Drop every pooled connection. The next run redials; the workers
    /// themselves keep serving.
    pub fn disconnect(&self) {
        let mut slots = self.inner.slots.lock().unwrap();
        for slot in slots.iter_mut() {
            *slot = None;
        }
    }

    /// Execute one communication round of a run on the cluster, with the
    /// full resilience stack: breaker admission, per-query deadline,
    /// pooled connections (health-checked, redialled as needed), and
    /// retry on a rebuilt topology. `messages` is called once per attempt
    /// to (re)route the run's fragments — it must be pure over immutable
    /// inputs, which is what makes the retry safe (see the module docs).
    ///
    /// On success the returned [`RunMetrics`] describe exactly the one
    /// successful attempt (plus `input_bits`), as the model accounting
    /// downstream requires; retry/reconnect counts live in
    /// [`WorkerPool::stats`] and the registry counters instead.
    ///
    /// # Errors
    /// The last attempt's [`ClusterError`], [`ClusterError::BreakerOpen`]
    /// when failing fast, or [`ClusterError::DeadlineExceeded`] when the
    /// budget drained mid-run.
    pub fn execute(
        &self,
        p: usize,
        bits_per_value: u64,
        input_bits: u64,
        program: &RoundProgram,
        messages: &dyn Fn() -> Vec<Message>,
        registry: Option<&Arc<MetricsRegistry>>,
    ) -> Result<(Relation, RunMetrics), ClusterError> {
        let inner = &self.inner;
        if let Some(registry) = registry {
            *inner.registry.lock().unwrap() = Some(registry.clone());
        }
        let _run = inner.run_lock.lock().unwrap();
        let before = self.stats();
        let salt = inner.runs.fetch_add(1, Ordering::Relaxed);
        let start = inner.clock.now();
        let result = match inner.breaker.admit(start) {
            Err(retry_in) => Err(ClusterError::BreakerOpen { retry_in }),
            Ok(()) => self.attempts(p, bits_per_value, input_bits, program, messages, salt),
        };
        match &result {
            Ok(_) => {
                inner.breaker.record_success();
                inner.stats.runs_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                // A fast-failed (breaker-open) run is no *new* evidence of
                // ill health — only real attempt failures move the state.
                if !matches!(e, ClusterError::BreakerOpen { .. }) {
                    inner.breaker.record_failure(inner.clock.now());
                }
                inner.stats.runs_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.publish(before);
        result
    }

    /// The attempt loop: full topology first, route-around retries after,
    /// all under one deadline.
    fn attempts(
        &self,
        p: usize,
        bits_per_value: u64,
        input_bits: u64,
        program: &RoundProgram,
        messages: &dyn Fn() -> Vec<Message>,
        salt: u64,
    ) -> Result<(Relation, RunMetrics), ClusterError> {
        let inner = &self.inner;
        let budget = inner.config.deadline;
        let deadline = inner.clock.now() + budget;
        let retries = inner.config.retry.retries;
        let mut last_err: Option<ClusterError> = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                inner.stats.retries.fetch_add(1, Ordering::Relaxed);
                let pause = inner.config.retry.delay(attempt, salt);
                let remaining = deadline.saturating_duration_since(inner.clock.now());
                if remaining.is_zero() {
                    break;
                }
                inner.clock.sleep(pause.min(remaining));
            }
            if deadline
                .saturating_duration_since(inner.clock.now())
                .is_zero()
            {
                break;
            }
            let require_full = attempt == 0;
            let (slot_map, connections) = match self.acquire(bits_per_value, require_full) {
                Ok(acquired) => acquired,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let mut coordinator = Coordinator::from_connections(
                connections,
                inner.config.read_timeout,
                p,
                bits_per_value,
            );
            coordinator.set_input_bits(input_bits);
            coordinator.set_deadline(Some((deadline, budget)));
            if let Some(registry) = self.registry_for_rounds() {
                coordinator.set_registry(registry);
            }
            match coordinator.run_round(messages(), program) {
                Ok(output) => {
                    let (connections, metrics) = coordinator.take_connections();
                    let now = inner.clock.now();
                    let mut slots = inner.slots.lock().unwrap();
                    for (slot, connection) in slot_map.into_iter().zip(connections) {
                        slots[slot] = Some(IdleConn {
                            connection,
                            last_used: now,
                        });
                    }
                    return Ok((output, metrics));
                }
                Err(e) => {
                    // A failed round leaves the touched workers in an
                    // unknown state: drop every borrowed connection (the
                    // coordinator owns them, so dropping it closes them)
                    // and rebuild from scratch next attempt.
                    drop(coordinator);
                    let fatal = matches!(e, ClusterError::DeadlineExceeded { .. });
                    last_err = Some(e);
                    if fatal {
                        break;
                    }
                }
            }
        }
        Err(last_err.unwrap_or(ClusterError::DeadlineExceeded { budget }))
    }

    /// Gather one connection per reachable worker: pooled ones (pinged if
    /// stale) where possible, fresh dials otherwise, a `Hello` on every
    /// one. Returns the worker-slot indices alongside the connections (in
    /// matching order) so successful runs can return each socket to its
    /// slot. `require_full` demands the complete topology; otherwise any
    /// subset no smaller than the configured floor passes.
    #[allow(clippy::type_complexity)]
    fn acquire(
        &self,
        bits_per_value: u64,
        require_full: bool,
    ) -> Result<(Vec<usize>, Vec<Connection>), ClusterError> {
        let inner = &self.inner;
        let total = inner.config.workers.len();
        if total == 0 {
            return Err(ClusterError::Protocol {
                worker: 0,
                message: "the cluster config lists no workers".into(),
            });
        }
        let now = inner.clock.now();
        let mut pooled: Vec<Option<IdleConn>> = {
            let mut slots = inner.slots.lock().unwrap();
            slots.iter_mut().map(|s| s.take()).collect()
        };
        let mut live: Vec<(usize, Connection)> = Vec::with_capacity(total);
        let mut first_failure: Option<ClusterError> = None;
        for (slot, address) in inner.config.workers.iter().enumerate() {
            let candidate = match pooled[slot].take() {
                Some(idle) => {
                    let stale = now.saturating_duration_since(idle.last_used)
                        >= inner.config.health_check_after;
                    let mut connection = idle.connection;
                    let nonce = inner.nonces.fetch_add(1, Ordering::Relaxed);
                    if !stale || connection.ping(nonce) {
                        Some(connection)
                    } else {
                        // Stale and unresponsive: silently replace it.
                        None
                    }
                }
                None => None,
            };
            let connection = match candidate {
                Some(connection) => Ok(connection),
                None => {
                    inner.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    Connection::dial(address, inner.config.read_timeout, slot)
                }
            };
            match connection {
                Ok(connection) => live.push((slot, connection)),
                Err(e) => {
                    if first_failure.is_none() {
                        first_failure = Some(e);
                    }
                }
            }
        }
        if require_full && live.len() < total {
            return Err(first_failure.unwrap_or(ClusterError::Unavailable {
                live: live.len(),
                needed: total,
            }));
        }
        let floor = inner.config.effective_min_workers();
        if live.len() < floor {
            return Err(ClusterError::Unavailable {
                live: live.len(),
                needed: floor,
            });
        }
        // Hello every member of this attempt's topology: worker i of n.
        let n = live.len();
        let mut slot_map = Vec::with_capacity(n);
        let mut connections = Vec::with_capacity(n);
        for (i, (slot, mut connection)) in live.into_iter().enumerate() {
            connection.send_hello(i, n, bits_per_value)?;
            slot_map.push(slot);
            connections.push(connection);
        }
        Ok((slot_map, connections))
    }

    /// The registry the per-round counters go to, if one was published.
    fn registry_for_rounds(&self) -> Option<Arc<MetricsRegistry>> {
        self.inner.registry.lock().unwrap().clone()
    }

    /// Mirror this run's counter deltas (against the `before` snapshot)
    /// and the pool gauges into the published registry:
    /// `pq_cluster_retries_total`, `pq_cluster_reconnects_total`, the
    /// `pq_cluster_pool_size` gauge and the `pq_cluster_breaker_state`
    /// gauge.
    fn publish(&self, before: PoolStats) {
        let Some(registry) = self.registry_for_rounds() else {
            return;
        };
        if !registry.is_enabled() {
            return;
        }
        let stats = self.stats();
        registry
            .counter(
                "pq_cluster_retries_total",
                &[],
                "Cluster run retry attempts (attempts beyond the first)",
            )
            .add(stats.retries.saturating_sub(before.retries));
        registry
            .counter(
                "pq_cluster_reconnects_total",
                &[],
                "Worker sockets dialled by the pool (first dials and replacements)",
            )
            .add(stats.reconnects.saturating_sub(before.reconnects));
        registry
            .gauge(
                "pq_cluster_pool_size",
                &[],
                "Idle, believed-live worker connections held by the pool",
            )
            .set(self.pooled_connections() as u64);
        registry
            .gauge(
                "pq_cluster_breaker_state",
                &[],
                "Cluster circuit breaker state (0 = closed, 1 = open, 2 = half-open)",
            )
            .set(self.breaker_state().gauge());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::coordinator::AtomSpec;
    use crate::net::retry::{BreakerState, RetryPolicy, TestClock};
    use crate::net::worker::LocalWorkers;
    use pq_relation::Schema;
    use std::time::Duration;

    fn rel(rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs("R", &["x", "y"]), rows)
    }

    fn identity_program() -> RoundProgram {
        RoundProgram {
            name: "Q".into(),
            output_vars: vec!["x".into(), "y".into()],
            atoms: vec![AtomSpec {
                relation: "R".into(),
                variables: vec!["x".into(), "y".into()],
            }],
        }
    }

    /// Broadcast two R-rows to every logical server: the merged, deduped
    /// answer is exactly those two rows, on any worker count.
    fn broadcast(p: usize) -> Vec<Message> {
        (0..p)
            .map(|to| Message::tuples(to, rel(vec![vec![1, 2], vec![3, 4]])))
            .collect()
    }

    /// An address that is bound, then immediately released: connecting to
    /// it reliably fails.
    fn dead_address() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    }

    #[test]
    fn a_pool_reuses_its_connections_across_runs() {
        let workers = LocalWorkers::spawn(2).unwrap();
        let pool = WorkerPool::new(ClusterConfig::new(workers.addresses().to_vec()));
        for _ in 0..3 {
            let (output, metrics) = pool
                .execute(4, 16, 1000, &identity_program(), &|| broadcast(4), None)
                .unwrap();
            assert_eq!(output.len(), 2);
            assert_eq!(metrics.num_rounds(), 1);
            assert_eq!(metrics.rounds[0].wire_bytes.len(), 2);
            assert!(metrics.is_measured());
        }
        let stats = pool.stats();
        assert_eq!(stats.runs_ok, 3);
        assert_eq!(stats.retries, 0);
        assert_eq!(
            stats.reconnects, 2,
            "two dials for the first run, zero after: the pool kept them"
        );
        assert_eq!(pool.pooled_connections(), 2);
        drop(pool);
        workers.shutdown();
    }

    #[test]
    fn a_dead_worker_is_retried_and_routed_around() {
        let workers = LocalWorkers::spawn(2).unwrap();
        let mut addresses = workers.addresses().to_vec();
        addresses.push(dead_address());
        // 3 configured workers, majority floor = 2: the first attempt
        // (full topology) fails on the dead dial, the retry folds the 4
        // logical servers onto the 2 live workers and succeeds exactly.
        let config = ClusterConfig::new(addresses)
            .with_retry(RetryPolicy {
                retries: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            });
        let pool = WorkerPool::new(config);
        let (output, metrics) = pool
            .execute(4, 16, 1000, &identity_program(), &|| broadcast(4), None)
            .unwrap();
        assert_eq!(output.len(), 2, "the reduced-topology answer is exact");
        assert_eq!(
            metrics.rounds[0].wire_bytes.len(),
            2,
            "the successful attempt ran on the reduced topology"
        );
        let stats = pool.stats();
        assert!(stats.retries >= 1, "{stats:?}");
        assert_eq!(stats.runs_ok, 1);
        assert_eq!(pool.breaker_state(), BreakerState::Closed);
        drop(pool);
        workers.shutdown();
    }

    #[test]
    fn too_few_live_workers_is_unavailable_not_a_hang() {
        // 2 of 3 dead: majority floor 2 > 1 live, every attempt fails.
        let workers = LocalWorkers::spawn(1).unwrap();
        let addresses = vec![
            workers.addresses()[0].clone(),
            dead_address(),
            dead_address(),
        ];
        let config = ClusterConfig::new(addresses).with_retry(RetryPolicy {
            retries: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
        });
        let pool = WorkerPool::new(config);
        let err = pool
            .execute(4, 16, 1000, &identity_program(), &|| broadcast(4), None)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ClusterError::Unavailable { live: 1, needed: 2 } | ClusterError::Io { .. }
            ),
            "{err}"
        );
        drop(pool);
        workers.shutdown();
    }

    #[test]
    fn the_breaker_opens_after_consecutive_failed_runs_and_fails_fast() {
        let clock = Arc::new(TestClock::new());
        let config = ClusterConfig::new(vec![dead_address()])
            .with_retry(RetryPolicy {
                retries: 0,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(1),
            })
            .with_breaker(2, Duration::from_secs(5));
        let pool = WorkerPool::with_clock(config, clock.clone());
        let run = || pool.execute(2, 8, 0, &identity_program(), &|| broadcast(2), None);
        assert!(matches!(run().unwrap_err(), ClusterError::Io { .. }));
        assert!(matches!(run().unwrap_err(), ClusterError::Io { .. }));
        assert_eq!(pool.breaker_state(), BreakerState::Open);
        // Fail fast now: no socket is touched, the error carries the
        // remaining cooldown.
        let reconnects_before = pool.stats().reconnects;
        let err = run().unwrap_err();
        assert!(matches!(err, ClusterError::BreakerOpen { .. }), "{err}");
        assert_eq!(pool.stats().reconnects, reconnects_before);
        // After the cooldown the half-open probe is admitted (and fails
        // against the still-dead address, re-opening the breaker).
        clock.sleep(Duration::from_secs(5));
        assert!(matches!(run().unwrap_err(), ClusterError::Io { .. }));
        assert_eq!(pool.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn a_zero_deadline_is_deadline_exceeded_not_a_hang() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let config = ClusterConfig::new(workers.addresses().to_vec())
            .with_deadline(Duration::ZERO);
        let pool = WorkerPool::new(config);
        let err = pool
            .execute(2, 8, 0, &identity_program(), &|| broadcast(2), None)
            .unwrap_err();
        assert!(matches!(err, ClusterError::DeadlineExceeded { .. }), "{err}");
        drop(pool);
        workers.shutdown();
    }

    #[test]
    fn pool_metrics_land_in_the_registry() {
        let workers = LocalWorkers::spawn(2).unwrap();
        let mut addresses = workers.addresses().to_vec();
        addresses.push(dead_address());
        let config = ClusterConfig::new(addresses).with_retry(RetryPolicy {
            retries: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
        });
        let pool = WorkerPool::new(config);
        let registry = Arc::new(MetricsRegistry::new());
        pool.execute(
            4,
            16,
            1000,
            &identity_program(),
            &|| broadcast(4),
            Some(&registry),
        )
        .unwrap();
        assert!(registry.counter_value("pq_cluster_retries_total", &[]) >= 1);
        assert!(registry.counter_value("pq_cluster_reconnects_total", &[]) >= 2);
        assert_eq!(registry.counter_value("pq_cluster_rounds_total", &[]), 1);
        drop(pool);
        workers.shutdown();
    }
}
