//! The binary frame codec of the worker protocol.
//!
//! Every frame is `MAGIC ‖ type ‖ length ‖ payload`:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PQW1"
//! 4       1     frame type (one byte per [`Frame`] variant)
//! 5       4     payload length, u32 little-endian (≤ MAX_FRAME_LEN)
//! 9       len   payload
//! ```
//!
//! Inside payloads: integers are little-endian (`u32`/`u64`), strings are a
//! `u16` length followed by UTF-8 bytes, string lists are a `u16` count of
//! strings, and a relation is `name ‖ attributes ‖ row count (u64) ‖ raw
//! row buffer` — the flat storage shipped verbatim via
//! [`Relation::write_rows_le`], so encoding a fragment is one buffer copy.
//!
//! Decoding never panics: a bad magic, an unknown type byte, an oversized
//! length prefix, a stream that ends mid-frame or a payload whose fields
//! disagree with its length all surface as located [`FrameError`]s. A
//! clean EOF *between* frames is `Ok(None)` — the peer hung up, which is
//! an orderly close, not a malformed frame.

use pq_relation::{Relation, Schema, WireError};
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"PQW1";

/// Upper bound on a frame's payload length (1 GiB). A length prefix above
/// this is rejected before any allocation: a corrupt or hostile prefix
/// must not become an out-of-memory attempt.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

const TYPE_HELLO: u8 = 1;
const TYPE_FRAGMENT: u8 = 2;
const TYPE_EXECUTE: u8 = 3;
const TYPE_ANSWER: u8 = 4;
const TYPE_ERROR: u8 = 5;
const TYPE_SHUTDOWN: u8 = 6;
const TYPE_PING: u8 = 7;
const TYPE_PONG: u8 = 8;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator → worker, once per connection: identify the worker's
    /// slot, the cluster width and the model's value width. Resets any
    /// fragment state left by a previous run on the same connection.
    Hello {
        /// This worker's index in the coordinator's worker list.
        worker: u64,
        /// Total number of workers in the cluster.
        workers: u64,
        /// Bits per value charged by the cost model (`log n`).
        bits_per_value: u64,
    },
    /// Coordinator → worker: one relation fragment of one round. The
    /// worker merges fragments by relation name, like the simulator's
    /// [`crate::Server::receive`].
    Fragment {
        /// 1-based round the fragment belongs to.
        round: u64,
        /// The fragment itself (schema attributes are query variables).
        relation: Relation,
    },
    /// Coordinator → worker: the round's shuffle is complete — join the
    /// fragments of the listed atoms, project to the output variables and
    /// reply with an [`Frame::Answer`].
    Execute {
        /// 1-based round to execute.
        round: u64,
        /// Head name of the answer relation.
        name: String,
        /// Output variables (columns of the answer), in order.
        output_vars: Vec<String>,
        /// Per atom: relation name, then its variable list (so a worker
        /// that received *no* fragment of an atom can still build the
        /// correctly-shaped empty relation and return an empty join).
        atoms: Vec<(String, Vec<String>)>,
    },
    /// Worker → coordinator: the round's barrier message, carrying the
    /// worker's head fragment and its measured receive bytes.
    Answer {
        /// Round being acknowledged.
        round: u64,
        /// Bytes this worker read off the wire during the round (fragment
        /// and execute frames included, headers and all).
        bytes_received: u64,
        /// The local join's head fragment.
        relation: Relation,
    },
    /// Either direction: a fatal, human-readable error. The sender closes
    /// the connection after it.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Coordinator (or admin) → worker: exit the serve loop cleanly.
    Shutdown,
    /// Coordinator → worker: a liveness probe. A healthy worker answers
    /// immediately with a [`Frame::Pong`] echoing the nonce; the connection
    /// pool uses the exchange to detect dead or stale pooled sockets
    /// cheaply, before committing a round's fragments to them. A ping never
    /// touches the worker's fragment state or its round byte accounting.
    Ping {
        /// Opaque echo token: the pong must carry it back, so a pool that
        /// pipelines probes can match responses to requests.
        nonce: u64,
    },
    /// Worker → coordinator: the answer to a [`Frame::Ping`], carrying the
    /// probe's nonce back.
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::Fragment { .. } => TYPE_FRAGMENT,
            Frame::Execute { .. } => TYPE_EXECUTE,
            Frame::Answer { .. } => TYPE_ANSWER,
            Frame::Error { .. } => TYPE_ERROR,
            Frame::Shutdown => TYPE_SHUTDOWN,
            Frame::Ping { .. } => TYPE_PING,
            Frame::Pong { .. } => TYPE_PONG,
        }
    }
}

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes actually read.
        got: [u8; 4],
    },
    /// The type byte named no known frame.
    UnknownType {
        /// The offending type byte.
        type_byte: u8,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// The stream ended in the middle of a frame (a truncated frame — the
    /// peer died or cut the payload short).
    ShortRead {
        /// Which part of the frame was being read.
        context: &'static str,
    },
    /// The payload decoded inconsistently with its length prefix (a field
    /// ran past the end, trailing bytes remained, or a string was not
    /// UTF-8).
    Malformed {
        /// Which field was being decoded.
        context: &'static str,
    },
    /// The payload's raw row buffer disagreed with its declared shape.
    Wire(WireError),
    /// The read timed out (the socket's read timeout elapsed with the
    /// frame incomplete or absent).
    TimedOut,
    /// Any other I/O failure, stringified.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:02x?} (expected {MAGIC:02x?})")
            }
            FrameError::UnknownType { type_byte } => {
                write!(f, "unknown frame type byte {type_byte:#04x}")
            }
            FrameError::Oversized { len } => write!(
                f,
                "frame length prefix {len} exceeds the {MAX_FRAME_LEN}-byte cap"
            ),
            FrameError::ShortRead { context } => {
                write!(f, "stream ended mid-frame while reading {context}")
            }
            FrameError::Malformed { context } => {
                write!(f, "malformed frame payload at {context}")
            }
            FrameError::Wire(e) => write!(f, "frame row buffer: {e}"),
            FrameError::TimedOut => write!(f, "read timed out waiting for a frame"),
            FrameError::Io(message) => write!(f, "frame I/O error: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

// ---------------------------------------------------------------- encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("protocol strings are short");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, list: &[String]) {
    let len = u16::try_from(list.len()).expect("protocol lists are short");
    put_u16(out, len);
    for s in list {
        put_str(out, s);
    }
}

fn put_relation(out: &mut Vec<u8>, relation: &Relation) {
    put_str(out, relation.name());
    put_str_list(out, relation.schema().attributes());
    put_u64(out, relation.len() as u64);
    relation.write_rows_le(out);
}

/// Serialise `frame` to `writer`. Returns the number of bytes written
/// (header included) so both ends can account real wire traffic.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> std::io::Result<u64> {
    let mut payload = Vec::new();
    match frame {
        Frame::Hello {
            worker,
            workers,
            bits_per_value,
        } => {
            put_u64(&mut payload, *worker);
            put_u64(&mut payload, *workers);
            put_u64(&mut payload, *bits_per_value);
        }
        Frame::Fragment { round, relation } => {
            put_u64(&mut payload, *round);
            put_relation(&mut payload, relation);
        }
        Frame::Execute {
            round,
            name,
            output_vars,
            atoms,
        } => {
            put_u64(&mut payload, *round);
            put_str(&mut payload, name);
            put_str_list(&mut payload, output_vars);
            put_u16(&mut payload, u16::try_from(atoms.len()).expect("few atoms"));
            for (relation, variables) in atoms {
                put_str(&mut payload, relation);
                put_str_list(&mut payload, variables);
            }
        }
        Frame::Answer {
            round,
            bytes_received,
            relation,
        } => {
            put_u64(&mut payload, *round);
            put_u64(&mut payload, *bytes_received);
            put_relation(&mut payload, relation);
        }
        Frame::Error { message } => {
            put_str(&mut payload, &message.chars().take(1024).collect::<String>());
        }
        Frame::Shutdown => {}
        Frame::Ping { nonce } | Frame::Pong { nonce } => {
            put_u64(&mut payload, *nonce);
        }
    }
    let len = u32::try_from(payload.len()).expect("payload under 4 GiB");
    assert!(len <= MAX_FRAME_LEN, "frame payload exceeds the protocol cap");
    writer.write_all(&MAGIC)?;
    writer.write_all(&[frame.type_byte()])?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&payload)?;
    Ok(9 + payload.len() as u64)
}

// ---------------------------------------------------------------- decoding

/// A bounds-checked reader over one frame's payload.
struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(FrameError::Malformed { context })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, FrameError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn string(&mut self, context: &'static str) -> Result<String, FrameError> {
        let len = self.u16(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed { context })
    }

    fn str_list(&mut self, context: &'static str) -> Result<Vec<String>, FrameError> {
        let count = self.u16(context)? as usize;
        (0..count).map(|_| self.string(context)).collect()
    }

    fn relation(&mut self, context: &'static str) -> Result<Relation, FrameError> {
        let name = self.string(context)?;
        let attributes = self.str_list(context)?;
        let rows = usize::try_from(self.u64(context)?)
            .map_err(|_| FrameError::Malformed { context })?;
        let arity = attributes.len();
        let byte_len = rows
            .checked_mul(arity)
            .and_then(|v| v.checked_mul(8))
            .ok_or(FrameError::Malformed { context })?;
        let buffer = self.take(byte_len, context)?;
        // Duplicate attributes would make `Schema::new` panic; reject them
        // as a malformed frame instead.
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].contains(a) {
                return Err(FrameError::Malformed { context });
            }
        }
        Ok(Relation::from_rows_le(
            Schema::new(name, attributes),
            rows,
            buffer,
        )?)
    }

    fn finish(self, context: &'static str) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed { context })
        }
    }
}

fn io_error(e: std::io::Error, context: &'static str) -> FrameError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FrameError::TimedOut,
        ErrorKind::UnexpectedEof => FrameError::ShortRead { context },
        _ => FrameError::Io(e.to_string()),
    }
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed the connection between frames); everything else that
/// is not a whole, well-formed frame is a [`FrameError`]. On success the
/// byte count (header included) is returned alongside the frame.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<(Frame, u64)>, FrameError> {
    let mut magic = [0u8; 4];
    // Distinguish "no more frames" (0 bytes then EOF) from a truncated
    // frame (1–3 bytes then EOF): the former is an orderly close.
    let mut filled = 0;
    while filled < magic.len() {
        match reader.read(&mut magic[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::ShortRead { context: "magic" }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e, "magic")),
        }
    }
    if magic != MAGIC {
        return Err(FrameError::BadMagic { got: magic });
    }
    let mut head = [0u8; 5];
    reader
        .read_exact(&mut head)
        .map_err(|e| io_error(e, "frame header"))?;
    let type_byte = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    reader
        .read_exact(&mut payload)
        .map_err(|e| io_error(e, "frame payload"))?;
    let mut d = Decoder {
        bytes: &payload,
        pos: 0,
    };
    let frame = match type_byte {
        TYPE_HELLO => {
            let frame = Frame::Hello {
                worker: d.u64("hello.worker")?,
                workers: d.u64("hello.workers")?,
                bits_per_value: d.u64("hello.bits_per_value")?,
            };
            d.finish("hello")?;
            frame
        }
        TYPE_FRAGMENT => {
            let round = d.u64("fragment.round")?;
            let relation = d.relation("fragment.relation")?;
            d.finish("fragment")?;
            Frame::Fragment { round, relation }
        }
        TYPE_EXECUTE => {
            let round = d.u64("execute.round")?;
            let name = d.string("execute.name")?;
            let output_vars = d.str_list("execute.output_vars")?;
            let atom_count = d.u16("execute.atoms")? as usize;
            let atoms = (0..atom_count)
                .map(|_| {
                    Ok((
                        d.string("execute.atom.relation")?,
                        d.str_list("execute.atom.variables")?,
                    ))
                })
                .collect::<Result<Vec<_>, FrameError>>()?;
            d.finish("execute")?;
            Frame::Execute {
                round,
                name,
                output_vars,
                atoms,
            }
        }
        TYPE_ANSWER => {
            let round = d.u64("answer.round")?;
            let bytes_received = d.u64("answer.bytes_received")?;
            let relation = d.relation("answer.relation")?;
            d.finish("answer")?;
            Frame::Answer {
                round,
                bytes_received,
                relation,
            }
        }
        TYPE_ERROR => {
            let message = d.string("error.message")?;
            d.finish("error")?;
            Frame::Error { message }
        }
        TYPE_SHUTDOWN => {
            d.finish("shutdown")?;
            Frame::Shutdown
        }
        TYPE_PING => {
            let nonce = d.u64("ping.nonce")?;
            d.finish("ping")?;
            Frame::Ping { nonce }
        }
        TYPE_PONG => {
            let nonce = d.u64("pong.nonce")?;
            d.finish("pong")?;
            Frame::Pong { nonce }
        }
        other => return Err(FrameError::UnknownType { type_byte: other }),
    };
    Ok(Some((frame, 9 + len as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: Frame) -> Frame {
        let mut bytes = Vec::new();
        let written = write_frame(&mut bytes, &frame).expect("write");
        assert_eq!(written as usize, bytes.len());
        let mut cursor = Cursor::new(bytes);
        let (back, read) = read_frame(&mut cursor).expect("read").expect("a frame");
        assert_eq!(read, written, "both ends account the same bytes");
        assert!(
            read_frame(&mut cursor).expect("clean EOF").is_none(),
            "stream is exhausted after one frame"
        );
        back
    }

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, attrs), rows)
    }

    #[test]
    fn hello_and_shutdown_round_trip() {
        let hello = Frame::Hello {
            worker: 2,
            workers: 5,
            bits_per_value: 17,
        };
        assert_eq!(roundtrip(hello.clone()), hello);
        assert_eq!(roundtrip(Frame::Shutdown), Frame::Shutdown);
    }

    #[test]
    fn fragment_round_trips_for_every_relation_shape() {
        // Binary with content, arity-1, empty, and nullary with rows.
        let shapes = vec![
            rel("R", &["x", "y"], vec![vec![1, 2], vec![u64::MAX, 0]]),
            rel("U", &["only"], vec![vec![9], vec![10], vec![11]]),
            rel("E", &["a", "b", "c"], vec![]),
            {
                let mut nullary = Relation::empty(Schema::from_strs("N", &[]));
                nullary.push_row(&[]);
                nullary.push_row(&[]);
                nullary
            },
        ];
        for relation in shapes {
            let frame = Frame::Fragment {
                round: 3,
                relation: relation.clone(),
            };
            let Frame::Fragment { relation: back, .. } = roundtrip(frame) else {
                panic!("frame type changed");
            };
            assert_eq!(back, relation);
        }
    }

    #[test]
    fn large_fragment_round_trips() {
        let rows: Vec<Vec<u64>> = (0..10_000u64).map(|i| vec![i, i * 31, i ^ 0xABCD]).collect();
        let relation = rel("Big", &["x", "y", "z"], rows);
        let frame = Frame::Fragment { round: 1, relation: relation.clone() };
        let Frame::Fragment { relation: back, .. } = roundtrip(frame) else {
            panic!("frame type changed");
        };
        assert_eq!(back, relation);
        assert_eq!(back.len(), 10_000);
    }

    #[test]
    fn execute_and_answer_round_trip() {
        let execute = Frame::Execute {
            round: 1,
            name: "Q".into(),
            output_vars: vec!["x".into(), "y".into(), "z".into()],
            atoms: vec![
                ("R".into(), vec!["x".into(), "y".into()]),
                ("S".into(), vec!["y".into(), "z".into()]),
            ],
        };
        assert_eq!(roundtrip(execute.clone()), execute);
        let answer = Frame::Answer {
            round: 1,
            bytes_received: 12_345,
            relation: rel("Q", &["x", "y"], vec![vec![7, 8]]),
        };
        assert_eq!(roundtrip(answer.clone()), answer);
        let error = Frame::Error {
            message: "it broke".into(),
        };
        assert_eq!(roundtrip(error.clone()), error);
    }

    #[test]
    fn ping_and_pong_round_trip_with_their_nonce() {
        for nonce in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(roundtrip(Frame::Ping { nonce }), Frame::Ping { nonce });
            assert_eq!(roundtrip(Frame::Pong { nonce }), Frame::Pong { nonce });
        }
    }

    #[test]
    fn ping_with_a_short_or_long_payload_is_malformed() {
        // 7 bytes: one short of the nonce.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(7);
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 7]);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err, FrameError::Malformed { context: "ping.nonce" });
        // 9 bytes: a trailing byte after the nonce.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(8);
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 9]);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err, FrameError::Malformed { context: "pong" });
    }

    #[test]
    fn bad_magic_is_rejected_with_the_offending_bytes() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Shutdown).unwrap();
        bytes[0] = b'X';
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err, FrameError::BadMagic { got: *b"XQW1" });
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(6); // Shutdown
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err, FrameError::Oversized { len: u32::MAX });
    }

    #[test]
    fn truncated_frames_are_short_reads_not_panics() {
        let mut full = Vec::new();
        write_frame(
            &mut full,
            &Frame::Fragment {
                round: 1,
                relation: rel("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]),
            },
        )
        .unwrap();
        // Cutting the stream anywhere inside the frame must yield a located
        // ShortRead, never a panic or a bogus frame.
        for cut in 1..full.len() {
            let err = read_frame(&mut Cursor::new(&full[..cut])).unwrap_err();
            assert!(
                matches!(err, FrameError::ShortRead { .. }),
                "cut at {cut}: got {err}"
            );
        }
        // The whole stream still decodes (the loop above did not mutate it).
        assert!(read_frame(&mut Cursor::new(&full)).unwrap().is_some());
    }

    #[test]
    fn unknown_type_byte_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(99);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err, FrameError::UnknownType { type_byte: 99 });
    }

    #[test]
    fn payload_length_mismatches_are_malformed() {
        // A Shutdown frame with trailing payload bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(6);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(err, FrameError::Malformed { context: "shutdown" });

        // A Hello whose payload is one u64 short.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(1);
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(
            err,
            FrameError::Malformed {
                context: "hello.bits_per_value"
            }
        );
    }

    #[test]
    fn fragment_row_count_must_match_its_buffer() {
        // Hand-build a fragment whose declared row count exceeds the rows
        // actually shipped: the relation decoder sees the mismatch as a
        // truncated payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes()); // round
        payload.extend_from_slice(&1u16.to_le_bytes()); // name len
        payload.push(b'R');
        payload.extend_from_slice(&1u16.to_le_bytes()); // one attribute
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(b'x');
        payload.extend_from_slice(&5u64.to_le_bytes()); // claims 5 rows
        payload.extend_from_slice(&7u64.to_le_bytes()); // ships 1
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(2);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(
            err,
            FrameError::Malformed {
                context: "fragment.relation"
            }
        );
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut Cursor::new(empty)).unwrap().is_none());
    }
}
