//! Retry scheduling for the cluster backend: capped exponential backoff
//! with deterministic jitter, a test-injectable [`Clock`], and the
//! [`Breaker`] that stops a persistently failing cluster from being
//! hammered (and lets the engine degrade to the simulator instead).
//!
//! Everything here is deliberately free of randomness sources and wall
//! clocks that tests cannot control: jitter is a hash of `(salt, attempt)`
//! — stable across runs for the same query seed, different across
//! attempts — and sleeping goes through the [`Clock`] trait, so the test
//! suite swaps in a [`TestClock`] that records the requested pauses
//! instead of serving them.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a failed cluster attempt is retried: up to `retries` extra attempts,
/// separated by exponentially growing, jittered pauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 = fail immediately).
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single backoff pause.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

/// SplitMix64: a tiny, well-mixed hash — all the "randomness" the jitter
/// needs, with none of the irreproducibility.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy with `retries` extra attempts and the default backoff
    /// shape (50 ms base, 2 s cap).
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy {
            retries,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (1-based), salted so two
    /// coordinators retrying the same cluster do not march in lockstep.
    ///
    /// Equal-jitter backoff: the uncapped target is `base << (attempt-1)`,
    /// clamped to `cap`, and the pause lands deterministically in
    /// `[target/2, target]` — a hash of `(salt, attempt)` picks the point,
    /// so the same salt always reproduces the same schedule.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let target = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.cap)
            .as_nanos() as u64;
        let half = target / 2;
        let jitter = if half == 0 {
            0
        } else {
            mix(salt ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407)) % (half + 1)
        };
        Duration::from_nanos(half + jitter)
    }
}

/// The clock the retry loop sleeps and reads time through. Production code
/// uses [`SystemClock`]; tests use [`TestClock`] to observe the schedule
/// without actually waiting it out.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Pause the calling thread for `duration`.
    fn sleep(&self, duration: Duration);
    /// The current instant, coherent with [`Clock::sleep`].
    fn now(&self) -> Instant;
}

/// The real thing: `std::thread::sleep` and `Instant::now`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A deterministic clock for tests: [`Clock::sleep`] returns immediately
/// but records the requested pause and advances the virtual time that
/// [`Clock::now`] reports.
#[derive(Debug)]
pub struct TestClock {
    origin: Instant,
    state: Mutex<(Duration, Vec<Duration>)>,
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl TestClock {
    /// A clock whose virtual time starts "now" and only advances through
    /// [`Clock::sleep`] calls.
    pub fn new() -> Self {
        TestClock {
            origin: Instant::now(),
            state: Mutex::new((Duration::ZERO, Vec::new())),
        }
    }

    /// Every pause requested so far, in order.
    pub fn sleeps(&self) -> Vec<Duration> {
        self.state.lock().unwrap().1.clone()
    }
}

impl Clock for TestClock {
    fn sleep(&self, duration: Duration) {
        let mut state = self.state.lock().unwrap();
        state.0 += duration;
        state.1.push(duration);
    }
    fn now(&self) -> Instant {
        self.origin + self.state.lock().unwrap().0
    }
}

/// The circuit breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: runs are admitted; consecutive failures are counted.
    Closed,
    /// Tripped: runs fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe run is admitted; its outcome decides
    /// between [`BreakerState::Closed`] and re-opening.
    HalfOpen,
}

impl BreakerState {
    /// The gauge encoding exposed as `pq_cluster_breaker_state`:
    /// closed = 0, open = 1, half-open = 2.
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A three-state circuit breaker over whole cluster runs (not individual
/// sockets): `threshold` consecutive run failures open it, runs then fail
/// fast for `cooldown`, after which a single probe run is admitted
/// half-open — success closes the breaker, failure re-opens it.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// stays open for `cooldown` before probing.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    /// Ask to run at time `now`. `Ok(())` admits the run (possibly as the
    /// half-open probe); `Err(retry_in)` fails fast with the time left on
    /// the cooldown.
    pub fn admit(&self, now: Instant) -> Result<(), Duration> {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let opened_at = inner.opened_at.unwrap_or(now);
                let elapsed = now.saturating_duration_since(opened_at);
                if elapsed >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    Err(self.cooldown - elapsed)
                }
            }
        }
    }

    /// Record a successful run: the breaker closes and the failure count
    /// resets, whatever the previous state.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Record a failed run at time `now`. A half-open probe failure
    /// re-opens immediately; closed-state failures open once they reach
    /// the threshold.
    pub fn record_failure(&self, now: Instant) {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = matches!(inner.state, BreakerState::HalfOpen)
            || inner.consecutive_failures >= self.threshold;
        if trip {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(now);
        }
    }

    /// The current state (for the `pq_cluster_breaker_state` gauge).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_bounded_and_grow() {
        let policy = RetryPolicy::default();
        for attempt in 1..=10u32 {
            let a = policy.delay(attempt, 42);
            let b = policy.delay(attempt, 42);
            assert_eq!(a, b, "same salt, same schedule");
            let target = policy
                .base
                .saturating_mul(1 << (attempt - 1).min(20))
                .min(policy.cap);
            assert!(a >= target / 2, "attempt {attempt}: {a:?} < {:?}", target / 2);
            assert!(a <= target, "attempt {attempt}: {a:?} > {target:?}");
        }
        // Different salts decorrelate the schedules.
        assert_ne!(policy.delay(3, 1), policy.delay(3, 2));
        // The cap holds even for absurd attempt numbers.
        assert!(policy.delay(64, 7) <= policy.cap);
        assert_eq!(policy.delay(0, 7), Duration::ZERO);
    }

    #[test]
    fn the_test_clock_records_instead_of_sleeping() {
        let clock = TestClock::new();
        let before = clock.now();
        clock.sleep(Duration::from_secs(3600));
        clock.sleep(Duration::from_millis(5));
        assert_eq!(
            clock.sleeps(),
            vec![Duration::from_secs(3600), Duration::from_millis(5)]
        );
        assert_eq!(
            clock.now().duration_since(before),
            Duration::from_secs(3600) + Duration::from_millis(5)
        );
    }

    #[test]
    fn the_breaker_opens_cools_down_probes_and_recloses() {
        let clock = TestClock::new();
        let breaker = Breaker::new(3, Duration::from_secs(5));
        assert_eq!(breaker.state(), BreakerState::Closed);

        // Two failures: still closed.
        breaker.record_failure(clock.now());
        breaker.record_failure(clock.now());
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.admit(clock.now()).is_ok());

        // Third failure trips it; admission now fails fast with the
        // remaining cooldown.
        breaker.record_failure(clock.now());
        assert_eq!(breaker.state(), BreakerState::Open);
        let retry_in = breaker.admit(clock.now()).unwrap_err();
        assert!(retry_in <= Duration::from_secs(5) && retry_in > Duration::ZERO);

        // After the cooldown a probe is admitted half-open.
        clock.sleep(Duration::from_secs(5));
        assert!(breaker.admit(clock.now()).is_ok());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);

        // A failed probe re-opens immediately (no threshold counting).
        breaker.record_failure(clock.now());
        assert_eq!(breaker.state(), BreakerState::Open);

        // Cool down again; this time the probe succeeds and closes it.
        clock.sleep(Duration::from_secs(5));
        assert!(breaker.admit(clock.now()).is_ok());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.admit(clock.now()).is_ok());
    }

    #[test]
    fn a_success_resets_the_consecutive_failure_count() {
        let clock = TestClock::new();
        let breaker = Breaker::new(2, Duration::from_secs(1));
        breaker.record_failure(clock.now());
        breaker.record_success();
        breaker.record_failure(clock.now());
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "non-consecutive failures never trip the breaker"
        );
    }

    #[test]
    fn breaker_state_gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.gauge(), 0);
        assert_eq!(BreakerState::Open.gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.gauge(), 2);
    }
}
