//! The coordinator side of the cluster protocol.
//!
//! A [`Coordinator`] owns one TCP connection per worker and drives the
//! same round structure as the in-process [`crate::Cluster`]: ship this
//! round's messages, barrier, inspect results. The algorithm above it
//! still thinks in `p` *logical* servers — the coordinator maps logical
//! server `s` onto worker `s % workers` (see the module docs of
//! [`crate::net`] for why that folding is sound and complete) and records
//! two parallel cost accounts per round:
//!
//! * the model's [`crate::RoundStats::received_bits`] (length `p`,
//!   idealised `bits_per_value` accounting, bit-identical to what the
//!   simulator would report for the same messages), and
//! * the measured [`crate::RoundStats::wire_bytes`] (length `workers`,
//!   what each worker actually read off its socket, frame headers
//!   included).
//!
//! The write phase is deadlock-free by construction: the coordinator
//! writes *all* fragments and every `Execute` before reading anything,
//! and workers write only after receiving their `Execute`.

use crate::message::{Message, Payload};
use crate::metrics::{RoundStats, RunMetrics};
use crate::net::codec::{read_frame, write_frame, Frame, FrameError};
use crate::net::retry::RetryPolicy;
use pq_obs::MetricsRegistry;
use pq_relation::Relation;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the workers live, how long to wait for them, and how hard the
/// resilience layer ([`crate::net::WorkerPool`]) tries before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`), one per worker slot.
    pub workers: Vec<String>,
    /// Read timeout applied to every worker socket; a worker that stays
    /// silent longer than this during the barrier yields
    /// [`ClusterError::Timeout`] instead of a hang. The per-query
    /// [`ClusterConfig::deadline`] caps it further as the budget drains.
    pub read_timeout: Duration,
    /// Per-query wall-clock budget covering *all* attempts of a run —
    /// dials, Hellos, rounds and backoff pauses included. When it runs
    /// out mid-run the result is [`ClusterError::DeadlineExceeded`], never
    /// a hang.
    pub deadline: Duration,
    /// How failed runs are retried on a freshly rebuilt topology.
    pub retry: RetryPolicy,
    /// A pooled connection idle longer than this is pinged before reuse;
    /// a missed pong means a silent redial rather than a failed round.
    pub health_check_after: Duration,
    /// Minimum live workers a *retry* attempt may route around dead
    /// peers down to. `0` (the default) means a majority of the
    /// configured workers. The first attempt of every run always requires
    /// the full topology.
    pub min_workers: usize,
    /// Consecutive failed runs before the circuit breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before admitting a half-open
    /// probe run.
    pub breaker_cooldown: Duration,
}

impl ClusterConfig {
    /// A config for the given worker addresses with the default 10 s read
    /// timeout, a 30 s per-query deadline, 2 retries (50 ms base backoff,
    /// 2 s cap), majority `min_workers`, and a breaker that opens after
    /// 3 consecutive failed runs for a 5 s cooldown.
    pub fn new(workers: Vec<String>) -> Self {
        ClusterConfig {
            workers,
            read_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            health_check_after: Duration::from_millis(500),
            min_workers: 0,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
        }
    }

    /// Replace the read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Replace the per-query deadline budget.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Replace the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replace the minimum live workers retry attempts may degrade to
    /// (`0` = majority of the configured workers).
    #[must_use]
    pub fn with_min_workers(mut self, min_workers: usize) -> Self {
        self.min_workers = min_workers;
        self
    }

    /// Replace the circuit-breaker tuning.
    #[must_use]
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Replace the idle age past which pooled connections are pinged.
    #[must_use]
    pub fn with_health_check_after(mut self, age: Duration) -> Self {
        self.health_check_after = age;
        self
    }

    /// The live-worker floor retry attempts enforce: `min_workers`, or a
    /// majority of the configured workers when it is `0`, never more than
    /// the configured worker count and never less than one.
    pub fn effective_min_workers(&self) -> usize {
        let floor = if self.min_workers == 0 {
            self.workers.len() / 2 + 1
        } else {
            self.min_workers
        };
        floor.clamp(1, self.workers.len().max(1))
    }
}

/// One atom of the query a worker must join locally: the relation name to
/// look up in its fragment store and the variables naming its columns (so
/// a worker that received no fragment can still build the correctly
/// shaped empty relation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpec {
    /// Relation name, the key into the worker's fragment store.
    pub relation: String,
    /// Variable names of the atom's columns, in order.
    pub variables: Vec<String>,
}

/// What every worker computes after the shuffle of a round: join the
/// listed atoms, project to the output variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundProgram {
    /// Name given to the result relation.
    pub name: String,
    /// Head variables to project the local join onto.
    pub output_vars: Vec<String>,
    /// The atoms to join, in instantiation order.
    pub atoms: Vec<AtomSpec>,
}

/// Everything that can go wrong talking to the cluster. Per-connection
/// variants name the worker slot so a failing test or operator log points
/// at a concrete process; the run-level variants describe the resilience
/// layer giving up as a whole.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The per-query deadline budget ran out (across all attempts,
    /// backoff pauses included).
    DeadlineExceeded {
        /// The budget that was exhausted.
        budget: Duration,
    },
    /// The circuit breaker is open: the cluster failed too many
    /// consecutive runs and is cooling down, so the run failed fast
    /// without touching a socket.
    BreakerOpen {
        /// Time left on the cooldown before a probe run is admitted.
        retry_in: Duration,
    },
    /// Too few workers are reachable to satisfy the configured
    /// `min_workers` floor, even routing around the dead ones.
    Unavailable {
        /// Workers that answered.
        live: usize,
        /// The floor the attempt had to meet.
        needed: usize,
    },
    /// An I/O error on a worker connection (connect, write or read).
    Io {
        /// Worker slot.
        worker: usize,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A worker closed its connection when an answer was still owed.
    Died {
        /// Worker slot.
        worker: usize,
    },
    /// A worker stayed silent past the configured read timeout.
    Timeout {
        /// Worker slot.
        worker: usize,
        /// The timeout that elapsed.
        timeout: Duration,
    },
    /// A worker sent bytes that do not decode as a valid frame.
    Frame {
        /// Worker slot.
        worker: usize,
        /// The located decode failure.
        error: FrameError,
    },
    /// A well-formed frame that violates the protocol (wrong frame type,
    /// mismatched round id, a payload the wire cannot carry).
    Protocol {
        /// Worker slot.
        worker: usize,
        /// What was violated.
        message: String,
    },
    /// The worker itself reported an error frame.
    Worker {
        /// Worker slot.
        worker: usize,
        /// The worker's message.
        message: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::DeadlineExceeded { budget } => {
                write!(f, "query deadline of {budget:?} exceeded")
            }
            ClusterError::BreakerOpen { retry_in } => {
                write!(
                    f,
                    "circuit breaker open; cluster cooling down for another {retry_in:?}"
                )
            }
            ClusterError::Unavailable { live, needed } => {
                write!(
                    f,
                    "only {live} workers reachable but at least {needed} are required"
                )
            }
            ClusterError::Io { worker, message } => {
                write!(f, "worker {worker}: i/o error: {message}")
            }
            ClusterError::Died { worker } => {
                write!(f, "worker {worker} closed its connection mid-round")
            }
            ClusterError::Timeout { worker, timeout } => {
                write!(f, "worker {worker} silent for more than {timeout:?}")
            }
            ClusterError::Frame { worker, error } => {
                write!(f, "worker {worker} sent an invalid frame: {error}")
            }
            ClusterError::Protocol { worker, message } => {
                write!(f, "worker {worker} protocol violation: {message}")
            }
            ClusterError::Worker { worker, message } => {
                write!(f, "worker {worker} reported: {message}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Map a read-side [`FrameError`] to the cluster error naming the worker.
fn read_error(worker: usize, timeout: Duration, error: FrameError) -> ClusterError {
    match error {
        FrameError::TimedOut => ClusterError::Timeout { worker, timeout },
        FrameError::Io(message) => ClusterError::Io { worker, message },
        other => ClusterError::Frame {
            worker,
            error: other,
        },
    }
}

/// One live worker connection: a dialled, nodelay TCP stream split into a
/// buffered reader/writer pair. [`crate::net::WorkerPool`] keeps these
/// alive between runs; a bare [`Coordinator::connect`] dials fresh ones.
#[derive(Debug)]
pub(crate) struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Dial `address` with `read_timeout` on the socket. Errors name
    /// `worker`, the slot this connection is being dialled for.
    pub(crate) fn dial(
        address: &str,
        read_timeout: Duration,
        worker: usize,
    ) -> Result<Connection, ClusterError> {
        let io = |e: std::io::Error| ClusterError::Io {
            worker,
            message: e.to_string(),
        };
        let stream = TcpStream::connect(address).map_err(io)?;
        stream.set_nodelay(true).map_err(io)?;
        stream.set_read_timeout(Some(read_timeout)).map_err(io)?;
        let reader = BufReader::new(stream.try_clone().map_err(io)?);
        let writer = BufWriter::new(stream);
        Ok(Connection { reader, writer })
    }

    /// Introduce this run: `Hello` resets whatever fragment state the
    /// worker kept from an earlier run on a reused connection.
    pub(crate) fn send_hello(
        &mut self,
        worker: usize,
        workers: usize,
        bits_per_value: u64,
    ) -> Result<(), ClusterError> {
        let io = |e: std::io::Error| ClusterError::Io {
            worker,
            message: e.to_string(),
        };
        write_frame(
            &mut self.writer,
            &Frame::Hello {
                worker: worker as u64,
                workers: workers as u64,
                bits_per_value,
            },
        )
        .map_err(io)?;
        self.writer.flush().map_err(io)
    }

    /// Liveness-check the connection: send a `Ping` and demand the
    /// matching `Pong` back. Any failure — write, read, timeout, a stale
    /// leftover frame — means the socket cannot be trusted for a round.
    pub(crate) fn ping(&mut self, nonce: u64) -> bool {
        if write_frame(&mut self.writer, &Frame::Ping { nonce }).is_err()
            || self.writer.flush().is_err()
        {
            return false;
        }
        matches!(
            read_frame(&mut self.reader),
            Ok(Some((Frame::Pong { nonce: echoed }, _))) if echoed == nonce
        )
    }

    /// Adjust the socket's read timeout (the deadline budget shrinks it
    /// as a run burns time).
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        // A zero timeout would mean "blocking forever"; the deadline check
        // guarantees a positive remainder before calling this.
        self.reader
            .get_ref()
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
    }
}

/// The round driver over real worker processes. Create with
/// [`Coordinator::connect`], call [`Coordinator::run_round`] once per
/// communication round, then collect [`Coordinator::into_metrics`].
#[derive(Debug)]
pub struct Coordinator {
    connections: Vec<Connection>,
    timeout: Duration,
    /// Absolute cut-off for this run plus the budget it came from, set by
    /// [`Coordinator::set_deadline`]; per-read socket timeouts shrink to
    /// the remaining budget as it drains.
    deadline: Option<(Instant, Duration)>,
    p: usize,
    bits_per_value: u64,
    metrics: RunMetrics,
    registry: Option<Arc<MetricsRegistry>>,
}

impl Coordinator {
    /// Connect to every configured worker and introduce ourselves with a
    /// `Hello` frame (which also resets any state a reused worker kept
    /// from an earlier run).
    ///
    /// # Errors
    /// [`ClusterError::Io`] when a worker is unreachable;
    /// [`ClusterError::Protocol`] when the config lists no workers or
    /// `p == 0`.
    pub fn connect(
        config: &ClusterConfig,
        p: usize,
        bits_per_value: u64,
    ) -> Result<Coordinator, ClusterError> {
        if config.workers.is_empty() {
            return Err(ClusterError::Protocol {
                worker: 0,
                message: "the cluster config lists no workers".into(),
            });
        }
        if p == 0 {
            return Err(ClusterError::Protocol {
                worker: 0,
                message: "a run needs at least one logical server".into(),
            });
        }
        let workers = config.workers.len();
        let mut connections = Vec::with_capacity(workers);
        for (worker, address) in config.workers.iter().enumerate() {
            let mut connection = Connection::dial(address, config.read_timeout, worker)?;
            connection.send_hello(worker, workers, bits_per_value)?;
            connections.push(connection);
        }
        Ok(Coordinator::from_connections(
            connections,
            config.read_timeout,
            p,
            bits_per_value,
        ))
    }

    /// Build a coordinator over already-dialled, already-Hello'd
    /// connections — the pool's entry point, which is what makes
    /// connection reuse across runs possible at all.
    pub(crate) fn from_connections(
        connections: Vec<Connection>,
        timeout: Duration,
        p: usize,
        bits_per_value: u64,
    ) -> Coordinator {
        Coordinator {
            connections,
            timeout,
            deadline: None,
            p,
            bits_per_value,
            metrics: RunMetrics::default(),
            registry: None,
        }
    }

    /// Take the connections back out (for the pool to keep), along with
    /// the metrics of the run they just served.
    pub(crate) fn take_connections(self) -> (Vec<Connection>, RunMetrics) {
        (self.connections, self.metrics)
    }

    /// Enforce an absolute per-run deadline: every subsequent barrier read
    /// caps its socket timeout at the remaining budget, and a drained
    /// budget yields [`ClusterError::DeadlineExceeded`] instead of another
    /// read.
    pub fn set_deadline(&mut self, deadline: Option<(Instant, Duration)>) {
        self.deadline = deadline;
    }

    /// The timeout for the next read on `worker`'s socket: the flat
    /// per-socket timeout, capped by what is left of the deadline budget.
    fn prepare_read(&mut self, worker: usize) -> Result<Duration, ClusterError> {
        let Some((deadline, budget)) = self.deadline else {
            return Ok(self.timeout);
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ClusterError::DeadlineExceeded { budget });
        }
        let effective = remaining.min(self.timeout);
        self.connections[worker]
            .set_read_timeout(effective)
            .map_err(|e| ClusterError::Io {
                worker,
                message: e.to_string(),
            })?;
        Ok(effective)
    }

    /// Also record every completed round into `registry` (cumulative
    /// across coordinators): `pq_cluster_rounds_total`, a
    /// `pq_cluster_round_wall_micros` histogram and one
    /// `pq_cluster_worker_wire_bytes_total{worker=…}` counter per worker
    /// slot. The per-run [`RunMetrics`] are unaffected.
    pub fn set_registry(&mut self, registry: Arc<MetricsRegistry>) {
        self.registry = Some(registry);
    }

    /// Number of worker processes (≤ `p`, the logical servers).
    pub fn num_workers(&self) -> usize {
        self.connections.len()
    }

    /// Record the total input size `|I|` in bits, exactly like
    /// [`crate::Cluster::set_input_bits`].
    pub fn set_input_bits(&mut self, bits: u64) {
        self.metrics.input_bits = bits;
    }

    /// Execute one communication round on the cluster: ship every message
    /// to its logical server's worker, tell all workers to run `program`
    /// over their fragments, barrier on their answers and return the
    /// merged, deduplicated result.
    ///
    /// # Errors
    /// Any [`ClusterError`]; the coordinator is not usable afterwards
    /// (a failed round leaves workers in an unknown state).
    ///
    /// # Panics
    /// Panics when a message addresses a logical server `>= p`, matching
    /// the simulator's contract.
    pub fn run_round(
        &mut self,
        messages: Vec<Message>,
        program: &RoundProgram,
    ) -> Result<Relation, ClusterError> {
        let start = Instant::now();
        let workers = self.num_workers();
        let p = self.p;
        let round = (self.metrics.rounds.len() + 1) as u64;
        let mut received = vec![0u64; p];
        let count = messages.len();
        // Write phase: all fragments, then Execute to every worker (ones
        // with no fragments still barrier and answer empty).
        for msg in messages {
            assert!(
                msg.to < p,
                "message addressed to server {} but the run has only {p} servers",
                msg.to
            );
            received[msg.to] += msg.payload.size_bits(self.bits_per_value);
            let worker = msg.to % workers;
            let relation = match msg.payload {
                Payload::Tuples(relation) => relation,
                Payload::Raw { label, .. } => {
                    return Err(ClusterError::Protocol {
                        worker,
                        message: format!(
                            "the wire backend ships only tuple payloads, got raw payload {label:?}"
                        ),
                    })
                }
            };
            self.write(worker, &Frame::Fragment { round, relation })?;
        }
        let execute = Frame::Execute {
            round,
            name: program.name.clone(),
            output_vars: program.output_vars.clone(),
            atoms: program
                .atoms
                .iter()
                .map(|a| (a.relation.clone(), a.variables.clone()))
                .collect(),
        };
        for worker in 0..workers {
            self.write(worker, &execute)?;
            self.connections[worker]
                .writer
                .flush()
                .map_err(|e| ClusterError::Io {
                    worker,
                    message: e.to_string(),
                })?;
        }
        // Barrier: one Answer per worker, in slot order.
        let mut wire_bytes = vec![0u64; workers];
        let mut merged: Option<Relation> = None;
        for (worker, wire) in wire_bytes.iter_mut().enumerate() {
            let timeout = self.prepare_read(worker)?;
            let (frame, frame_bytes) = read_frame(&mut self.connections[worker].reader)
                .map_err(|e| read_error(worker, timeout, e))?
                .ok_or(ClusterError::Died { worker })?;
            match frame {
                Frame::Answer {
                    round: answered,
                    bytes_received,
                    relation,
                } => {
                    if answered != round {
                        return Err(ClusterError::Protocol {
                            worker,
                            message: format!(
                                "answered round {answered} while round {round} is running"
                            ),
                        });
                    }
                    *wire = bytes_received;
                    self.metrics.result_wire_bytes += frame_bytes;
                    match &mut merged {
                        Some(acc) => acc.append(&relation),
                        None => merged = Some(relation),
                    }
                }
                Frame::Error { message } => {
                    return Err(ClusterError::Worker { worker, message })
                }
                other => {
                    return Err(ClusterError::Protocol {
                        worker,
                        message: format!("expected an Answer frame, got {other:?}"),
                    })
                }
            }
        }
        let mut output = merged.expect("at least one worker answered");
        output.dedup();
        let stats = RoundStats {
            round: round as usize,
            received_bits: received,
            messages: count,
            wire_bytes,
            wall_micros: start.elapsed().as_micros() as u64,
        };
        if let Some(registry) = self.registry.as_deref().filter(|r| r.is_enabled()) {
            registry
                .counter(
                    "pq_cluster_rounds_total",
                    &[],
                    "Communication rounds executed on the worker cluster",
                )
                .inc();
            registry
                .histogram(
                    "pq_cluster_round_wall_micros",
                    &[],
                    "Wall-clock time of one cluster communication round",
                )
                .observe(stats.wall_micros);
            for (worker, &bytes) in stats.wire_bytes.iter().enumerate() {
                registry
                    .counter(
                        "pq_cluster_worker_wire_bytes_total",
                        &[("worker", &worker.to_string())],
                        "Measured bytes each worker read off its socket, frame headers included",
                    )
                    .add(bytes);
            }
        }
        self.metrics.rounds.push(stats);
        Ok(output)
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the coordinator, returning its metrics. The worker
    /// connections close; the workers themselves keep serving.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    fn write(&mut self, worker: usize, frame: &Frame) -> Result<u64, ClusterError> {
        write_frame(&mut self.connections[worker].writer, frame).map_err(|e| ClusterError::Io {
            worker,
            message: e.to_string(),
        })
    }
}

/// Ask every configured worker process to exit: connect, send a
/// `Shutdown` frame, move on. Best-effort by design — a worker that is
/// already gone is exactly what we wanted.
pub fn shutdown_workers(config: &ClusterConfig) {
    for address in &config.workers {
        if let Ok(stream) = TcpStream::connect(address) {
            let mut writer = BufWriter::new(stream);
            let _ = write_frame(&mut writer, &Frame::Shutdown);
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::worker::LocalWorkers;
    use pq_relation::{natural_join, Relation, Schema};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, attrs), rows)
    }

    fn join_program() -> RoundProgram {
        RoundProgram {
            name: "Q".into(),
            output_vars: vec!["x".into(), "y".into(), "z".into()],
            atoms: vec![
                AtomSpec {
                    relation: "R".into(),
                    variables: vec!["x".into(), "y".into()],
                },
                AtomSpec {
                    relation: "S".into(),
                    variables: vec!["y".into(), "z".into()],
                },
            ],
        }
    }

    /// Hand-route a two-atom join across 2 workers folding p = 4 logical
    /// servers, and check the output and both cost accounts.
    #[test]
    fn a_round_over_real_sockets_matches_the_local_join() {
        let workers = LocalWorkers::spawn(2).unwrap();
        let config = ClusterConfig::new(workers.addresses().to_vec());
        let mut coordinator = Coordinator::connect(&config, 4, 16).unwrap();
        coordinator.set_input_bits(1000);
        let r = rel("R", &["x", "y"], vec![vec![1, 2], vec![3, 4], vec![5, 2]]);
        let s = rel("S", &["y", "z"], vec![vec![2, 20], vec![4, 40]]);
        // Partition R by x % 4 onto logical servers, broadcast S — every
        // answer then lands on its x-tuple's server, so the plan is
        // complete, and folding 4 servers onto 2 workers must not change
        // the output.
        let mut messages = Vec::new();
        for row in r.iter() {
            let to = (row[0] % 4) as usize;
            messages.push(Message::tuples(
                to,
                rel("R", &["x", "y"], vec![row.to_vec()]),
            ));
        }
        for to in 0..4 {
            messages.push(Message::tuples(to, s.clone()));
        }
        let output = coordinator.run_round(messages, &join_program()).unwrap();
        let mut rows: Vec<Vec<u64>> = output.iter().map(|t| t.to_vec()).collect();
        rows.sort();
        let expected = natural_join(&r, &s);
        let mut expected_rows: Vec<Vec<u64>> = expected.iter().map(|t| t.to_vec()).collect();
        expected_rows.sort();
        assert_eq!(rows, expected_rows);

        let metrics = coordinator.into_metrics();
        assert_eq!(metrics.num_rounds(), 1);
        let stats = &metrics.rounds[0];
        // Model account: length p, same arithmetic as the simulator
        // (3 R-rows of 2 values + a 2-row broadcast of S, at 16 bits).
        assert_eq!(stats.received_bits.len(), 4);
        assert_eq!(stats.total_bits(), (3 * 2 + 4 * 2 * 2) * 16);
        // Measured account: length workers, nonzero (both workers got S).
        assert_eq!(stats.wire_bytes.len(), 2);
        assert!(stats.wire_bytes.iter().all(|&b| b > 0));
        // 64-bit wire values can only cost more than 16-bit model values.
        assert!(stats.total_wire_bytes() * 8 >= stats.total_bits());
        assert!(metrics.result_wire_bytes > 0);
        assert!(metrics.is_measured());
        workers.shutdown();
    }

    #[test]
    fn raw_payloads_are_rejected_as_protocol_errors() {
        let workers = LocalWorkers::spawn(1).unwrap();
        let config = ClusterConfig::new(workers.addresses().to_vec());
        let mut coordinator = Coordinator::connect(&config, 2, 8).unwrap();
        let err = coordinator
            .run_round(vec![Message::raw(0, "stats", 64)], &join_program())
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }), "{err}");
        drop(coordinator);
        workers.shutdown();
    }

    #[test]
    fn connecting_to_a_dead_address_is_an_io_error() {
        // Bind-then-drop guarantees the port is closed.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let config = ClusterConfig::new(vec![dead]);
        let err = Coordinator::connect(&config, 2, 8).unwrap_err();
        assert!(matches!(err, ClusterError::Io { worker: 0, .. }), "{err}");
    }

    #[test]
    fn empty_configs_are_rejected() {
        let err = Coordinator::connect(&ClusterConfig::new(vec![]), 2, 8).unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }));
    }

    #[test]
    fn shutdown_workers_stops_the_processes() {
        let workers = LocalWorkers::spawn(2).unwrap();
        let config = ClusterConfig::new(workers.addresses().to_vec());
        shutdown_workers(&config);
        // The serve loops have exited; shutdown() now just joins threads
        // (its own Shutdown connects fail, which it tolerates).
        workers.shutdown();
    }
}
