//! The real-wire backend: a binary framed protocol, worker processes and a
//! coordinator that together execute MPC rounds over TCP.
//!
//! The in-process [`crate::Cluster`] *simulates* the paper's cost model;
//! this module runs the same round structure on actual sockets so the
//! reported load can be checked against measured bytes on a real wire:
//!
//! * [`codec`] — the frame format: magic `PQW1`, a type byte, a u32
//!   little-endian length prefix, and a payload whose relation fragments
//!   are the flat row buffers shipped verbatim
//!   ([`pq_relation::Relation::write_rows_le`]);
//! * [`worker`] — the worker loop behind `pqd --worker`: accept a
//!   coordinator connection, merge incoming fragments by relation name
//!   (exactly like the simulator's [`crate::Server`]), answer each
//!   `Execute` with the local join of its fragments, and shut down cleanly
//!   on a `Shutdown` frame; [`LocalWorkers`] spawns the same loop on
//!   in-process threads for tests and benchmarks;
//! * [`coordinator`] — the driver: maps the algorithm's `p` *logical*
//!   servers onto the configured workers (`server % workers`), ships each
//!   round's route-plan messages as fragment frames, barriers on every
//!   worker's answer, and merges head fragments. It records both the
//!   model's idealised per-server `received_bits` (identical to the
//!   simulator's, given the same router and seed) and the *measured*
//!   per-worker [`crate::RoundStats::wire_bytes`];
//! * [`pool`] — the resilience layer: a persistent, health-checked
//!   [`WorkerPool`] that keeps Hello'd connections alive across runs,
//!   pings stale sockets (`Ping`/`Pong`), retries failed rounds on a
//!   freshly rebuilt (possibly reduced) topology under a per-query
//!   deadline, and fails fast behind a circuit breaker;
//! * [`retry`] — the scheduling primitives under the pool: capped
//!   exponential backoff with deterministic jitter ([`RetryPolicy`]), the
//!   test-injectable [`Clock`], and the [`Breaker`].
//!
//! Folding several logical servers onto one worker is sound and complete
//! for full conjunctive queries: every fragment is a subset of a genuine
//! input relation, so the union-merged join produces only genuine answers
//! (soundness, with duplicates removed by the coordinator), and every
//! answer tuple's designated logical server maps to *some* worker that
//! therefore holds all of its parts (completeness). The same argument is
//! what lets the pool route retries *around* dead workers: any worker
//! count ≥ 1 computes the exact answer.

pub mod codec;
pub mod coordinator;
pub mod pool;
pub mod retry;
pub mod worker;

pub use codec::{read_frame, write_frame, Frame, FrameError, MAGIC, MAX_FRAME_LEN};
pub use coordinator::{
    shutdown_workers, AtomSpec, ClusterConfig, ClusterError, Coordinator, RoundProgram,
};
pub use pool::{PoolStats, WorkerPool};
pub use retry::{Breaker, BreakerState, Clock, RetryPolicy, SystemClock, TestClock};
pub use worker::{
    serve_worker, serve_worker_observed, serve_worker_pooled, serve_worker_with, LocalWorkers,
    WorkerLimits, WorkerObs,
};
