//! The simulated cluster: `p` servers plus load accounting.

use crate::message::Message;
use crate::metrics::{RoundStats, RunMetrics};
use crate::server::{Server, ServerId};

/// A simulated shared-nothing cluster of `p` servers.
///
/// Algorithms drive the cluster imperatively, mirroring the model's
/// round structure:
///
/// 1. build the round's messages (routing decisions are the algorithm's),
/// 2. call [`Cluster::communicate`] — the synchronisation barrier, which
///    delivers all messages and records each server's received bits,
/// 3. inspect each [`Server`]'s fragments and perform local computation
///    (free in the cost model), possibly producing messages for the next
///    round.
#[derive(Debug, Clone)]
pub struct Cluster {
    servers: Vec<Server>,
    bits_per_value: u64,
    metrics: RunMetrics,
}

impl Cluster {
    /// Create a cluster of `p` servers whose tuples cost `bits_per_value`
    /// bits per value.
    ///
    /// # Panics
    /// Panics when `p == 0`.
    pub fn new(p: usize, bits_per_value: u64) -> Self {
        assert!(p > 0, "a cluster needs at least one server");
        Cluster {
            servers: (0..p).map(Server::new).collect(),
            bits_per_value,
            metrics: RunMetrics::default(),
        }
    }

    /// Number of servers `p`.
    pub fn p(&self) -> usize {
        self.servers.len()
    }

    /// Bits charged per value.
    pub fn bits_per_value(&self) -> u64 {
        self.bits_per_value
    }

    /// Record the total input size `|I|` in bits (used for the replication
    /// rate of the final metrics).
    pub fn set_input_bits(&mut self, bits: u64) {
        self.metrics.input_bits = bits;
    }

    /// Execute one communication round: deliver every message, record the
    /// bits received per server, and return the round's statistics.
    ///
    /// # Panics
    /// Panics when a message is addressed to a non-existent server.
    pub fn communicate(&mut self, messages: Vec<Message>) -> &RoundStats {
        let p = self.p();
        let mut received = vec![0u64; p];
        let count = messages.len();
        for msg in messages {
            assert!(
                msg.to < p,
                "message addressed to server {} but the cluster has only {p} servers",
                msg.to
            );
            received[msg.to] += msg.payload.size_bits(self.bits_per_value);
            self.servers[msg.to].receive(msg.payload);
        }
        let round = self.metrics.rounds.len() + 1;
        self.metrics
            .rounds
            .push(RoundStats::simulated(round, received, count));
        self.metrics.rounds.last().expect("just pushed")
    }

    /// The servers, in id order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// A specific server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id]
    }

    /// Mutable access to a server (e.g. to pre-load the partitioned input,
    /// which is *not* charged as communication).
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        &mut self.servers[id]
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the cluster, returning its metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Reset all servers and metrics, keeping `p` and the value width.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.clear();
        }
        self.metrics = RunMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{broadcast_relation, Message};
    use pq_relation::{Relation, Schema};

    fn rel(name: &str, rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, &["x", "y"]), rows)
    }

    #[test]
    fn single_round_accounting() {
        let mut cluster = Cluster::new(4, 10);
        cluster.set_input_bits(1000);
        let msgs = vec![
            Message::tuples(0, rel("R", vec![vec![1, 2], vec![3, 4]])), // 40 bits
            Message::tuples(1, rel("R", vec![vec![5, 6]])),             // 20 bits
            Message::raw(0, "stats", 5),
        ];
        let stats = cluster.communicate(msgs);
        assert_eq!(stats.round, 1);
        assert_eq!(stats.received_bits, vec![45, 20, 0, 0]);
        assert_eq!(stats.messages, 3);
        assert_eq!(cluster.metrics().max_load(), 45);
        assert_eq!(cluster.metrics().num_rounds(), 1);
        assert_eq!(cluster.server(0).stored_tuples(), 2);
        assert_eq!(cluster.server(1).stored_tuples(), 1);
        assert_eq!(cluster.server(2).stored_tuples(), 0);
    }

    #[test]
    fn multiple_rounds_accumulate() {
        let mut cluster = Cluster::new(2, 8);
        cluster.communicate(vec![Message::tuples(0, rel("R", vec![vec![1, 2]]))]);
        cluster.communicate(vec![Message::tuples(1, rel("S", vec![vec![1, 2], vec![3, 4]]))]);
        assert_eq!(cluster.metrics().num_rounds(), 2);
        assert_eq!(cluster.metrics().per_round_max_loads(), vec![16, 32]);
        assert_eq!(cluster.metrics().max_load(), 32);
        // Fragments persist across rounds.
        assert_eq!(cluster.server(0).stored_tuples(), 1);
        assert_eq!(cluster.server(1).stored_tuples(), 2);
    }

    #[test]
    fn broadcast_charges_every_server() {
        let mut cluster = Cluster::new(3, 4);
        let r = rel("R", vec![vec![1, 2]]);
        cluster.communicate(broadcast_relation(&r, 3));
        let stats = &cluster.metrics().rounds[0];
        assert_eq!(stats.received_bits, vec![8, 8, 8]);
    }

    #[test]
    fn replication_rate_uses_input_bits() {
        let mut cluster = Cluster::new(2, 10);
        cluster.set_input_bits(100);
        cluster.communicate(vec![
            Message::tuples(0, rel("R", vec![vec![1, 2]])),
            Message::tuples(1, rel("R", vec![vec![1, 2]])),
        ]);
        assert!((cluster.metrics().replication_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "only 2 servers")]
    fn addressing_a_missing_server_panics() {
        let mut cluster = Cluster::new(2, 8);
        cluster.communicate(vec![Message::raw(5, "x", 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_cluster_is_rejected() {
        Cluster::new(0, 8);
    }

    #[test]
    fn reset_clears_servers_and_metrics() {
        let mut cluster = Cluster::new(2, 8);
        cluster.communicate(vec![Message::tuples(0, rel("R", vec![vec![1, 2]]))]);
        cluster.reset();
        assert_eq!(cluster.metrics().num_rounds(), 0);
        assert_eq!(cluster.server(0).stored_tuples(), 0);
    }

    #[test]
    fn preloading_via_server_mut_is_not_charged() {
        let mut cluster = Cluster::new(2, 8);
        cluster
            .server_mut(0)
            .receive(crate::message::Payload::Tuples(rel("R", vec![vec![1, 2]])));
        assert_eq!(cluster.metrics().num_rounds(), 0);
        assert_eq!(cluster.metrics().max_load(), 0);
        assert_eq!(cluster.server(0).stored_tuples(), 1);
    }
}
