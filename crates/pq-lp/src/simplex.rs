//! Dense two-phase primal simplex.
//!
//! The solver converts the program to standard form
//! `min c'x  s.t.  Ax = b, x >= 0, b >= 0` by adding slack/surplus variables,
//! runs phase one (minimising the sum of artificial variables) to find a
//! basic feasible solution, and then runs phase two on the original
//! objective. Bland's rule is used once the iteration count grows, which
//! guarantees termination even on degenerate problems.

use crate::{problem::ConstraintOp, LinearProgram, LpError, Objective, Solution, SolveStatus};

/// Options controlling the simplex solve.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Feasibility / pivot tolerance.
    pub tolerance: f64,
    /// Hard cap on pivot iterations per phase.
    pub max_iterations: usize,
    /// After this many iterations the pivot rule switches from Dantzig
    /// (most-negative reduced cost) to Bland's rule to guarantee termination.
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: crate::DEFAULT_TOLERANCE,
            max_iterations: 10_000,
            bland_after: 1_000,
        }
    }
}

/// Internal tableau representation.
struct Tableau {
    /// `rows x (cols + 1)` matrix; last column is the RHS.
    data: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `cols + 1`; last entry is the
    /// negated objective value.
    objective: Vec<f64>,
    /// Basis: for each row, the index of its basic column.
    basis: Vec<usize>,
    cols: usize,
    /// Columns `>= entering_limit` are never chosen as entering columns
    /// (used to keep artificial variables out of the phase-two basis).
    entering_limit: usize,
}

impl Tableau {
    fn rows(&self) -> usize {
        self.data.len()
    }

    /// One pivot step. Returns Ok(true) if the tableau is optimal, Ok(false)
    /// if a pivot was performed.
    fn pivot_step(&mut self, tol: f64, bland: bool) -> Result<bool, LpError> {
        // Choose entering column.
        let limit = self.entering_limit.min(self.cols);
        let entering = if bland {
            (0..limit).find(|&j| self.objective[j] < -tol)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..limit {
                let c = self.objective[j];
                if c < -tol && best.map_or(true, |(_, bc)| c < bc) {
                    best = Some((j, c));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(col) = entering else {
            return Ok(true);
        };

        // Ratio test for the leaving row.
        let mut leaving: Option<(usize, f64)> = None;
        for i in 0..self.rows() {
            let a = self.data[i][col];
            if a > tol {
                let ratio = self.data[i][self.cols] / a;
                let better = match leaving {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - tol
                            || ((ratio - lr).abs() <= tol && self.basis[i] < self.basis[li])
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((row, _)) = leaving else {
            return Err(LpError::Unbounded);
        };

        self.pivot(row, col);
        Ok(false)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.data[row][col];
        debug_assert!(pivot.abs() > 0.0);
        for v in self.data[row].iter_mut() {
            *v /= pivot;
        }
        for i in 0..self.rows() {
            if i == row {
                continue;
            }
            let factor = self.data[i][col];
            if factor != 0.0 {
                for j in 0..=self.cols {
                    self.data[i][j] -= factor * self.data[row][j];
                }
            }
        }
        let factor = self.objective[col];
        if factor != 0.0 {
            for j in 0..=self.cols {
                self.objective[j] -= factor * self.data[row][j];
            }
        }
        self.basis[row] = col;
    }

    fn run(&mut self, options: &SimplexOptions) -> Result<(), LpError> {
        for iter in 0..options.max_iterations {
            let bland = iter >= options.bland_after;
            if self.pivot_step(options.tolerance, bland)? {
                return Ok(());
            }
        }
        Err(LpError::IterationLimit {
            limit: options.max_iterations,
        })
    }
}

/// Solve a [`LinearProgram`] with the two-phase simplex method.
pub fn solve(lp: &LinearProgram, options: &SimplexOptions) -> Result<Solution, LpError> {
    lp.validate()?;
    let tol = options.tolerance;
    let n = lp.num_variables();
    let m = lp.num_constraints();

    // Standard-form columns: original variables, then one slack/surplus per
    // inequality, then one artificial per row that needs one.
    let mut num_slack = 0usize;
    for c in lp.constraints() {
        if matches!(c.op, ConstraintOp::Le | ConstraintOp::Ge) {
            num_slack += 1;
        }
    }

    let total_structural = n + num_slack;
    // Build rows with b >= 0.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut slack_signs: Vec<Option<(usize, f64)>> = Vec::with_capacity(m); // (slack index, sign)
    let mut slack_counter = 0usize;
    for c in lp.constraints() {
        let mut row = lp.dense_row(c);
        row.resize(total_structural, 0.0);
        let mut b = c.rhs;
        let mut sign = 1.0;
        if b < 0.0 {
            for v in row.iter_mut() {
                *v = -*v;
            }
            b = -b;
            sign = -1.0;
        }
        let slack = match c.op {
            ConstraintOp::Le => {
                let idx = n + slack_counter;
                slack_counter += 1;
                Some((idx, sign))
            }
            ConstraintOp::Ge => {
                let idx = n + slack_counter;
                slack_counter += 1;
                Some((idx, -sign))
            }
            ConstraintOp::Eq => None,
        };
        if let Some((idx, s)) = slack {
            row[idx] = s;
        }
        rows.push(row);
        rhs.push(b);
        slack_signs.push(slack);
    }

    // Decide which rows need artificial variables: rows whose slack cannot
    // serve as an initial basic variable (i.e. equality rows or rows whose
    // slack has coefficient -1).
    let mut artificial_of_row: Vec<Option<usize>> = vec![None; m];
    let mut num_artificial = 0usize;
    for (i, slack) in slack_signs.iter().enumerate() {
        let needs_artificial = !matches!(slack, Some((_, s)) if *s > 0.0);
        if needs_artificial {
            artificial_of_row[i] = Some(total_structural + num_artificial);
            num_artificial += 1;
        }
    }
    let total_cols = total_structural + num_artificial;

    let mut data: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    for i in 0..m {
        let mut row = rows[i].clone();
        row.resize(total_cols, 0.0);
        row.push(rhs[i]);
        if let Some(a) = artificial_of_row[i] {
            row[a] = 1.0;
            basis.push(a);
        } else {
            let (idx, _) = slack_signs[i].expect("row without artificial has a +1 slack");
            basis.push(idx);
        }
        data.push(row);
    }

    // ----- Phase one -----
    if num_artificial > 0 {
        // Objective: minimise sum of artificials. Reduced costs start as
        // c_j - sum over basic rows.
        let mut objective = vec![0.0; total_cols + 1];
        objective[total_structural..total_cols].fill(1.0);
        // Price out the artificial basics.
        for (i, &b) in basis.iter().enumerate() {
            if b >= total_structural {
                for j in 0..=total_cols {
                    objective[j] -= data[i][j];
                }
            }
        }
        let mut tableau = Tableau {
            data,
            objective,
            basis,
            cols: total_cols,
            entering_limit: total_cols,
        };
        tableau.run(options)?;
        let phase1_value = -tableau.objective[total_cols];
        if phase1_value > tol.max(1e-7) {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables still in the basis out of it.
        for i in 0..tableau.rows() {
            if tableau.basis[i] >= total_structural {
                let col = (0..total_structural)
                    .find(|&j| tableau.data[i][j].abs() > tol)
                    .unwrap_or(tableau.basis[i]);
                if col < total_structural {
                    tableau.pivot(i, col);
                }
            }
        }
        data = tableau.data;
        basis = tableau.basis;
    }

    // ----- Phase two -----
    // Objective in minimisation form.
    let mut cost = vec![0.0; total_cols];
    let sense = match lp.direction() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    for (j, &c) in lp.objective_coefficients().iter().enumerate() {
        cost[j] = sense * c;
    }
    let mut objective = vec![0.0; total_cols + 1];
    objective[..total_cols].copy_from_slice(&cost);
    // Price out the current basis.
    for (i, &b) in basis.iter().enumerate() {
        let cb = cost[b];
        if cb != 0.0 {
            for j in 0..=total_cols {
                objective[j] -= cb * data[i][j];
            }
        }
    }
    let mut tableau = Tableau {
        data,
        objective,
        basis,
        cols: total_cols,
        entering_limit: total_structural,
    };
    tableau.run(options)?;

    // Extract the solution.
    let mut values = vec![0.0; n];
    for (i, &b) in tableau.basis.iter().enumerate() {
        if b < n {
            values[b] = tableau.data[i][total_cols].max(0.0);
        }
    }
    let min_objective = -tableau.objective[total_cols];
    let objective_value = sense * min_objective;
    Ok(Solution {
        status: SolveStatus::Optimal,
        objective: objective_value,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintOp, LinearProgram, Objective};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_le_constraints() {
        // max 3x + 2y; x + y <= 4; x + 3y <= 6  => x=4, y=0, obj=12
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 12.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn minimization_with_ge_constraints_needs_phase_one() {
        // min 2x + 3y; x + y >= 4; x >= 1  =>  x=4, y=0, obj=8
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 8.0);
        assert_close(sol.value(x), 4.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y; x + 2y = 4; 3x + 2y = 8  =>  x=2, y=1, obj=3
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Eq, 8.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn detects_infeasible_program() {
        // x <= 1 and x >= 3 cannot both hold.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded_program() {
        // max x with only x >= 0.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // min x  s.t. -x <= -2   (i.e. x >= 2)
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn fractional_vertex_cover_of_triangle() {
        // The fractional vertex cover LP for the triangle query C3:
        // min v1+v2+v3 s.t. each edge covered: v1+v2>=1, v2+v3>=1, v3+v1>=1.
        // Optimum is 3/2 at v = (1/2, 1/2, 1/2).
        let mut lp = LinearProgram::new(Objective::Minimize);
        let v: Vec<_> = (0..3).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for &vi in &v {
            lp.set_objective_coefficient(vi, 1.0);
        }
        lp.add_constraint(vec![(v[0], 1.0), (v[1], 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(vec![(v[1], 1.0), (v[2], 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(vec![(v[2], 1.0), (v[0], 1.0)], ConstraintOp::Ge, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.5);
    }

    #[test]
    fn fractional_edge_packing_of_triangle() {
        // max u1+u2+u3 s.t. at each vertex the incident edges sum to <= 1.
        // Optimum is 3/2.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let u: Vec<_> = (0..3).map(|i| lp.add_variable(format!("u{i}"))).collect();
        for &ui in &u {
            lp.set_objective_coefficient(ui, 1.0);
        }
        lp.add_constraint(vec![(u[0], 1.0), (u[1], 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(u[1], 1.0), (u[2], 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(u[2], 1.0), (u[0], 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's rule must kick in if needed.
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x1 = lp.add_variable("x1");
        let x2 = lp.add_variable("x2");
        let x3 = lp.add_variable("x3");
        lp.set_objective_coefficient(x1, 10.0);
        lp.set_objective_coefficient(x2, -57.0);
        lp.set_objective_coefficient(x3, -9.0);
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -5.5), (x3, -2.5)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -1.5), (x3, -0.5)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(vec![(x1, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn zero_constraint_program_with_zero_objective() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let _x = lp.add_variable("x");
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn share_exponent_lp_for_triangle() {
        // The LP of Eq. (10) for the triangle query with equal relation
        // sizes (mu_j = mu for all j). Using mu = 1 (sizes measured in units
        // of p): minimise lambda s.t. e1+e2+e3 <= 1, and for each atom the
        // incident exponents + lambda >= 1. Optimal lambda = 1 - 1/tau* = 1/3
        // with e_i = 1/3.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let lambda = lp.add_variable("lambda");
        let e: Vec<_> = (0..3).map(|i| lp.add_variable(format!("e{i}"))).collect();
        lp.set_objective_coefficient(lambda, 1.0);
        lp.add_constraint(
            vec![(e[0], -1.0), (e[1], -1.0), (e[2], -1.0)],
            ConstraintOp::Ge,
            -1.0,
        );
        // Atoms: S1(x1,x2), S2(x2,x3), S3(x3,x1)
        lp.add_constraint(
            vec![(e[0], 1.0), (e[1], 1.0), (lambda, 1.0)],
            ConstraintOp::Ge,
            1.0,
        );
        lp.add_constraint(
            vec![(e[1], 1.0), (e[2], 1.0), (lambda, 1.0)],
            ConstraintOp::Ge,
            1.0,
        );
        lp.add_constraint(
            vec![(e[2], 1.0), (e[0], 1.0), (lambda, 1.0)],
            ConstraintOp::Ge,
            1.0,
        );
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.0 / 3.0);
    }
}
