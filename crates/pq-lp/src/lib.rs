//! A small, dependency-free linear-programming toolkit.
//!
//! This crate provides the numeric substrate used throughout the
//! parallel-query workspace:
//!
//! * a **builder API** for linear programs over named variables
//!   ([`LinearProgram`]),
//! * a **dense two-phase simplex solver** ([`solve`], [`simplex`]) robust
//!   enough for the small share-exponent LPs (Eq. 10/18 of the paper) and the
//!   fractional edge-packing / vertex-cover LPs,
//! * a **polytope vertex enumerator** ([`polytope`]) used to enumerate the
//!   extreme points `pk(q)` of the fractional edge-packing polytope, over
//!   which the paper's lower bound `L_lower = max_u L(u, M, p)` is taken,
//! * small dense **linear-algebra helpers** ([`linalg`]).
//!
//! The solver works in `f64` with explicit tolerances; the LPs arising from
//! conjunctive queries are tiny (tens of variables), well-scaled, and have
//! rational optima with small denominators, so double precision with a
//! `1e-9` feasibility tolerance is ample.
//!
//! # Example
//!
//! Maximise `x + y` subject to `x + 2y <= 4`, `3x + y <= 6`:
//!
//! ```
//! use pq_lp::{LinearProgram, Objective, ConstraintOp};
//!
//! let mut lp = LinearProgram::new(Objective::Maximize);
//! let x = lp.add_variable("x");
//! let y = lp.add_variable("y");
//! lp.set_objective_coefficient(x, 1.0);
//! lp.set_objective_coefficient(y, 1.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(vec![(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 2.8).abs() < 1e-7);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod linalg;
pub mod polytope;
pub mod problem;
pub mod simplex;
pub mod solution;

pub use error::LpError;
pub use polytope::{enumerate_vertices, Polytope};
pub use problem::{ConstraintOp, LinearProgram, Objective, VariableId};
pub use simplex::{solve, SimplexOptions};
pub use solution::{Solution, SolveStatus};

/// Default feasibility / optimality tolerance used throughout the crate.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;
