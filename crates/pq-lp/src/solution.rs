//! Solution types returned by the simplex solver.

use crate::problem::VariableId;
use serde::{Deserialize, Serialize};

/// Status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// An optimal solution of a [`crate::LinearProgram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Solve status (always [`SolveStatus::Optimal`]; infeasible/unbounded
    /// problems are reported as errors instead).
    pub status: SolveStatus,
    /// The optimal objective value, in the direction the program requested.
    pub objective: f64,
    /// Optimal values of the variables, in declaration order.
    pub values: Vec<f64>,
}

impl Solution {
    /// The optimal value of a specific variable.
    pub fn value(&self, var: VariableId) -> f64 {
        self.values[var.index()]
    }

    /// Returns the values rounded to the nearest multiple of `1/denominator`,
    /// which is convenient for comparing against the small-denominator
    /// rational optima of edge-packing LPs (e.g. `1/2` for the triangle
    /// query).
    pub fn values_rounded(&self, denominator: u64) -> Vec<f64> {
        let d = denominator as f64;
        self.values.iter().map(|v| (v * d).round() / d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessor_uses_declaration_order() {
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 1.5,
            values: vec![0.5, 1.0],
        };
        assert_eq!(sol.value(VariableId(0)), 0.5);
        assert_eq!(sol.value(VariableId(1)), 1.0);
    }

    #[test]
    fn rounding_snaps_to_rational_grid() {
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 1.5,
            values: vec![0.4999999999, 0.3333333334],
        };
        assert_eq!(sol.values_rounded(2), vec![0.5, 0.5]);
        assert_eq!(sol.values_rounded(3), vec![1.0 / 3.0 * 2.0 / 2.0, 1.0 / 3.0]);
    }
}
