//! Enumeration of the vertices (extreme points) of a polytope
//! `{ x >= 0 : A x <= b }`.
//!
//! The paper's one-round lower bound `L_lower` is the maximum of
//! `L(u, M, p)` over the vertices `pk(q)` of the fractional edge-packing
//! polytope (Section 3.3, Theorem 3.15). Since `L(u, M, p)` is not linear in
//! `u`, the maximum must be taken over all polytope vertices rather than by
//! solving a single LP. Query hypergraphs are tiny (a handful of atoms), so
//! exhaustive enumeration of basic feasible solutions is entirely adequate:
//! for `d` variables and `m` inequality rows we consider every choice of `d`
//! tight constraints among the `m + d` available (rows plus non-negativity),
//! solve the resulting square system, and keep the feasible, de-duplicated
//! solutions.

use crate::linalg;

/// A polytope `{ x >= 0 : A x <= b }` in dense representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Polytope {
    /// Constraint matrix rows.
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides, one per row.
    pub b: Vec<f64>,
    /// Dimension (number of variables).
    pub dim: usize,
}

impl Polytope {
    /// Create a polytope from rows `a` and right-hand sides `b`.
    ///
    /// # Panics
    /// Panics when row lengths are inconsistent or `a.len() != b.len()`.
    pub fn new(a: Vec<Vec<f64>>, b: Vec<f64>, dim: usize) -> Self {
        assert_eq!(a.len(), b.len(), "one rhs per row required");
        for row in &a {
            assert_eq!(row.len(), dim, "row length must equal dimension");
        }
        Polytope { a, b, dim }
    }

    /// Check whether `x` satisfies all constraints within `tol`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.dim {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.a
            .iter()
            .zip(self.b.iter())
            .all(|(row, &rhs)| linalg::dot(row, x) <= rhs + tol)
    }

    /// Enumerate the vertices of the polytope. See [`enumerate_vertices`].
    pub fn vertices(&self, tol: f64) -> Vec<Vec<f64>> {
        enumerate_vertices(self, tol)
    }
}

/// Enumerate all vertices of `poly` (within tolerance `tol`).
///
/// The origin is always a vertex of the edge-packing polytope (all-zero
/// packing); it is included when feasible like any other basic solution.
pub fn enumerate_vertices(poly: &Polytope, tol: f64) -> Vec<Vec<f64>> {
    let d = poly.dim;
    if d == 0 {
        return vec![vec![]];
    }
    // Build the full constraint list: rows of A (as <= b) plus the
    // non-negativity constraints -x_i <= 0.
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(poly.a.len() + d);
    for (row, &rhs) in poly.a.iter().zip(poly.b.iter()) {
        rows.push((row.clone(), rhs));
    }
    for i in 0..d {
        let mut row = vec![0.0; d];
        row[i] = -1.0;
        rows.push((row, 0.0));
    }

    let mut vertices: Vec<Vec<f64>> = Vec::new();
    let total = rows.len();
    let mut combo: Vec<usize> = (0..d).collect();

    // Iterate over all d-subsets of the constraint indices in lexicographic
    // order.
    loop {
        let a: Vec<Vec<f64>> = combo.iter().map(|&i| rows[i].0.clone()).collect();
        let b: Vec<f64> = combo.iter().map(|&i| rows[i].1).collect();
        if let Ok(x) = linalg::solve_square(&a, &b, tol) {
            if poly.contains(&x, 1e-6) {
                let snapped: Vec<f64> = x.iter().map(|&v| if v.abs() < 1e-9 { 0.0 } else { v }).collect();
                if !vertices.iter().any(|v| linalg::approx_eq(v, &snapped, 1e-6)) {
                    vertices.push(snapped);
                }
            }
        }
        // Advance to the next combination.
        let mut i = d;
        loop {
            if i == 0 {
                return vertices;
            }
            i -= 1;
            if combo[i] != i + total - d {
                combo[i] += 1;
                for j in i + 1..d {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_vertices(mut vs: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        vs.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.partial_cmp(y).unwrap())
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        vs
    }

    #[test]
    fn unit_square_has_four_vertices() {
        // x <= 1, y <= 1, x,y >= 0
        let poly = Polytope::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![1.0, 1.0], 2);
        let vs = sort_vertices(poly.vertices(1e-9));
        assert_eq!(vs.len(), 4);
        assert_eq!(
            vs,
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0]
            ]
        );
    }

    #[test]
    fn simplex_triangle_has_three_vertices() {
        // x + y <= 1, x,y >= 0
        let poly = Polytope::new(vec![vec![1.0, 1.0]], vec![1.0], 2);
        let vs = sort_vertices(poly.vertices(1e-9));
        assert_eq!(vs.len(), 3);
        assert_eq!(vs, vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn triangle_query_packing_polytope_has_five_vertices() {
        // Edge-packing polytope of C3 = S1(x1,x2), S2(x2,x3), S3(x3,x1):
        // u1+u2 <= 1 (at x2), u2+u3 <= 1 (at x3), u3+u1 <= 1 (at x1).
        // Example 3.17 of the paper: five vertices,
        // (1/2,1/2,1/2), (1,0,0), (0,1,0), (0,0,1), (0,0,0).
        let poly = Polytope::new(
            vec![
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0],
            ],
            vec![1.0, 1.0, 1.0],
            3,
        );
        let vs = poly.vertices(1e-9);
        assert_eq!(vs.len(), 5);
        assert!(vs.iter().any(|v| linalg::approx_eq(v, &[0.5, 0.5, 0.5], 1e-6)));
        assert!(vs.iter().any(|v| linalg::approx_eq(v, &[1.0, 0.0, 0.0], 1e-6)));
        assert!(vs.iter().any(|v| linalg::approx_eq(v, &[0.0, 1.0, 0.0], 1e-6)));
        assert!(vs.iter().any(|v| linalg::approx_eq(v, &[0.0, 0.0, 1.0], 1e-6)));
        assert!(vs.iter().any(|v| linalg::approx_eq(v, &[0.0, 0.0, 0.0], 1e-6)));
    }

    #[test]
    fn contains_rejects_negative_coordinates() {
        let poly = Polytope::new(vec![vec![1.0]], vec![1.0], 1);
        assert!(poly.contains(&[0.5], 1e-9));
        assert!(!poly.contains(&[-0.5], 1e-9));
        assert!(!poly.contains(&[1.5], 1e-9));
        assert!(!poly.contains(&[0.5, 0.5], 1e-9));
    }

    #[test]
    fn zero_dimensional_polytope() {
        let poly = Polytope::new(vec![], vec![], 0);
        assert_eq!(poly.vertices(1e-9), vec![Vec::<f64>::new()]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn new_panics_on_inconsistent_rows() {
        Polytope::new(vec![vec![1.0, 2.0]], vec![1.0], 1);
    }
}
