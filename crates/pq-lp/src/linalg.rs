//! Small dense linear-algebra helpers used by the simplex solver and the
//! polytope vertex enumerator.
//!
//! All matrices are row-major `Vec<Vec<f64>>`; the systems arising from
//! query hypergraphs are tiny (at most a few dozen rows), so simplicity and
//! predictability win over cache tricks.

use crate::LpError;

/// Solve the square linear system `A x = b` by Gaussian elimination with
/// partial pivoting.
///
/// Returns `Err(LpError::SingularSystem)` when the matrix is (numerically)
/// singular with respect to `tol`.
pub fn solve_square(a: &[Vec<f64>], b: &[f64], tol: f64) -> Result<Vec<f64>, LpError> {
    let n = a.len();
    assert_eq!(b.len(), n, "dimension mismatch between matrix and rhs");
    for row in a {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    // Augmented matrix.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b.iter())
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivoting: pick the row with the largest absolute value.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() <= tol {
            return Err(LpError::SingularSystem);
        }
        m.swap(col, pivot_row);
        let pivot = m[col][col];
        let pivot_vals: Vec<f64> = m[col][col..=n].to_vec();
        for (row, row_vals) in m.iter_mut().enumerate() {
            if row == col {
                continue;
            }
            let factor = row_vals[col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (dst, src) in row_vals[col..=n].iter_mut().zip(&pivot_vals) {
                *dst -= factor * src;
            }
        }
    }
    Ok((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Compute the rank of a (not necessarily square) matrix via Gaussian
/// elimination with partial pivoting.
pub fn rank(a: &[Vec<f64>], tol: f64) -> usize {
    if a.is_empty() {
        return 0;
    }
    let rows = a.len();
    let cols = a[0].len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut r = 0usize;
    for col in 0..cols {
        if r >= rows {
            break;
        }
        let pivot_row = (r..rows)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() <= tol {
            continue;
        }
        m.swap(r, pivot_row);
        let pivot = m[r][col];
        let pivot_vals: Vec<f64> = m[r][col..].to_vec();
        for (row, row_vals) in m.iter_mut().enumerate() {
            if row == r {
                continue;
            }
            let factor = row_vals[col] / pivot;
            if factor != 0.0 {
                for (dst, src) in row_vals[col..].iter_mut().zip(&pivot_vals) {
                    *dst -= factor * src;
                }
            }
        }
        r += 1;
    }
    r
}

/// Compute the dot product of two equally-sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Return `true` when two vectors are component-wise equal within `tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity_system() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let b = vec![3.0, -2.0];
        let x = solve_square(&a, &b, 1e-12).unwrap();
        assert!(approx_eq(&x, &[3.0, -2.0], 1e-12));
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5, x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let b = vec![5.0, 1.0];
        let x = solve_square(&a, &b, 1e-12).unwrap();
        assert!(approx_eq(&x, &[2.0, 1.0], 1e-9));
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // First pivot would be zero without row swaps.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![7.0, 4.0];
        let x = solve_square(&a, &b, 1e-12).unwrap();
        assert!(approx_eq(&x, &[4.0, 7.0], 1e-9));
    }

    #[test]
    fn detects_singular_system() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert_eq!(solve_square(&a, &b, 1e-12), Err(LpError::SingularSystem));
    }

    #[test]
    fn rank_of_full_rank_matrix() {
        let a = vec![vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 1.0]];
        assert_eq!(rank(&a, 1e-9), 2);
    }

    #[test]
    fn rank_of_deficient_matrix() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        assert_eq!(rank(&a, 1e-9), 1);
    }

    #[test]
    fn rank_of_empty_matrix() {
        let a: Vec<Vec<f64>> = vec![];
        assert_eq!(rank(&a, 1e-9), 0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-9));
    }

    #[test]
    fn solves_three_by_three() {
        let a = vec![
            vec![1.0, 1.0, 1.0],
            vec![0.0, 2.0, 5.0],
            vec![2.0, 5.0, -1.0],
        ];
        let b = vec![6.0, -4.0, 27.0];
        let x = solve_square(&a, &b, 1e-12).unwrap();
        assert!(approx_eq(&x, &[5.0, 3.0, -2.0], 1e-8));
    }
}
