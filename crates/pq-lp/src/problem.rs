//! Builder API for linear programs over named, non-negative variables.
//!
//! The LPs in this workspace (share exponents, fractional edge packings,
//! fractional vertex covers) all have non-negative variables, so the builder
//! fixes the lower bound of every variable at zero; upper bounds can be
//! expressed as ordinary `<=` constraints.

use crate::{simplex, LpError, Solution};
use serde::{Deserialize, Serialize};

/// Identifier of a variable inside a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VariableId(pub(crate) usize);

impl VariableId {
    /// The index of the variable in the order of declaration.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// A single linear constraint `sum coeff_i * x_i  op  rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse list of `(variable, coefficient)` pairs.
    pub terms: Vec<(VariableId, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearProgram {
    direction: Objective,
    variable_names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Create an empty program with the given optimisation direction.
    pub fn new(direction: Objective) -> Self {
        LinearProgram {
            direction,
            variable_names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Declare a new non-negative variable and return its id.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VariableId {
        self.variable_names.push(name.into());
        self.objective.push(0.0);
        VariableId(self.variable_names.len() - 1)
    }

    /// Number of declared variables.
    pub fn num_variables(&self) -> usize {
        self.variable_names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn variable_name(&self, id: VariableId) -> &str {
        &self.variable_names[id.0]
    }

    /// Optimisation direction.
    pub fn direction(&self) -> Objective {
        self.direction
    }

    /// Set the coefficient of `var` in the objective function.
    pub fn set_objective_coefficient(&mut self, var: VariableId, coeff: f64) {
        self.objective[var.0] = coeff;
    }

    /// The dense objective-coefficient vector.
    pub fn objective_coefficients(&self) -> &[f64] {
        &self.objective
    }

    /// Add a constraint from sparse `(variable, coefficient)` terms.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VariableId, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        self.constraints.push(Constraint { terms, op, rhs });
        self.constraints.len() - 1
    }

    /// The list of constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Validate that every referenced variable exists and every coefficient
    /// is finite.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::InvalidCoefficient {
                    location: format!("objective coefficient of variable {i}"),
                });
            }
        }
        for (ci, constraint) in self.constraints.iter().enumerate() {
            if !constraint.rhs.is_finite() {
                return Err(LpError::InvalidCoefficient {
                    location: format!("rhs of constraint {ci}"),
                });
            }
            for &(var, coeff) in &constraint.terms {
                if var.0 >= self.num_variables() {
                    return Err(LpError::UnknownVariable {
                        index: var.0,
                        declared: self.num_variables(),
                    });
                }
                if !coeff.is_finite() {
                    return Err(LpError::InvalidCoefficient {
                        location: format!("constraint {ci}, variable {}", var.0),
                    });
                }
            }
        }
        Ok(())
    }

    /// Build the dense constraint matrix row for a constraint.
    pub(crate) fn dense_row(&self, constraint: &Constraint) -> Vec<f64> {
        let mut row = vec![0.0; self.num_variables()];
        for &(var, coeff) in &constraint.terms {
            row[var.0] += coeff;
        }
        row
    }

    /// Solve the program with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self, &simplex::SimplexOptions::default())
    }

    /// Solve the program with explicit options.
    pub fn solve_with(&self, options: &simplex::SimplexOptions) -> Result<Solution, LpError> {
        simplex::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_variables_and_constraints() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.variable_name(x), "x");
        assert_eq!(lp.variable_name(y), "y");
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);

        lp.set_objective_coefficient(x, 2.0);
        assert_eq!(lp.objective_coefficients(), &[2.0, 0.0]);

        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.constraints()[0].rhs, 10.0);
    }

    #[test]
    fn dense_row_accumulates_duplicate_terms() {
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        let idx = lp.add_constraint(vec![(x, 1.0), (x, 2.0), (y, -1.0)], ConstraintOp::Eq, 0.0);
        let row = lp.dense_row(&lp.constraints()[idx]);
        assert_eq!(row, vec![3.0, -1.0]);
    }

    #[test]
    fn validate_rejects_unknown_variable() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let _x = lp.add_variable("x");
        lp.add_constraint(vec![(VariableId(5), 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(
            lp.validate(),
            Err(LpError::UnknownVariable { index: 5, .. })
        ));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, f64::NAN);
        assert!(matches!(
            lp.validate(),
            Err(LpError::InvalidCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_infinite_rhs() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, f64::INFINITY);
        assert!(matches!(
            lp.validate(),
            Err(LpError::InvalidCoefficient { .. })
        ));
    }

    #[test]
    fn validate_accepts_well_formed_program() {
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 5.0);
        assert!(lp.validate().is_ok());
    }
}
