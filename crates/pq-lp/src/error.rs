//! Error types for the LP solver.

use std::fmt;

/// Errors that can arise when building or solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// A variable id referenced in a constraint or objective does not exist.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// The number of variables actually declared.
        declared: usize,
    },
    /// The simplex iteration limit was exceeded (indicates numerical cycling).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The problem contains a malformed constraint (e.g. NaN coefficients).
    InvalidCoefficient {
        /// Human-readable description of the offending location.
        location: String,
    },
    /// A singular linear system was encountered where a unique solution was
    /// required (vertex enumeration).
    SingularSystem,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::UnknownVariable { index, declared } => write!(
                f,
                "variable index {index} out of range ({declared} variables declared)"
            ),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LpError::InvalidCoefficient { location } => {
                write!(f, "invalid (non-finite) coefficient in {location}")
            }
            LpError::SingularSystem => write!(f, "singular linear system"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        let e = LpError::UnknownVariable {
            index: 7,
            declared: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = LpError::IterationLimit { limit: 100 };
        assert!(e.to_string().contains("100"));
        let e = LpError::InvalidCoefficient {
            location: "objective".to_string(),
        };
        assert!(e.to_string().contains("objective"));
        assert!(LpError::SingularSystem.to_string().contains("singular"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LpError::Infeasible, LpError::Infeasible);
        assert_ne!(LpError::Infeasible, LpError::Unbounded);
    }
}
