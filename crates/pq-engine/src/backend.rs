//! Execution backend selection: in-process simulator or worker cluster.
//!
//! The engine's algorithms are backend-agnostic — a plan describes *what*
//! to route and join, and an [`ExecBackend`] says *where*: on the
//! in-process MPC simulator (the default, which accounts the paper's cost
//! model exactly), or on real `pqd --worker` processes over TCP through
//! [`pq_mpc::net`], which additionally measures actual bytes on the wire
//! ([`pq_mpc::RoundStats::wire_bytes`]). Both backends return the same
//! answers; the distributed-vs-simulator oracle test suite holds them to
//! that row for row.
//!
//! The cluster variant holds a persistent [`WorkerPool`] — dialled,
//! Hello'd connections kept alive across runs, with health checks, retry
//! and a circuit breaker (see [`pq_mpc::net::pool`]) — plus a
//! [`FallbackPolicy`] deciding what happens when the cluster stays
//! unhealthy past its whole retry budget.

use pq_mpc::net::{ClusterConfig, WorkerPool};

/// What to do when a cluster run fails past its retry budget (or fails
/// fast on an open circuit breaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Surface the [`pq_mpc::net::ClusterError`] to the caller. The
    /// default: distributed measurement workloads want to *know* the
    /// cluster failed, not silently lose their wire numbers.
    #[default]
    Error,
    /// Degrade gracefully: re-run the plan on the in-process simulator
    /// and mark the outcome `degraded = true` in its
    /// [`pq_mpc::RunMetrics`]. The answer is exact either way — only the
    /// measured wire accounting is lost.
    Simulator,
}

impl FallbackPolicy {
    /// Parse a CLI flag value (`error` or `simulator`).
    pub fn parse(text: &str) -> Option<FallbackPolicy> {
        match text {
            "error" => Some(FallbackPolicy::Error),
            "simulator" => Some(FallbackPolicy::Simulator),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    pub fn name(self) -> &'static str {
        match self {
            FallbackPolicy::Error => "error",
            FallbackPolicy::Simulator => "simulator",
        }
    }
}

/// Where a session executes its plans.
#[derive(Debug, Clone, Default)]
pub enum ExecBackend {
    /// The in-process MPC simulator: model-cost accounting, per-server
    /// local joins on OS threads, no sockets.
    #[default]
    Simulator,
    /// A cluster of worker processes reached over TCP through a
    /// persistent connection pool. The pool's config lists the workers'
    /// addresses; the engine maps the plan's `p` logical servers onto
    /// them (`server % workers`) and reports measured per-round wire
    /// bytes next to the model's load accounting.
    Cluster {
        /// The shared connection pool (clones share sockets, breaker and
        /// stats — sessions of one engine reuse the same warm
        /// connections).
        pool: WorkerPool,
        /// What to do when the cluster stays unhealthy past the retry
        /// budget.
        fallback: FallbackPolicy,
    },
}

impl PartialEq for ExecBackend {
    /// Backends compare by *configuration* (addresses, timeouts, policy),
    /// not by pool identity: two backends over the same config are
    /// interchangeable even if their sockets differ.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ExecBackend::Simulator, ExecBackend::Simulator) => true,
            (
                ExecBackend::Cluster { pool: a, fallback: fa },
                ExecBackend::Cluster { pool: b, fallback: fb },
            ) => a.config() == b.config() && fa == fb,
            _ => false,
        }
    }
}

impl ExecBackend {
    /// A cluster backend over the given config with the default
    /// [`FallbackPolicy::Error`].
    pub fn cluster(config: ClusterConfig) -> Self {
        ExecBackend::cluster_with_fallback(config, FallbackPolicy::default())
    }

    /// A cluster backend with an explicit fallback policy.
    pub fn cluster_with_fallback(config: ClusterConfig, fallback: FallbackPolicy) -> Self {
        ExecBackend::Cluster {
            pool: WorkerPool::new(config),
            fallback,
        }
    }

    /// True when plans run on worker processes rather than the simulator.
    pub fn is_cluster(&self) -> bool {
        matches!(self, ExecBackend::Cluster { .. })
    }

    /// The cluster config, when this is a cluster backend.
    pub fn cluster_config(&self) -> Option<&ClusterConfig> {
        match self {
            ExecBackend::Simulator => None,
            ExecBackend::Cluster { pool, .. } => Some(pool.config()),
        }
    }

    /// A short human-readable description ("simulator", or the cluster's
    /// worker count) for shell prompts and EXPLAIN output.
    pub fn describe(&self) -> String {
        match self {
            ExecBackend::Simulator => "simulator".to_string(),
            ExecBackend::Cluster { pool, .. } => {
                format!("cluster({} workers)", pool.config().workers.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describes_itself() {
        assert_eq!(ExecBackend::default(), ExecBackend::Simulator);
        assert_eq!(ExecBackend::Simulator.describe(), "simulator");
        assert!(!ExecBackend::Simulator.is_cluster());
        let cluster = ExecBackend::cluster(ClusterConfig::new(vec![
            "127.0.0.1:1".into(),
            "127.0.0.1:2".into(),
        ]));
        assert!(cluster.is_cluster());
        assert_eq!(cluster.describe(), "cluster(2 workers)");
        assert_eq!(cluster.cluster_config().unwrap().workers.len(), 2);
    }

    #[test]
    fn backends_compare_by_configuration_not_pool_identity() {
        let config = ClusterConfig::new(vec!["127.0.0.1:1".into()]);
        let a = ExecBackend::cluster(config.clone());
        let b = ExecBackend::cluster(config.clone());
        assert_eq!(a, b, "same config, distinct pools: equal");
        let c = ExecBackend::cluster_with_fallback(config.clone(), FallbackPolicy::Simulator);
        assert_ne!(a, c, "fallback policy is part of the identity");
        let d = ExecBackend::cluster(ClusterConfig::new(vec!["127.0.0.1:2".into()]));
        assert_ne!(a, d);
        assert_ne!(a, ExecBackend::Simulator);
    }

    #[test]
    fn fallback_policy_round_trips_through_its_flag_spelling() {
        for policy in [FallbackPolicy::Error, FallbackPolicy::Simulator] {
            assert_eq!(FallbackPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(FallbackPolicy::parse("bogus"), None);
        assert_eq!(FallbackPolicy::default(), FallbackPolicy::Error);
    }
}
