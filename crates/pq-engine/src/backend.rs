//! Execution backend selection: in-process simulator or worker cluster.
//!
//! The engine's algorithms are backend-agnostic — a plan describes *what*
//! to route and join, and an [`ExecBackend`] says *where*: on the
//! in-process MPC simulator (the default, which accounts the paper's cost
//! model exactly), or on real `pqd --worker` processes over TCP through
//! [`pq_mpc::net`], which additionally measures actual bytes on the wire
//! ([`pq_mpc::RoundStats::wire_bytes`]). Both backends return the same
//! answers; the distributed-vs-simulator oracle test suite holds them to
//! that row for row.

use pq_mpc::net::ClusterConfig;
use std::sync::Arc;

/// Where a session executes its plans.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ExecBackend {
    /// The in-process MPC simulator: model-cost accounting, per-server
    /// local joins on OS threads, no sockets.
    #[default]
    Simulator,
    /// A cluster of worker processes reached over TCP. The shared config
    /// lists the workers' addresses; the engine maps the plan's `p`
    /// logical servers onto them (`server % workers`) and reports measured
    /// per-round wire bytes next to the model's load accounting.
    Cluster(Arc<ClusterConfig>),
}

impl ExecBackend {
    /// A cluster backend over the given config.
    pub fn cluster(config: ClusterConfig) -> Self {
        ExecBackend::Cluster(Arc::new(config))
    }

    /// True when plans run on worker processes rather than the simulator.
    pub fn is_cluster(&self) -> bool {
        matches!(self, ExecBackend::Cluster(_))
    }

    /// A short human-readable description ("simulator", or the cluster's
    /// worker count) for shell prompts and EXPLAIN output.
    pub fn describe(&self) -> String {
        match self {
            ExecBackend::Simulator => "simulator".to_string(),
            ExecBackend::Cluster(config) => {
                format!("cluster({} workers)", config.workers.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describes_itself() {
        assert_eq!(ExecBackend::default(), ExecBackend::Simulator);
        assert_eq!(ExecBackend::Simulator.describe(), "simulator");
        assert!(!ExecBackend::Simulator.is_cluster());
        let cluster = ExecBackend::cluster(ClusterConfig::new(vec![
            "127.0.0.1:1".into(),
            "127.0.0.1:2".into(),
        ]));
        assert!(cluster.is_cluster());
        assert_eq!(cluster.describe(), "cluster(2 workers)");
    }
}
