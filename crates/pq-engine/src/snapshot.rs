//! An immutable, fully analysed database snapshot.
//!
//! A [`Snapshot`] pairs a [`Database`] with its [`DatabaseStatistics`] —
//! per-relation cardinalities, bit sizes and full per-attribute degree maps,
//! plus the combined statistics fingerprint — computed **once** when the
//! snapshot is built. Every consumer that used to make its own O(data) pass
//! (the plan-cache fingerprint, per-variable heavy-hitter detection, the
//! multi-round estimator's distinct counts) reads from the shared catalogue
//! instead, so planning against a warm snapshot touches no tuple at all.
//!
//! Snapshots are immutable and shared behind `Arc`: arbitrarily many
//! sessions plan and execute against one snapshot concurrently, and a
//! writer installing a new snapshot (see `Engine::update`) never disturbs
//! readers still holding the old one.

use pq_relation::{Database, DatabaseStatistics, RelationStatistics};

/// An immutable database plus its statistics catalogue, analysed once.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    database: Database,
    statistics: DatabaseStatistics,
}

impl Snapshot {
    /// Analyse `database` (one pass over every relation) and freeze it.
    pub fn new(database: Database) -> Self {
        let statistics = DatabaseStatistics::compute(&database);
        Snapshot {
            database,
            statistics,
        }
    }

    /// Freeze a database together with an **already maintained** statistics
    /// catalogue — the incremental-mutation path (`Engine::apply`,
    /// `Engine::update`), where recomputing the catalogue from scratch is
    /// exactly the O(data) cost being avoided.
    ///
    /// The caller guarantees `statistics` describes `database`; in debug
    /// builds this is cross-checked against a fresh computation.
    pub fn from_parts(database: Database, statistics: DatabaseStatistics) -> Self {
        debug_assert_eq!(
            DatabaseStatistics::compute(&database).fingerprint,
            statistics.fingerprint,
            "statistics handed to Snapshot::from_parts do not match the database"
        );
        Snapshot {
            database,
            statistics,
        }
    }

    /// The frozen database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The statistics catalogue computed when the snapshot was built.
    pub fn statistics(&self) -> &DatabaseStatistics {
        &self.statistics
    }

    /// Statistics of one relation (None when it is not loaded).
    pub fn relation_statistics(&self, name: &str) -> Option<&RelationStatistics> {
        self.statistics.relation(name)
    }

    /// The memoized statistics fingerprint — part of every plan-cache key,
    /// so a new snapshot with different statistics invalidates stale plans
    /// without any explicit bookkeeping.
    pub fn fingerprint(&self) -> u64 {
        self.statistics.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{database_fingerprint, Relation, Schema};

    #[test]
    fn snapshot_memoizes_the_fingerprint_and_statistics() {
        let mut db = Database::new(1 << 10);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a", "b"]),
            vec![vec![1, 2], vec![1, 3], vec![2, 4]],
        ));
        let expected = database_fingerprint(&db);
        let snapshot = Snapshot::new(db);
        assert_eq!(snapshot.fingerprint(), expected);
        let stats = snapshot.relation_statistics("R").expect("R analysed");
        assert_eq!(stats.cardinality, 3);
        assert_eq!(stats.degrees["a"].distinct(), 2);
        assert_eq!(stats.degrees["a"].frequency(1), 2);
        assert!(snapshot.relation_statistics("missing").is_none());
    }
}
