//! The engine façade: parse → plan (cached) → execute.

use crate::cache::{CacheStats, PlanCache, PlanKey};
use crate::executor::{run_plan, RunOutcome};
use crate::parser::{parse_query, ParsedQuery, ParseError};
use crate::planner::{plan_query_with_fingerprint, Plan, PlanError, Strategy};
use pq_relation::{database_fingerprint, Database};
use std::collections::HashMap;
use std::fmt;

/// Anything that can go wrong between query text and answer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query text did not parse (or failed validation).
    Parse(ParseError),
    /// The query parsed but cannot be planned over the loaded data.
    Plan(PlanError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

/// A fully executed query: the plan that was used (and whether it came from
/// the cache) plus the executor's outcome.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The plan the executor ran.
    pub plan: Plan,
    /// True when the plan was served from the LRU cache.
    pub cache_hit: bool,
    /// Output relation, metrics and wall-clock time.
    pub outcome: RunOutcome,
}

/// The query engine: owns a database, a server budget and a plan cache.
///
/// ```
/// use pq_engine::Engine;
/// use pq_relation::{Database, Relation, Schema};
///
/// let mut db = Database::new(64);
/// db.insert(Relation::from_rows(
///     Schema::from_strs("R", &["a", "b"]),
///     vec![vec![1, 2], vec![2, 3]],
/// ));
/// db.insert(Relation::from_rows(
///     Schema::from_strs("S", &["a", "b"]),
///     vec![vec![2, 10], vec![3, 30]],
/// ));
/// let mut engine = Engine::new(db, 4);
/// let run = engine.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
/// assert_eq!(run.outcome.output.len(), 2);
/// assert!(!run.cache_hit);
/// assert!(engine.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap().cache_hit);
/// ```
#[derive(Debug)]
pub struct Engine {
    database: Database,
    p: usize,
    seed: u64,
    cache: PlanCache,
    /// Memoized statistics fingerprint; cleared by [`Engine::database_mut`]
    /// (the only mutation path), so warm queries skip the O(data) scan.
    fingerprint: Option<u64>,
}

impl Engine {
    /// An engine over `database` simulating `p` servers, with the default
    /// hash seed and plan-cache capacity.
    pub fn new(database: Database, p: usize) -> Self {
        Engine {
            database,
            p,
            seed: 7,
            cache: PlanCache::default(),
            fingerprint: None,
        }
    }

    /// Select the hash seed used by the routing (any value is correct).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the plan-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = PlanCache::new(capacity);
        self
    }

    /// The loaded database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Mutable access to the database. Cached plans need no explicit
    /// invalidation: the statistics fingerprint in the cache key changes
    /// with the data, so stale plans simply stop matching. (The memoized
    /// fingerprint is dropped here, pessimistically assuming a mutation.)
    pub fn database_mut(&mut self) -> &mut Database {
        self.fingerprint = None;
        &mut self.database
    }

    /// The server budget `p`.
    pub fn servers(&self) -> usize {
        self.p
    }

    /// Change the server budget (plans for the old budget stay cached under
    /// their own key).
    pub fn set_servers(&mut self, p: usize) {
        self.p = p;
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every cached plan (used by benchmarks to measure cold planning
    /// without rebuilding the engine; counters are kept).
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// Parse and plan a query, consulting the plan cache. Returns the plan
    /// and whether it was a cache hit.
    pub fn plan(&mut self, text: &str) -> Result<(Plan, bool), EngineError> {
        let parsed = parse_query(text)?;
        let fingerprint = *self
            .fingerprint
            .get_or_insert_with(|| database_fingerprint(&self.database));
        let key = PlanKey {
            signature: parsed.signature(),
            fingerprint,
            p: self.p,
        };
        if let Some(plan) = self.cache.get(&key) {
            return Ok((adapt_cached_plan(plan, parsed), true));
        }
        // Reuse the fingerprint just computed for the cache key rather than
        // paying a second full statistics scan inside the planner.
        let plan =
            plan_query_with_fingerprint(&parsed, &self.database, self.p, key.fingerprint)?;
        self.cache.insert(key, plan.clone());
        Ok((plan, false))
    }

    /// Parse and plan a query, returning the human-readable explanation —
    /// what `pqsh explain` prints.
    pub fn explain(&mut self, text: &str) -> Result<String, EngineError> {
        let (plan, cache_hit) = self.plan(text)?;
        let stats = self.cache.stats();
        Ok(format!(
            "{}  {:<18} {} ({} hit(s), {} miss(es), {} cached)\n",
            plan.explain(),
            "plan cache",
            if cache_hit { "HIT" } else { "MISS" },
            stats.hits,
            stats.misses,
            stats.len
        ))
    }

    /// Parse, plan (cached) and execute a query.
    pub fn run(&mut self, text: &str) -> Result<EngineRun, EngineError> {
        let (plan, cache_hit) = self.plan(text)?;
        let outcome = run_plan(&plan, &self.database, self.seed);
        Ok(EngineRun {
            plan,
            cache_hit,
            outcome,
        })
    }
}

/// Re-point a cached plan at the user's current query. Signatures are
/// rename-invariant, so a hit may come from an alpha-renamed (or
/// differently named) query; every variable-keyed field of the plan is
/// rewritten through the positional correspondence of the two variable
/// lists (equal signatures guarantee identical structure). Relation names
/// are part of the signature and never change.
fn adapt_cached_plan(mut plan: Plan, parsed: ParsedQuery) -> Plan {
    let old_vars = plan.parsed.query.variables();
    let new_vars = parsed.query.variables();
    if old_vars != new_vars {
        let map: HashMap<&String, &String> = old_vars.iter().zip(new_vars.iter()).collect();
        let rename = |v: &String| -> String {
            map.get(v).map_or_else(|| v.clone(), |s| (*s).clone())
        };
        plan.strategy = match plan.strategy {
            Strategy::HyperCube { shares } => Strategy::HyperCube {
                shares: shares.iter().map(|(k, &s)| (rename(k), s)).collect(),
            },
            Strategy::SkewAwareStar { center } => Strategy::SkewAwareStar {
                center: rename(&center),
            },
            Strategy::SkewAwareTriangle { canonical_vars } => Strategy::SkewAwareTriangle {
                canonical_vars: [
                    rename(&canonical_vars[0]),
                    rename(&canonical_vars[1]),
                    rename(&canonical_vars[2]),
                ],
            },
            multi_round @ Strategy::MultiRound { .. } => multi_round,
        };
        plan.shares = plan.shares.iter().map(|(k, &s)| (rename(k), s)).collect();
        plan.exponents.exponents = plan
            .exponents
            .exponents
            .iter()
            .map(|(k, &e)| (rename(k), e))
            .collect();
        for h in &mut plan.heavy {
            h.variable = rename(&h.variable);
        }
        // Notes embed variable names only in backticks (the planner's
        // formatting convention), so a backtick-delimited replacement
        // renames them without touching the surrounding prose. The renaming
        // must be simultaneous (an alpha-renaming may swap two variables),
        // hence the placeholder pass.
        for note in &mut plan.notes {
            for (i, old) in old_vars.iter().enumerate() {
                *note = note.replace(&format!("`{old}`"), &format!("\u{1}{i}\u{1}"));
            }
            for (i, new) in new_vars.iter().enumerate() {
                *note = note.replace(&format!("\u{1}{i}\u{1}"), &format!("`{new}`"));
            }
        }
    }
    plan.parsed = parsed;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Relation, Schema, Tuple};

    fn engine() -> Engine {
        let mut db = Database::new(1 << 10);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a", "b"]),
            (0..50).map(|i| vec![i, i + 1]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["a", "b"]),
            (0..50).map(|i| vec![i + 1, i + 2]).collect(),
        ));
        Engine::new(db, 8)
    }

    #[test]
    fn run_reports_cache_hits_on_repeats() {
        let mut e = engine();
        let first = e.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.outcome.output.len(), 50);
        let again = e.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.outcome.output.len(), 50);
        // Alpha-renamed query: same signature, still a hit.
        let renamed = e.run("P(u, v, w) :- R(u, v), S(v, w)").unwrap();
        assert!(renamed.cache_hit);
        assert_eq!(renamed.outcome.output.name(), "P");
        assert_eq!(e.cache_stats().hits, 2);
        assert_eq!(e.cache_stats().misses, 1);
    }

    #[test]
    fn renamed_cache_hit_still_executes_specialised_strategies() {
        // A skewed triangle: the cached plan is a SkewAwareTriangle whose
        // canonical variables must be rekeyed when an alpha-renamed query
        // hits the cache.
        let mut db = Database::new(1 << 20);
        for name in ["R", "S", "T"] {
            let mut rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i]).collect();
            if name != "S" {
                // Hub value 0 with high degree in R and T.
                rows.extend((0..80).map(|i| {
                    if name == "R" {
                        vec![0, 10_000 + i]
                    } else {
                        vec![20_000 + i, 0]
                    }
                }));
            }
            db.insert(Relation::from_rows(Schema::from_strs(name, &["a", "b"]), rows));
        }
        let mut e = Engine::new(db, 16);
        let first = e.run("Q(a, b, c) :- R(a, b), S(b, c), T(c, a)").unwrap();
        assert!(
            matches!(first.plan.strategy, crate::planner::Strategy::SkewAwareTriangle { .. }),
            "got {}",
            first.plan.strategy.name()
        );
        let renamed = e.run("P(u, v, w) :- R(u, v), S(v, w), T(w, u)").unwrap();
        assert!(renamed.cache_hit);
        let crate::planner::Strategy::SkewAwareTriangle { canonical_vars } =
            &renamed.plan.strategy
        else {
            panic!("strategy changed across the cache");
        };
        assert_eq!(canonical_vars, &["u".to_string(), "v".to_string(), "w".to_string()]);
        assert_eq!(
            renamed.outcome.output.canonicalized().tuples(),
            first.outcome.output.canonicalized().tuples()
        );
    }

    #[test]
    fn renamed_cache_hit_rewrites_planner_notes() {
        let mut db = Database::new(1 << 16);
        let mut r_rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i + 200]).collect();
        let mut s_rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i + 300]).collect();
        r_rows.extend((0..40).map(|i| vec![7, 1_000 + i]));
        s_rows.extend((0..40).map(|i| vec![7, 2_000 + i]));
        db.insert(Relation::from_rows(Schema::from_strs("R", &["a", "b"]), r_rows));
        db.insert(Relation::from_rows(Schema::from_strs("S", &["a", "b"]), s_rows));
        let mut e = Engine::new(db, 16);
        let first = e.explain("Q(z, a, b) :- R(z, a), S(z, b)").unwrap();
        assert!(first.contains("centre `z`"), "{first}");
        let renamed = e.explain("P(c, x, y) :- R(c, x), S(c, y)").unwrap();
        assert!(renamed.contains("HIT"), "{renamed}");
        assert!(renamed.contains("centre `c`"), "{renamed}");
        assert!(!renamed.contains('z'), "stale variable name leaked: {renamed}");
    }

    #[test]
    fn data_changes_invalidate_cached_plans_via_the_fingerprint() {
        let mut e = engine();
        e.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        e.database_mut()
            .relation_mut("R")
            .unwrap()
            .push(Tuple::from([900, 901]));
        let rerun = e.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert!(!rerun.cache_hit, "stale plan must not be reused");
    }

    #[test]
    fn explain_names_strategy_and_cache_state() {
        let mut e = engine();
        let text = "Q(x, y, z) :- R(x, y), S(y, z)";
        let first = e.explain(text).unwrap();
        assert!(first.contains("MISS"), "{first}");
        assert!(first.contains("strategy"), "{first}");
        let second = e.explain(text).unwrap();
        assert!(second.contains("HIT"), "{second}");
    }

    #[test]
    fn errors_surface_readably() {
        let mut e = engine();
        let err = e.run("Q(x) :- ").unwrap_err();
        assert!(matches!(err, EngineError::Parse(_)));
        let err = e.run("Q(x, y) :- Missing(x, y)").unwrap_err();
        assert!(err.to_string().contains("not loaded"), "{err}");
    }
}
