//! The engine: a cheap, cloneable handle over shared, concurrently-served
//! state.
//!
//! An [`Engine`] owns nothing mutable itself — it is an `Arc` around:
//!
//! * the current [`Snapshot`] (immutable database + statistics catalogue,
//!   analysed once), behind an `RwLock` that is held only for the instant
//!   of reading or swapping the `Arc`;
//! * one shared [`PlanCache`] behind a `Mutex`, so every session benefits
//!   from every other session's planning work;
//! * the default server budget and hash seed handed to new [`Session`]s.
//!
//! Cloning an `Engine` clones the handle, not the data. All query entry
//! points live on [`Session`] (and [`crate::PreparedQuery`]) and take
//! `&self`, so arbitrarily many sessions run concurrently on real threads
//! against one engine. Mutation is copy-on-write and per relation: the
//! typed [`Engine::apply`] folds an insert-only [`Delta`] into the next
//! snapshot in O(delta) (touched relations' buffers and statistics rebuilt,
//! everything else shared), while the closure-based [`Engine::update`]
//! remains the recompute fallback for arbitrary edits. Either way the new
//! snapshot is atomically installed — sessions mid-query keep the `Arc` to
//! the old snapshot and finish on it — and the plan cache is maintained
//! per touched relation: plans reading mutated relations are evicted,
//! every other plan is re-keyed to the new statistics fingerprint and
//! keeps hitting.

use crate::backend::ExecBackend;
use crate::cache::{CacheStats, PlanCache, PlanKey};
use crate::delta::{Delta, DeltaError};
use crate::executor::RunOutcome;
use crate::obs::EngineObs;
use pq_mpc::net::{ClusterConfig, ClusterError};
use crate::parser::{ParseError, ParsedQuery};
use crate::planner::{plan_query_on, Plan, PlanError, Strategy};
use crate::session::Session;
use crate::snapshot::Snapshot;
use pq_obs::{MetricsRegistry, Phase, QueryTrace};
use pq_relation::{Database, DatabaseStatistics, Relation, ValueDictionary};
use pq_wal::{Lsn, RelationInserts, Wal, WalRecord};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

/// Anything that can go wrong between query text and answer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query text did not parse (or failed validation).
    Parse(ParseError),
    /// The query parsed but cannot be planned over the loaded data.
    Plan(PlanError),
    /// The plan was sound but the worker cluster failed to execute it
    /// (only possible on [`ExecBackend::Cluster`]).
    Cluster(ClusterError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Cluster(e) => write!(f, "cluster execution failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<ClusterError> for EngineError {
    fn from(e: ClusterError) -> Self {
        EngineError::Cluster(e)
    }
}

/// A fully executed query: the plan that was used (and whether it came from
/// a cache) plus the executor's outcome.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The plan the executor ran.
    pub plan: Plan,
    /// True when the plan was reused (shared LRU cache, or a
    /// [`crate::PreparedQuery`]'s memoized plan) instead of freshly planned.
    pub cache_hit: bool,
    /// Output relation, metrics and wall-clock time.
    pub outcome: RunOutcome,
}

/// Lock a mutex, ignoring poisoning: the protected values (plan cache,
/// snapshot pointer) are valid after any partial operation, and a reader
/// must never be taken down by an unrelated thread's panic.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The engine's attachment to a write-ahead log (present only on durable
/// engines, see [`Engine::with_wal`] and [`crate::durability`]).
///
/// The interior mutexes exist only for interior mutability: every access
/// happens under the engine's `update_lock`, so they are never contended.
#[derive(Debug)]
struct WalAttachment {
    wal: Arc<Wal>,
    /// The dictionary the CLI front-ends encode tokens through; its growth
    /// is logged as `DictExtend` records so recovered answers decode
    /// exactly as before the crash.
    dictionary: Arc<RwLock<ValueDictionary>>,
    /// Auto-checkpoint after this many logged deltas (0 = never).
    checkpoint_every: u64,
    /// Prefix of `dictionary` already durable (in the log or a checkpoint).
    tokens_logged: Mutex<usize>,
    /// Deltas logged since the last checkpoint.
    deltas_since_checkpoint: Mutex<u64>,
}

/// The shared state behind every clone of one [`Engine`].
#[derive(Debug)]
struct SharedState {
    snapshot: RwLock<Arc<Snapshot>>,
    cache: Mutex<PlanCache>,
    /// Serialises copy-on-write updates so concurrent writers cannot lose
    /// each other's mutations (readers are never blocked by this).
    update_lock: Mutex<()>,
    default_p: usize,
    default_seed: u64,
    default_backend: ExecBackend,
    /// The engine's metrics registry and pre-resolved hot-path handles.
    obs: EngineObs,
    /// The write-ahead log, when this engine is durable.
    wal: Option<WalAttachment>,
    /// The persistent executor pool every session installs around plan
    /// execution: per-server fan-out and morsel-parallel join kernels run
    /// on it, so no thread is ever spawned on the query hot path.
    pool: Arc<pq_exec::TaskPool>,
}

/// A cheap, cloneable, thread-safe handle to one loaded database and one
/// shared plan cache.
///
/// ```
/// use pq_engine::Engine;
/// use pq_relation::{Database, Relation, Schema};
///
/// let mut db = Database::new(64);
/// db.insert(Relation::from_rows(
///     Schema::from_strs("R", &["a", "b"]),
///     vec![vec![1, 2], vec![2, 3]],
/// ));
/// db.insert(Relation::from_rows(
///     Schema::from_strs("S", &["a", "b"]),
///     vec![vec![2, 10], vec![3, 30]],
/// ));
/// let engine = Engine::new(db, 4);
/// let session = engine.session(); // per-client; `run` takes `&self`
/// let run = session.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
/// assert_eq!(run.outcome.output.len(), 2);
/// assert!(!run.cache_hit);
/// // A different session shares the plan cache: same shape, instant HIT.
/// let other = engine.session();
/// assert!(other.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap().cache_hit);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    shared: Arc<SharedState>,
}

impl Engine {
    /// An engine over `database`, analysed once into a [`Snapshot`]. New
    /// sessions default to `p` servers and the default hash seed.
    pub fn new(database: Database, p: usize) -> Self {
        Engine {
            shared: Arc::new(SharedState {
                snapshot: RwLock::new(Arc::new(Snapshot::new(database))),
                cache: Mutex::new(PlanCache::default()),
                update_lock: Mutex::new(()),
                default_p: p,
                default_seed: 7,
                default_backend: ExecBackend::Simulator,
                obs: EngineObs::new(),
                wal: None,
                pool: pq_exec::global(),
            }),
        }
    }

    /// Size the engine's executor pool: a dedicated [`pq_exec::TaskPool`]
    /// of total parallelism `threads` (worker threads plus the helping
    /// caller; `1` spawns no threads and runs queries fully inline). The
    /// pool's `pq_exec_*` counters are mirrored into this engine's metrics
    /// registry. Without this call the engine shares the process-wide
    /// [`pq_exec::global`] pool (sized by `PQ_THREADS`, default
    /// `available_parallelism`), whose counters stay internal.
    /// Builder-style: call before the handle is cloned.
    ///
    /// # Panics
    /// Panics when the engine handle has already been cloned or has live
    /// sessions.
    pub fn with_threads(self, threads: usize) -> Self {
        let pool = pq_exec::TaskPool::new(threads);
        let mut shared = self.shared;
        let state = Arc::get_mut(&mut shared).expect("configure the engine before sharing it");
        pool.attach_registry(state.obs.registry());
        state.pool = pool;
        Engine { shared }
    }

    /// The executor pool this engine's sessions run plans on.
    pub fn pool(&self) -> &Arc<pq_exec::TaskPool> {
        &self.shared.pool
    }

    /// The engine's cumulative [`MetricsRegistry`]: query counts, latency
    /// histograms, plan-cache and mutation counters, measured wire bytes.
    /// Share the `Arc` with whatever exposes or merges them (`pqd METRICS`
    /// renders exactly this registry through
    /// [`pq_obs::prometheus_text`]/[`pq_obs::json_text`]).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.shared.obs.registry().clone()
    }

    /// Turn instrumentation recording on (the default) or off. Unlike the
    /// other builders this may be called at any time — the flag is one
    /// relaxed atomic — but is builder-shaped for construction-site use;
    /// the `engine_obs` benchmark compares the two settings.
    #[must_use]
    pub fn with_metrics_enabled(self, enabled: bool) -> Self {
        self.shared.obs.registry().set_enabled(enabled);
        self
    }

    /// Select the default hash seed handed to new sessions (any value is
    /// correct). Builder-style: call before the handle is cloned.
    ///
    /// # Panics
    /// Panics when the engine handle has already been cloned or has live
    /// sessions — defaults are fixed once the engine is shared.
    pub fn with_seed(self, seed: u64) -> Self {
        let mut shared = self.shared;
        Arc::get_mut(&mut shared)
            .expect("configure the engine before sharing it")
            .default_seed = seed;
        Engine { shared }
    }

    /// Select the plan-cache capacity. Builder-style: call before the
    /// handle is cloned.
    ///
    /// # Panics
    /// Panics when the engine handle has already been cloned or has live
    /// sessions.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        let mut shared = self.shared;
        *lock_unpoisoned(
            &Arc::get_mut(&mut shared)
                .expect("configure the engine before sharing it")
                .cache,
        ) = PlanCache::new(capacity);
        Engine { shared }
    }

    /// Hand new sessions the distributed backend: plans execute on the
    /// configured `pqd --worker` processes instead of the in-process
    /// simulator (sessions can still switch per-session with
    /// [`Session::set_backend`]). Builder-style: call before the handle is
    /// cloned.
    ///
    /// # Panics
    /// Panics when the engine handle has already been cloned or has live
    /// sessions.
    pub fn with_cluster(self, config: ClusterConfig) -> Self {
        self.with_backend(ExecBackend::cluster(config))
    }

    /// Select the default [`ExecBackend`] handed to new sessions.
    /// Builder-style: call before the handle is cloned.
    ///
    /// # Panics
    /// Panics when the engine handle has already been cloned or has live
    /// sessions.
    pub fn with_backend(self, backend: ExecBackend) -> Self {
        let mut shared = self.shared;
        Arc::get_mut(&mut shared)
            .expect("configure the engine before sharing it")
            .default_backend = backend;
        Engine { shared }
    }

    /// Attach an opened write-ahead log: from here on every
    /// [`Engine::apply`] appends its delta (and any growth of `dictionary`)
    /// to `wal` **before** installing the new snapshot, and a checkpoint is
    /// written automatically every `checkpoint_every` logged deltas
    /// (0 disables auto-checkpointing). The caller is responsible for the
    /// log/state handshake — an engine built from recovered state must be
    /// attached to the *same* directory's log; [`crate::open_durable`] does
    /// all of this in one call and is the usual entry point.
    ///
    /// Builder-style: call before the handle is cloned.
    ///
    /// # Panics
    /// Panics when the engine handle has already been cloned or has live
    /// sessions.
    pub fn with_wal(
        self,
        wal: Arc<Wal>,
        dictionary: Arc<RwLock<ValueDictionary>>,
        checkpoint_every: u64,
    ) -> Self {
        let tokens_logged = dictionary.read().unwrap_or_else(PoisonError::into_inner).len();
        let mut shared = self.shared;
        Arc::get_mut(&mut shared)
            .expect("configure the engine before sharing it")
            .wal = Some(WalAttachment {
            wal,
            dictionary,
            checkpoint_every,
            tokens_logged: Mutex::new(tokens_logged),
            deltas_since_checkpoint: Mutex::new(0),
        });
        Engine { shared }
    }

    /// The attached write-ahead log, when this engine is durable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.shared.wal.as_ref().map(|attachment| &attachment.wal)
    }

    /// Write a checkpoint now: the current snapshot plus the shared value
    /// dictionary become one durable checkpoint file, and log segments made
    /// dead by it are truncated. Serialised against concurrent mutations.
    /// Returns the covered LSN, or `None` when no WAL is attached.
    pub fn checkpoint(&self) -> Result<Option<Lsn>, DeltaError> {
        let Some(attachment) = &self.shared.wal else {
            return Ok(None);
        };
        let _serialised = lock_unpoisoned(&self.shared.update_lock);
        let snapshot = self.snapshot();
        self.checkpoint_locked(attachment, &snapshot)
            .map(Some)
            .map_err(|e| DeltaError::Wal { message: e.to_string() })
    }

    /// Checkpoint the given snapshot. Caller holds the update lock.
    fn checkpoint_locked(
        &self,
        attachment: &WalAttachment,
        snapshot: &Snapshot,
    ) -> std::io::Result<Lsn> {
        let dictionary =
            attachment.dictionary.read().unwrap_or_else(PoisonError::into_inner);
        let covered = attachment.wal.checkpoint(snapshot.database(), &dictionary)?;
        // The checkpoint file holds the whole dictionary: everything up to
        // its current length is durable without further DictExtend records.
        *lock_unpoisoned(&attachment.tokens_logged) = dictionary.len();
        *lock_unpoisoned(&attachment.deltas_since_checkpoint) = 0;
        Ok(covered)
    }

    /// Append `delta` (preceded by any un-logged dictionary growth) to the
    /// log. Caller holds the update lock; nothing has been applied yet, so
    /// a failed append leaves the engine exactly as it was.
    fn log_delta(&self, attachment: &WalAttachment, delta: &Delta) -> Result<(), DeltaError> {
        let mut records = Vec::with_capacity(2);
        let dictionary =
            attachment.dictionary.read().unwrap_or_else(PoisonError::into_inner);
        let mut tokens_logged = lock_unpoisoned(&attachment.tokens_logged);
        if dictionary.len() > *tokens_logged {
            records.push(WalRecord::DictExtend {
                first_id: *tokens_logged as u64,
                tokens: dictionary.tokens()[*tokens_logged..].to_vec(),
            });
        }
        let dictionary_len = dictionary.len();
        drop(dictionary);
        let inserts = delta
            .inserts()
            .iter()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(name, rows)| RelationInserts {
                relation: name.clone(),
                arity: rows[0].len(),
                rows: rows.len(),
                values: rows.iter().flatten().copied().collect(),
            })
            .collect();
        records.push(WalRecord::DeltaApplied { inserts });
        attachment
            .wal
            .append_all(&records)
            .map_err(|e| DeltaError::Wal { message: e.to_string() })?;
        *tokens_logged = dictionary_len;
        Ok(())
    }

    /// Count a logged delta towards the auto-checkpoint threshold and
    /// checkpoint when it trips. Caller holds the update lock; `snapshot`
    /// is the just-installed state. Checkpoint failures don't fail the
    /// already-durable, already-applied delta — they are counted on
    /// `pq_wal_checkpoint_errors_total` and the next delta retries.
    fn after_logged_apply(&self, attachment: &WalAttachment, snapshot: &Snapshot) {
        let mut since = lock_unpoisoned(&attachment.deltas_since_checkpoint);
        *since += 1;
        let due = attachment.checkpoint_every > 0 && *since >= attachment.checkpoint_every;
        drop(since);
        if due {
            if let Err(error) = self.checkpoint_locked(attachment, snapshot) {
                self.count_checkpoint_error(&error);
            }
        }
    }

    fn count_checkpoint_error(&self, error: &std::io::Error) {
        self.shared
            .obs
            .registry()
            .counter(
                "pq_wal_checkpoint_errors_total",
                &[],
                "Checkpoints that failed with an I/O error",
            )
            .inc();
        let _ = error;
    }

    /// The current snapshot. The returned `Arc` stays valid (and fully
    /// queryable through [`crate::run_plan`]) even after a writer installs
    /// a newer snapshot via [`Engine::update`].
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared
            .snapshot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Open a new session with the engine's default server budget and
    /// seed. Sessions are independent: each can change its own `p` and
    /// seed without affecting anyone else, and all of them share this
    /// engine's snapshot and plan cache.
    pub fn session(&self) -> Session {
        Session::new(
            self.clone(),
            self.shared.default_p,
            self.shared.default_seed,
            self.shared.default_backend.clone(),
        )
    }

    /// The default execution backend handed to new sessions.
    pub fn default_backend(&self) -> &ExecBackend {
        &self.shared.default_backend
    }

    /// The default server budget handed to new sessions.
    pub fn default_servers(&self) -> usize {
        self.shared.default_p
    }

    /// Apply a typed, insert-only [`Delta`]: the O(delta) mutation path.
    ///
    /// Builds the next snapshot copy-on-write from the current one:
    ///
    /// * only the touched relations' row buffers are copied (one memcpy
    ///   each, thanks to the flat storage) and extended — untouched
    ///   relations keep sharing their buffers with the previous snapshot;
    /// * statistics are maintained incrementally
    ///   ([`DatabaseStatistics::apply_inserts`]): degree maps,
    ///   cardinalities, bit sizes and fingerprints of touched relations are
    ///   updated in place of a rebuild, untouched relations' statistics are
    ///   shared untouched;
    /// * the plan cache is maintained per touched relation
    ///   ([`PlanCache::on_snapshot_change`]): plans reading a touched
    ///   relation (and stale leftovers) are evicted, every other plan is
    ///   re-keyed to the new fingerprint and keeps hitting.
    ///
    /// The delta is validated up front (every relation loaded, every row of
    /// matching arity) — a rejected delta leaves the engine untouched.
    /// Values are not range-checked against the domain: like
    /// [`Engine::update`], the snapshot's domain (and with it the
    /// bits-per-value accounting) is fixed at load time. Readers are never
    /// blocked; sessions holding the previous snapshot finish on it.
    /// Concurrent `apply`/`update` calls are serialised, so no mutation is
    /// lost. An empty delta is a no-op returning the current snapshot.
    ///
    /// On a durable engine ([`Engine::with_wal`]) the delta is appended to
    /// the write-ahead log **before** anything is applied: an append
    /// failure surfaces as [`DeltaError::Wal`] with the engine untouched,
    /// and a crash at any later point replays the delta from the log.
    pub fn apply(&self, delta: Delta) -> Result<Arc<Snapshot>, DeltaError> {
        self.apply_inner(delta, true)
    }

    /// [`Engine::apply`] with the WAL append optional: recovery replays
    /// already-logged deltas through `log = false`.
    pub(crate) fn apply_inner(
        &self,
        delta: Delta,
        log: bool,
    ) -> Result<Arc<Snapshot>, DeltaError> {
        let _serialised = lock_unpoisoned(&self.shared.update_lock);
        let prev = self.snapshot();
        for (name, rows) in delta.inserts() {
            let Some(stored) = prev.database().relation(name) else {
                return Err(DeltaError::UnknownRelation {
                    relation: name.clone(),
                    available: prev.database().relation_names(),
                });
            };
            if let Some(bad) = rows.iter().find(|row| row.len() != stored.arity()) {
                return Err(DeltaError::ArityMismatch {
                    relation: name.clone(),
                    stored: stored.arity(),
                    given: bad.len(),
                });
            }
        }
        if delta.is_empty() {
            return Ok(prev);
        }
        if log {
            if let Some(attachment) = &self.shared.wal {
                self.log_delta(attachment, &delta)?;
            }
        }
        let old_fingerprint = prev.fingerprint();
        let mut database = prev.database().clone();
        let mut statistics = prev.statistics().clone();
        for (name, rows) in delta.inserts() {
            if rows.is_empty() {
                continue;
            }
            // Build the extended relation in one allocation sized for old +
            // new rows: `relation_mut` would `Arc::make_mut`-clone at exact
            // capacity and then reallocate (a second full-buffer copy) on
            // the first push.
            let stored = prev.database().relation(name).expect("validated above");
            let mut relation =
                Relation::with_capacity(stored.schema().clone(), stored.len() + rows.len());
            relation.append(stored);
            for row in rows {
                relation.push_row(row);
            }
            database.insert_arc(Arc::new(relation));
            statistics.apply_inserts(stored.schema(), rows.iter().map(Vec::as_slice));
        }
        let touched: BTreeSet<String> = delta.relations().map(str::to_string).collect();
        let inserted_rows: usize = delta.inserts().values().map(Vec::len).sum();
        let next = Arc::new(Snapshot::from_parts(database, statistics));
        let evicted = lock_unpoisoned(&self.shared.cache).on_snapshot_change(
            old_fingerprint,
            next.fingerprint(),
            &touched,
        );
        *self
            .shared
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner) = next.clone();
        let obs = &self.shared.obs;
        if obs.enabled() {
            obs.deltas_applied.inc();
            obs.rows_inserted.add(inserted_rows as u64);
            obs.snapshot_updates.inc();
            obs.cache_invalidated.add(evicted as u64);
        }
        if log {
            if let Some(attachment) = &self.shared.wal {
                self.after_logged_apply(attachment, &next);
            }
        }
        Ok(next)
    }

    /// Copy-on-write mutation for **arbitrary** edits: clone the current
    /// database (cheap — relations are shared per [`Arc`] until touched),
    /// apply `mutate`, analyse the result into a fresh [`Snapshot`] and
    /// atomically install it. Returns the new snapshot.
    ///
    /// This is the recompute fallback behind the typed [`Engine::apply`]
    /// path: statistics are rebuilt for every relation the closure touched,
    /// while relations whose shared row buffer is provably unchanged
    /// (pointer-equal to the previous snapshot's) keep their statistics
    /// without a re-scan ([`DatabaseStatistics::compute_reusing`]). For
    /// insert-only changes prefer `apply`, which also skips the rebuild of
    /// the touched relations themselves.
    ///
    /// Readers are never blocked: sessions that already fetched the old
    /// snapshot finish their queries on it, and the old `Arc` stays alive
    /// for as long as anyone holds it. The plan cache is maintained per
    /// changed relation, exactly as for `apply` — plans over unchanged
    /// relations keep hitting. Concurrent `update` calls are serialised,
    /// so no mutation is lost.
    ///
    /// On a durable engine the closure's edits cannot be logged as a typed
    /// delta (they are arbitrary), so `update` **forces a full checkpoint**
    /// after installing the new snapshot — the durable state never lags an
    /// escape-hatch edit. A failed checkpoint is counted on
    /// `pq_wal_checkpoint_errors_total` (the in-memory update itself cannot
    /// fail).
    pub fn update<F: FnOnce(&mut Database)>(&self, mutate: F) -> Arc<Snapshot> {
        let _serialised = lock_unpoisoned(&self.shared.update_lock);
        // `prev` must outlive `mutate`: it pins every shared relation's
        // refcount above 1, so the closure can only mutate via
        // `Arc::make_mut` copies and pointer equality implies "unchanged".
        let prev = self.snapshot();
        let mut database = prev.database().clone();
        mutate(&mut database);
        let statistics =
            DatabaseStatistics::compute_reusing(&database, prev.database(), prev.statistics());
        let touched = changed_relations(prev.statistics(), &statistics);
        let next = Arc::new(Snapshot::from_parts(database, statistics));
        let evicted = lock_unpoisoned(&self.shared.cache).on_snapshot_change(
            prev.fingerprint(),
            next.fingerprint(),
            &touched,
        );
        *self
            .shared
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner) = next.clone();
        let obs = &self.shared.obs;
        if obs.enabled() {
            obs.snapshot_updates.inc();
            obs.cache_invalidated.add(evicted as u64);
        }
        if let Some(attachment) = &self.shared.wal {
            if let Err(error) = self.checkpoint_locked(attachment, &next) {
                self.count_checkpoint_error(&error);
            }
        }
        next
    }

    /// Plan-cache counters and occupancy (including per-`p` entry counts).
    pub fn cache_stats(&self) -> CacheStats {
        lock_unpoisoned(&self.shared.cache).stats()
    }

    /// Drop every cached plan and reset the hit/miss counters.
    pub fn clear_plan_cache(&self) {
        lock_unpoisoned(&self.shared.cache).clear();
    }

    /// Drop every cached plan but keep the hit/miss counters — what
    /// benchmarks use to force cold planning while still reporting
    /// cumulative totals.
    pub fn clear_plan_cache_keep_stats(&self) {
        lock_unpoisoned(&self.shared.cache).clear_keep_stats();
    }

    /// Plan `parsed` against `snapshot` for `p` servers, consulting the
    /// shared cache. Returns the plan and whether it was a cache hit.
    ///
    /// The cache lock is held only for the lookup and the insert, never
    /// while planning — two sessions missing on the same key concurrently
    /// will both plan (identical plans; one insert wins), which keeps the
    /// planner's LP solves out of every other session's critical path.
    pub(crate) fn plan_parsed(
        &self,
        snapshot: &Snapshot,
        parsed: &ParsedQuery,
        p: usize,
    ) -> Result<(Plan, bool), EngineError> {
        self.plan_parsed_traced(snapshot, parsed, p, None)
    }

    /// [`Engine::plan_parsed`] with lifecycle spans: the cache probe and
    /// (on a miss) the planning work are recorded as separate phases on
    /// `trace`, and the engine's cumulative cache hit/miss counters move.
    pub(crate) fn plan_parsed_traced(
        &self,
        snapshot: &Snapshot,
        parsed: &ParsedQuery,
        p: usize,
        mut trace: Option<&mut QueryTrace>,
    ) -> Result<(Plan, bool), EngineError> {
        let obs = &self.shared.obs;
        let record = obs.enabled();
        let key = PlanKey {
            signature: parsed.signature(),
            fingerprint: snapshot.fingerprint(),
            p,
        };
        let lookup_start = Instant::now();
        let cached = lock_unpoisoned(&self.shared.cache).get(&key);
        if let Some(trace) = trace.as_deref_mut() {
            trace.record(Phase::CacheLookup, lookup_start.elapsed());
        }
        if let Some(plan) = cached {
            if record {
                obs.cache_hits.inc();
            }
            return Ok((adapt_cached_plan(plan, parsed.clone()), true));
        }
        if record {
            obs.cache_misses.inc();
        }
        let plan_start = Instant::now();
        let planned = plan_query_on(parsed, snapshot, p);
        if let Some(trace) = trace {
            trace.record(Phase::Plan, plan_start.elapsed());
        }
        let plan = planned?;
        lock_unpoisoned(&self.shared.cache).insert(key, plan.clone());
        Ok((plan, false))
    }

    /// The engine's observability handles (crate-internal shortcut for the
    /// session/prepared hot paths).
    pub(crate) fn obs(&self) -> &EngineObs {
        &self.shared.obs
    }
}

/// Relations whose planner-relevant statistics differ between two
/// catalogues (changed, added or removed) — the "touched" set handed to
/// [`PlanCache::on_snapshot_change`] by the recompute path, where no typed
/// delta says what moved.
fn changed_relations(
    previous: &DatabaseStatistics,
    next: &DatabaseStatistics,
) -> BTreeSet<String> {
    let mut touched = BTreeSet::new();
    for (name, stats) in &next.relations {
        match previous.relations.get(name) {
            Some(old) if old.fingerprint() == stats.fingerprint() => {}
            _ => {
                touched.insert(name.clone());
            }
        }
    }
    for name in previous.relations.keys() {
        if !next.relations.contains_key(name) {
            touched.insert(name.clone());
        }
    }
    touched
}

/// Re-point a cached plan at the user's current query. Signatures are
/// rename-invariant, so a hit may come from an alpha-renamed (or
/// differently named) query; every variable-keyed field of the plan is
/// rewritten through the positional correspondence of the two variable
/// lists (equal signatures guarantee identical structure). Relation names
/// are part of the signature and never change.
pub(crate) fn adapt_cached_plan(mut plan: Plan, parsed: ParsedQuery) -> Plan {
    let old_vars = plan.parsed.query.variables();
    let new_vars = parsed.query.variables();
    if old_vars != new_vars {
        let map: HashMap<&String, &String> = old_vars.iter().zip(new_vars.iter()).collect();
        let rename = |v: &String| -> String {
            map.get(v).map_or_else(|| v.clone(), |s| (*s).clone())
        };
        plan.strategy = match plan.strategy {
            Strategy::HyperCube { shares } => Strategy::HyperCube {
                shares: shares.iter().map(|(k, &s)| (rename(k), s)).collect(),
            },
            Strategy::SkewAwareStar { center } => Strategy::SkewAwareStar {
                center: rename(&center),
            },
            Strategy::SkewAwareTriangle { canonical_vars } => Strategy::SkewAwareTriangle {
                canonical_vars: [
                    rename(&canonical_vars[0]),
                    rename(&canonical_vars[1]),
                    rename(&canonical_vars[2]),
                ],
            },
            multi_round @ Strategy::MultiRound { .. } => multi_round,
        };
        plan.shares = plan.shares.iter().map(|(k, &s)| (rename(k), s)).collect();
        plan.exponents.exponents = plan
            .exponents
            .exponents
            .iter()
            .map(|(k, &e)| (rename(k), e))
            .collect();
        for h in &mut plan.heavy {
            h.variable = rename(&h.variable);
        }
        // Notes embed variable names only in backticks (the planner's
        // formatting convention), so a backtick-delimited replacement
        // renames them without touching the surrounding prose. The renaming
        // must be simultaneous (an alpha-renaming may swap two variables),
        // hence the placeholder pass.
        for note in &mut plan.notes {
            for (i, old) in old_vars.iter().enumerate() {
                *note = note.replace(&format!("`{old}`"), &format!("\u{1}{i}\u{1}"));
            }
            for (i, new) in new_vars.iter().enumerate() {
                *note = note.replace(&format!("\u{1}{i}\u{1}"), &format!("`{new}`"));
            }
        }
    }
    plan.parsed = parsed;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Relation, Schema, Tuple};

    fn engine() -> Engine {
        let mut db = Database::new(1 << 10);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a", "b"]),
            (0..50).map(|i| vec![i, i + 1]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["a", "b"]),
            (0..50).map(|i| vec![i + 1, i + 2]).collect(),
        ));
        Engine::new(db, 8)
    }

    #[test]
    fn sessions_share_the_plan_cache_across_handle_clones() {
        let e = engine();
        let s1 = e.session();
        let first = s1.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.outcome.output.len(), 50);
        // Another session from a *cloned* handle still shares the cache.
        let s2 = e.clone().session();
        let again = s2.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.outcome.output.len(), 50);
        // Alpha-renamed query: same signature, still a hit.
        let renamed = s1.run("P(u, v, w) :- R(u, v), S(v, w)").unwrap();
        assert!(renamed.cache_hit);
        assert_eq!(renamed.outcome.output.name(), "P");
        assert_eq!(e.cache_stats().hits, 2);
        assert_eq!(e.cache_stats().misses, 1);
    }

    #[test]
    fn renamed_cache_hit_still_executes_specialised_strategies() {
        // A skewed triangle: the cached plan is a SkewAwareTriangle whose
        // canonical variables must be rekeyed when an alpha-renamed query
        // hits the cache.
        let mut db = Database::new(1 << 20);
        for name in ["R", "S", "T"] {
            let mut rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i]).collect();
            if name != "S" {
                // Hub value 0 with high degree in R and T.
                rows.extend((0..80).map(|i| {
                    if name == "R" {
                        vec![0, 10_000 + i]
                    } else {
                        vec![20_000 + i, 0]
                    }
                }));
            }
            db.insert(Relation::from_rows(Schema::from_strs(name, &["a", "b"]), rows));
        }
        let session = Engine::new(db, 16).session();
        let first = session.run("Q(a, b, c) :- R(a, b), S(b, c), T(c, a)").unwrap();
        assert!(
            matches!(first.plan.strategy, crate::planner::Strategy::SkewAwareTriangle { .. }),
            "got {}",
            first.plan.strategy.name()
        );
        let renamed = session.run("P(u, v, w) :- R(u, v), S(v, w), T(w, u)").unwrap();
        assert!(renamed.cache_hit);
        let crate::planner::Strategy::SkewAwareTriangle { canonical_vars } =
            &renamed.plan.strategy
        else {
            panic!("strategy changed across the cache");
        };
        assert_eq!(canonical_vars, &["u".to_string(), "v".to_string(), "w".to_string()]);
        assert_eq!(
            renamed.outcome.output.canonicalized().to_tuples(),
            first.outcome.output.canonicalized().to_tuples()
        );
    }

    #[test]
    fn renamed_cache_hit_rewrites_planner_notes() {
        let mut db = Database::new(1 << 16);
        let mut r_rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i + 200]).collect();
        let mut s_rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i + 300]).collect();
        r_rows.extend((0..40).map(|i| vec![7, 1_000 + i]));
        s_rows.extend((0..40).map(|i| vec![7, 2_000 + i]));
        db.insert(Relation::from_rows(Schema::from_strs("R", &["a", "b"]), r_rows));
        db.insert(Relation::from_rows(Schema::from_strs("S", &["a", "b"]), s_rows));
        let session = Engine::new(db, 16).session();
        let first = session.explain("Q(z, a, b) :- R(z, a), S(z, b)").unwrap();
        assert!(first.contains("centre `z`"), "{first}");
        let renamed = session.explain("P(c, x, y) :- R(c, x), S(c, y)").unwrap();
        assert!(renamed.contains("HIT"), "{renamed}");
        assert!(renamed.contains("centre `c`"), "{renamed}");
        assert!(!renamed.contains('z'), "stale variable name leaked: {renamed}");
    }

    #[test]
    fn update_is_copy_on_write_and_invalidates_cached_plans() {
        let e = engine();
        let session = e.session();
        session.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let before = e.snapshot();
        let after = e.update(|db| {
            db.relation_mut("R").unwrap().push(Tuple::from([900, 901]));
        });
        // Copy-on-write: the old snapshot is untouched and still readable.
        assert_eq!(before.database().expect_relation("R").len(), 50);
        assert_eq!(after.database().expect_relation("R").len(), 51);
        assert_ne!(before.fingerprint(), after.fingerprint());
        let rerun = session.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert!(!rerun.cache_hit, "stale plan must not be reused");
    }

    /// R → S → T chain: two 2-atom queries sharing only S.
    fn chain_engine() -> Engine {
        let mut db = Database::new(1 << 10);
        for (name, offset) in [("R", 0u64), ("S", 1), ("T", 2)] {
            db.insert(Relation::from_rows(
                Schema::from_strs(name, &["a", "b"]),
                (0..50).map(|i| vec![i + offset, i + offset + 1]).collect(),
            ));
        }
        Engine::new(db, 8)
    }

    #[test]
    fn apply_validates_before_touching_anything_and_nops_on_empty() {
        let e = chain_engine();
        let before = e.snapshot();
        let err = e.apply(Delta::insert("X", vec![vec![1, 2]])).unwrap_err();
        assert!(matches!(err, DeltaError::UnknownRelation { .. }));
        let err = e.apply(Delta::insert("R", vec![vec![1, 2, 3]])).unwrap_err();
        assert!(matches!(
            err,
            DeltaError::ArityMismatch {
                stored: 2,
                given: 3,
                ..
            }
        ));
        // A mixed delta with one bad row must not land its good rows.
        let err = e
            .apply(Delta::insert("R", vec![vec![900, 901]]).and_insert("S", vec![vec![1]]))
            .unwrap_err();
        assert!(matches!(err, DeltaError::ArityMismatch { .. }));
        assert!(Arc::ptr_eq(&before, &e.snapshot()), "engine untouched");
        // Empty deltas return the current snapshot unchanged.
        let same = e.apply(Delta::new()).unwrap();
        assert!(Arc::ptr_eq(&before, &same));
        let same = e.apply(Delta::insert("R", vec![])).unwrap();
        assert!(Arc::ptr_eq(&before, &same));
    }

    #[test]
    fn apply_invalidates_only_plans_reading_touched_relations() {
        let e = chain_engine();
        let session = e.session();
        let q_rs = "Q(x, y, z) :- R(x, y), S(y, z)";
        let q_st = "Q(x, y, z) :- S(x, y), T(y, z)";
        session.run(q_rs).unwrap();
        session.run(q_st).unwrap();
        assert_eq!(e.cache_stats().misses, 2);

        // R(900, 1) joins S(1, 2): exactly one new answer for the RS query.
        e.apply(Delta::insert("R", vec![vec![900, 1]])).unwrap();
        assert_eq!(e.cache_stats().invalidated, 1, "only the R-reading plan");
        let st = session.run(q_st).unwrap();
        assert!(st.cache_hit, "plan over untouched S, T was re-keyed");
        let rs = session.run(q_rs).unwrap();
        assert!(!rs.cache_hit, "plan over touched R was evicted");
        assert_eq!(rs.outcome.output.len(), 51, "answers see the new data");
    }

    #[test]
    fn update_keeps_plans_over_unchanged_relations_hot() {
        let e = chain_engine();
        let session = e.session();
        let q_rs = "Q(x, y, z) :- R(x, y), S(y, z)";
        let q_st = "Q(x, y, z) :- S(x, y), T(y, z)";
        session.run(q_rs).unwrap();
        session.run(q_st).unwrap();
        // The recompute fallback diffs per-relation fingerprints, so it
        // reaches the same per-relation invalidation as `apply`.
        e.update(|db| {
            db.relation_mut("R").unwrap().push(Tuple::from([900, 901]));
        });
        assert!(session.run(q_st).unwrap().cache_hit);
        assert!(!session.run(q_rs).unwrap().cache_hit);
        assert_eq!(e.cache_stats().invalidated, 1);
    }

    #[test]
    fn clear_plan_cache_variants_follow_their_counter_semantics() {
        let e = engine();
        let session = e.session();
        session.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        session.run("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert_eq!((e.cache_stats().hits, e.cache_stats().misses), (1, 1));
        e.clear_plan_cache_keep_stats();
        assert_eq!(e.cache_stats().len, 0);
        assert_eq!(
            (e.cache_stats().hits, e.cache_stats().misses),
            (1, 1),
            "keep-stats variant preserves counters"
        );
        e.clear_plan_cache();
        assert_eq!(
            (e.cache_stats().hits, e.cache_stats().misses),
            (0, 0),
            "full clear resets counters"
        );
    }

    #[test]
    fn explain_names_strategy_and_cache_state() {
        let session = engine().session();
        let text = "Q(x, y, z) :- R(x, y), S(y, z)";
        let first = session.explain(text).unwrap();
        assert!(first.contains("MISS"), "{first}");
        assert!(first.contains("strategy"), "{first}");
        let second = session.explain(text).unwrap();
        assert!(second.contains("HIT"), "{second}");
    }

    #[test]
    fn errors_surface_readably() {
        let session = engine().session();
        let err = session.run("Q(x) :- ").unwrap_err();
        assert!(matches!(err, EngineError::Parse(_)));
        let err = session.run("Q(x, y) :- Missing(x, y)").unwrap_err();
        assert!(err.to_string().contains("not loaded"), "{err}");
    }
}
