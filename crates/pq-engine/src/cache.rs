//! The LRU plan cache.
//!
//! Planning is cheap relative to execution but not free: it scans every
//! relation for statistics, solves two linear programs and prices candidate
//! plans. Repeated queries over unchanged data — the common case for a
//! serving system — should skip all of that, so the engine caches plans
//! keyed by the **query signature** (structure up to variable renaming, see
//! [`crate::parser::ParsedQuery::signature`]), the **statistics
//! fingerprint** of the database ([`pq_relation::database_fingerprint`]),
//! and the server budget `p`.
//!
//! Data changes invalidate **per touched relation**, not wholesale: when a
//! mutation installs a new snapshot, [`PlanCache::on_snapshot_change`]
//! evicts exactly the plans that read a touched relation (plus any stale
//! leftovers from even older snapshots, so dead entries never squeeze live
//! ones out of the LRU) and re-keys every other entry to the new
//! fingerprint — a plan for `Q(x,z) :- S(x,y), T(y,z)` keeps hitting across
//! any number of inserts into `R`.

use crate::planner::Plan;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Key of one cached plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    /// Canonical query signature.
    pub signature: String,
    /// Database statistics fingerprint.
    pub fingerprint: u64,
    /// Server budget.
    pub p: usize,
}

/// Hit/miss counters and occupancy of a [`PlanCache`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Maximum number of plans retained.
    pub capacity: usize,
    /// Cached plans per server budget `p`. Sessions choose their own `p`
    /// (each gets its own cache key), so this shows how the cache is split
    /// across budgets — entries for a `p` nobody uses any more linger only
    /// until the LRU evicts them.
    pub per_p: BTreeMap<usize, usize>,
    /// Plans evicted by data changes (cumulative): entries whose query read
    /// a mutated relation, plus stale-fingerprint leftovers swept eagerly
    /// on every `Engine::apply`/`Engine::update`.
    pub invalidated: u64,
}

/// A least-recently-used plan cache.
///
/// Capacities are small (plans are a few hundred bytes and real workloads
/// have few distinct query shapes), so the cache is a `VecDeque` in recency
/// order — front is most recent — with linear lookup; eviction pops the
/// back.
#[derive(Debug)]
pub struct PlanCache {
    entries: VecDeque<(PlanKey, Plan)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl PlanCache {
    /// A cache retaining at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Look up a plan, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<Plan> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                let entry = self.entries.remove(i).expect("index in range");
                self.entries.push_front(entry);
                self.hits += 1;
                Some(self.entries[0].1.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a plan as most-recently-used, evicting the least
    /// recently used entry when full.
    pub fn insert(&mut self, key: PlanKey, plan: Plan) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push_front((key, plan));
        while self.entries.len() > self.capacity {
            self.entries.pop_back();
        }
    }

    /// Maintain the cache across a snapshot change installed by a mutation.
    ///
    /// Every entry is classified in one pass:
    ///
    /// * **stale leftovers** — entries keyed by a fingerprint other than
    ///   `old_fingerprint` (from snapshots before the previous one; e.g.
    ///   inserted by a session that raced a writer) are evicted eagerly
    ///   instead of lingering until the LRU pushes live plans out;
    /// * **touched plans** — entries whose query reads any relation in
    ///   `touched` are evicted: their statistics changed, so the plan may
    ///   no longer be the one the planner would pick;
    /// * **unaffected plans** — everything else is *re-keyed* to
    ///   `new_fingerprint` and keeps hitting: the planner's decision for a
    ///   query depends only on the statistics of the relations it reads
    ///   (plus `p`), and none of those changed.
    ///
    /// Returns the number of evicted entries (also added to the cumulative
    /// [`CacheStats::invalidated`] counter).
    pub fn on_snapshot_change(
        &mut self,
        old_fingerprint: u64,
        new_fingerprint: u64,
        touched: &BTreeSet<String>,
    ) -> usize {
        let before = self.entries.len();
        self.entries.retain_mut(|(key, plan)| {
            if key.fingerprint != old_fingerprint {
                return false;
            }
            let reads_touched = plan
                .parsed
                .query
                .relation_names()
                .iter()
                .any(|name| touched.contains(name));
            if reads_touched {
                return false;
            }
            key.fingerprint = new_fingerprint;
            plan.fingerprint = new_fingerprint;
            true
        });
        let evicted = before - self.entries.len();
        self.invalidated += evicted as u64;
        evicted
    }

    /// Current counters and occupancy, including the per-`p` entry counts.
    pub fn stats(&self) -> CacheStats {
        let mut per_p: BTreeMap<usize, usize> = BTreeMap::new();
        for (key, _) in &self.entries {
            *per_p.entry(key.p).or_insert(0) += 1;
        }
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.entries.len(),
            capacity: self.capacity,
            per_p,
            invalidated: self.invalidated,
        }
    }

    /// Drop every cached plan **and** reset the hit/miss/invalidated
    /// counters — the cache looks freshly constructed afterwards.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.invalidated = 0;
    }

    /// Drop every cached plan but keep the hit/miss counters. Benchmarks
    /// use this to force cold planning on every iteration while still
    /// reporting cumulative counter totals at the end.
    pub fn clear_keep_stats(&mut self) {
        self.entries.clear();
    }
}

impl Default for PlanCache {
    /// A cache with the engine's default capacity of 64 plans.
    fn default() -> Self {
        PlanCache::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::planner::plan_query;
    use pq_relation::{Database, Relation, Schema};

    fn toy_plan(relation: &str) -> (PlanKey, Plan) {
        let text = format!("Q(x, y) :- {relation}(x, y)");
        let parsed = parse_query(&text).unwrap();
        let mut db = Database::new(64);
        db.insert(Relation::from_rows(
            Schema::from_strs(relation, &["a", "b"]),
            vec![vec![1, 2], vec![3, 4]],
        ));
        let plan = plan_query(&parsed, &db, 4).unwrap();
        (
            PlanKey {
                signature: parsed.signature(),
                fingerprint: plan.fingerprint,
                p: 4,
            },
            plan,
        )
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut cache = PlanCache::new(2);
        let (ka, pa) = toy_plan("A");
        let (kb, pb) = toy_plan("B");
        let (kc, pc) = toy_plan("C");
        assert!(cache.get(&ka).is_none());
        cache.insert(ka.clone(), pa);
        cache.insert(kb.clone(), pb);
        assert!(cache.get(&ka).is_some()); // A is now most recent.
        cache.insert(kc.clone(), pc); // evicts B, the LRU entry.
        assert!(cache.get(&kb).is_none());
        assert!(cache.get(&ka).is_some());
        assert!(cache.get(&kc).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn fingerprint_partitions_the_key_space() {
        let mut cache = PlanCache::new(8);
        let (ka, pa) = toy_plan("A");
        cache.insert(ka.clone(), pa);
        let stale = PlanKey {
            fingerprint: ka.fingerprint.wrapping_add(1),
            ..ka.clone()
        };
        assert!(cache.get(&stale).is_none());
        let other_p = PlanKey { p: 8, ..ka.clone() };
        assert!(cache.get(&other_p).is_none());
        assert!(cache.get(&ka).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut cache = PlanCache::new(4);
        let (ka, pa) = toy_plan("A");
        cache.insert(ka.clone(), pa.clone());
        cache.insert(ka.clone(), pa);
        assert_eq!(cache.stats().len, 1);
        cache.clear();
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn clear_resets_counters_but_clear_keep_stats_does_not() {
        let mut cache = PlanCache::new(4);
        let (ka, pa) = toy_plan("A");
        cache.insert(ka.clone(), pa.clone());
        assert!(cache.get(&ka).is_some());
        let (kb, _) = toy_plan("B");
        assert!(cache.get(&kb).is_none());
        assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));

        cache.clear_keep_stats();
        assert_eq!(cache.stats().len, 0, "entries gone");
        assert_eq!(
            (cache.stats().hits, cache.stats().misses),
            (1, 1),
            "counters survive clear_keep_stats"
        );

        cache.insert(ka.clone(), pa);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.len, 0);
        assert_eq!((stats.hits, stats.misses), (0, 0), "clear resets counters");
        assert!(stats.per_p.is_empty());
    }

    /// Three single-relation plans over **one** database, so their cache
    /// keys share a fingerprint (what `on_snapshot_change` expects of live
    /// entries).
    fn plans_on_shared_db() -> Vec<(PlanKey, Plan)> {
        let mut db = Database::new(64);
        for name in ["A", "B", "C"] {
            db.insert(Relation::from_rows(
                Schema::from_strs(name, &["a", "b"]),
                vec![vec![1, 2], vec![3, 4]],
            ));
        }
        ["A", "B", "C"]
            .iter()
            .map(|name| {
                let parsed = parse_query(&format!("Q(x, y) :- {name}(x, y)")).unwrap();
                let plan = plan_query(&parsed, &db, 4).unwrap();
                (
                    PlanKey {
                        signature: parsed.signature(),
                        fingerprint: plan.fingerprint,
                        p: 4,
                    },
                    plan,
                )
            })
            .collect()
    }

    #[test]
    fn snapshot_change_evicts_touched_and_stale_entries_and_rekeys_the_rest() {
        let mut cache = PlanCache::new(8);
        let plans = plans_on_shared_db();
        let old_fp = plans[0].0.fingerprint;
        for (key, plan) in &plans {
            cache.insert(key.clone(), plan.clone());
        }
        // A leftover from an even older snapshot (e.g. a racing reader).
        let stale_key = PlanKey {
            fingerprint: old_fp.wrapping_add(99),
            ..plans[0].0.clone()
        };
        cache.insert(stale_key, plans[0].1.clone());
        assert_eq!(cache.stats().len, 4);

        let new_fp = old_fp.wrapping_add(1);
        let touched: BTreeSet<String> = ["A".to_string()].into();
        let evicted = cache.on_snapshot_change(old_fp, new_fp, &touched);
        assert_eq!(evicted, 2, "the plan over A and the stale leftover");
        assert_eq!(cache.stats().invalidated, 2);
        assert_eq!(cache.stats().len, 2);

        // The survivors answer under the *new* fingerprint only, with their
        // embedded plan fingerprint rewritten to match.
        for (key, _) in &plans[1..] {
            assert!(cache.get(key).is_none(), "old key must not resolve");
            let rekeyed = PlanKey {
                fingerprint: new_fp,
                ..key.clone()
            };
            let plan = cache.get(&rekeyed).expect("rekeyed entry hits");
            assert_eq!(plan.fingerprint, new_fp);
        }
        let rekeyed_a = PlanKey {
            fingerprint: new_fp,
            ..plans[0].0.clone()
        };
        assert!(cache.get(&rekeyed_a).is_none(), "touched plan was evicted");

        // `clear` resets the cumulative counter, `clear_keep_stats` keeps it.
        cache.clear_keep_stats();
        assert_eq!(cache.stats().invalidated, 2);
        cache.clear();
        assert_eq!(cache.stats().invalidated, 0);
    }

    #[test]
    fn stats_report_entry_counts_per_server_budget() {
        let mut cache = PlanCache::new(8);
        let (ka, pa) = toy_plan("A");
        let (kb, pb) = toy_plan("B");
        let (kc, pc) = toy_plan("C");
        cache.insert(ka, pa);
        cache.insert(PlanKey { p: 8, ..kb }, pb);
        cache.insert(PlanKey { p: 8, ..kc }, pc);
        let per_p = cache.stats().per_p;
        assert_eq!(per_p.get(&4), Some(&1));
        assert_eq!(per_p.get(&8), Some(&2));
        assert_eq!(per_p.values().sum::<usize>(), cache.stats().len);
    }
}
