//! Opening a durable engine: recover, replay, attach, checkpoint.
//!
//! [`open_durable`] is the one-call startup path behind `pqd --data-dir`:
//!
//! 1. **recover** — load the newest valid checkpoint from the WAL
//!    directory (falling back over corrupt/deleted ones) and collect the
//!    log suffix after it ([`pq_wal::recover`]);
//! 2. **replay** — apply the recovered deltas through the engine's own
//!    apply path (statistics, plan-cache bookkeeping and snapshot
//!    construction behave exactly as they did pre-crash), without
//!    re-logging them;
//! 3. **attach** — reopen the log for appending (truncating the torn
//!    tail), wire its metrics into the engine's registry and arm the
//!    auto-checkpointer;
//! 4. **checkpoint** — when the directory was fresh, or when replay did
//!    work, write a checkpoint immediately so the next startup replays
//!    nothing.
//!
//! The recovered prefix is exactly what the sync policy promised: with
//! `always` every acknowledged delta, with `group-commit`/`never` every
//! delta the OS page cache made it to disk with (all of them on a process
//! kill; the fsync gap only matters for whole-machine crashes).

use crate::delta::Delta;
use crate::engine::Engine;
use pq_relation::{Database, ValueDictionary};
use pq_wal::{apply_dict_extensions, recover, SyncPolicy, Wal, WalOptions};
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Tunables of [`open_durable`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// The log's fsync policy (default [`SyncPolicy::GroupCommit`]).
    pub sync: SyncPolicy,
    /// Auto-checkpoint after this many logged deltas; 0 disables
    /// (default 1024).
    pub checkpoint_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions { sync: SyncPolicy::GroupCommit, checkpoint_every: 1024 }
    }
}

/// What [`open_durable`] hands back: the durable engine plus a summary of
/// what recovery did (for startup logging and tests).
#[derive(Debug)]
pub struct DurableOpen {
    /// The engine, already attached to the reopened log. Configure
    /// (`with_seed`, `with_backend`, …) before sharing, as usual.
    pub engine: Engine,
    /// The shared value dictionary front-ends encode tokens through. Its
    /// growth is WAL-logged; hand this exact handle to the CLI layer.
    pub dictionary: Arc<RwLock<ValueDictionary>>,
    /// True when the state came from a checkpoint file (false: fresh
    /// directory initialised from the caller's base data).
    pub from_checkpoint: bool,
    /// Log records replayed past the checkpoint (all kinds).
    pub recovered_records: u64,
    /// Rows re-inserted by replayed deltas.
    pub recovered_rows: u64,
    /// True when the log ended in a torn tail that was truncated.
    pub torn_tail: bool,
    /// Corrupt checkpoint files skipped during recovery.
    pub checkpoints_discarded: u64,
}

/// Open (or create) the durable engine stored in `dir`.
///
/// `base` is the initial state for a **fresh** directory (what `--data`
/// loaded); once a checkpoint exists in `dir` it wins and `base` is
/// ignored. A fresh directory with no `base` is an error — there is
/// nothing to serve.
///
/// Replayed deltas must validate against the recovered state; a delta that
/// does not (impossible without external tampering, since validation
/// passed before logging) surfaces as [`io::ErrorKind::InvalidData`].
pub fn open_durable(
    dir: &Path,
    options: DurabilityOptions,
    p: usize,
    base: Option<(Database, ValueDictionary)>,
) -> io::Result<DurableOpen> {
    let mut recovery = recover(dir)?;
    let from_checkpoint = recovery.checkpoint.is_some();
    let (database, mut dictionary) = match recovery.checkpoint.take() {
        Some(checkpoint) => (checkpoint.database, checkpoint.dictionary),
        None => base.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL directory {} holds no checkpoint and no initial data was supplied",
                    dir.display()
                ),
            )
        })?,
    };
    apply_dict_extensions(&mut dictionary, &recovery.dict_extensions)
        .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))?;

    let engine = Engine::new(database, p);
    let recovered_rows = recovery.total_rows() as u64;
    for recovered in &recovery.deltas {
        let mut delta = Delta::new();
        for batch in &recovered.inserts {
            let rows: Vec<Vec<pq_relation::Value>> = if batch.arity == 0 {
                vec![Vec::new(); batch.rows]
            } else {
                batch.values.chunks(batch.arity).map(<[_]>::to_vec).collect()
            };
            delta = delta.and_insert(batch.relation.clone(), rows);
        }
        engine.apply_inner(delta, false).map_err(|error| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("replaying WAL record {} failed: {error}", recovered.lsn),
            )
        })?;
    }

    let wal = Arc::new(Wal::open(dir, WalOptions::with_sync(options.sync))?);
    let registry = engine.metrics();
    wal.set_registry(&registry);
    registry
        .counter(
            "pq_wal_recovery_records_total",
            &[],
            "Log records replayed by crash recovery",
        )
        .add(recovery.records_replayed);
    registry
        .counter("pq_wal_recovery_rows_total", &[], "Rows re-inserted by crash recovery")
        .add(recovered_rows);
    registry
        .counter(
            "pq_wal_recovery_torn_tails_total",
            &[],
            "Torn log tails truncated on startup",
        )
        .add(u64::from(recovery.torn_tail));
    registry
        .counter(
            "pq_wal_recovery_checkpoints_discarded_total",
            &[],
            "Corrupt checkpoint files skipped by recovery",
        )
        .add(recovery.checkpoints_discarded);

    let dictionary = Arc::new(RwLock::new(dictionary));
    let engine = engine.with_wal(wal, dictionary.clone(), options.checkpoint_every);
    if !from_checkpoint || recovery.records_replayed > 0 {
        engine
            .checkpoint()
            .map_err(|error| io::Error::other(format!("initial checkpoint failed: {error}")))?;
    }
    Ok(DurableOpen {
        engine,
        dictionary,
        from_checkpoint,
        recovered_records: recovery.records_replayed,
        recovered_rows,
        torn_tail: recovery.torn_tail,
        checkpoints_discarded: recovery.checkpoints_discarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Relation, Schema};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "pq-engine-dur-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn base() -> (Database, ValueDictionary) {
        let mut dictionary = ValueDictionary::new();
        let a = dictionary.encode("a0");
        let b = dictionary.encode("b0");
        let mut database = Database::new(1 << 12);
        database.insert(Relation::from_rows(
            Schema::from_strs("E", &["x", "y"]),
            vec![vec![a, b]],
        ));
        (database, dictionary)
    }

    #[test]
    fn fresh_directory_initialises_and_reopens_with_applied_deltas() {
        let dir = TempDir::new("fresh");
        let opened = open_durable(&dir.0, DurabilityOptions::default(), 4, Some(base())).unwrap();
        assert!(!opened.from_checkpoint);
        assert_eq!(opened.recovered_records, 0);
        // Grow the dictionary (as the CLI INSERT path does) and apply.
        let v = {
            let mut dict = opened.dictionary.write().unwrap();
            (dict.encode("c1"), dict.encode("c2"))
        };
        opened.engine.apply(Delta::insert("E", vec![vec![v.0, v.1]])).unwrap();
        drop(opened);

        let reopened =
            open_durable(&dir.0, DurabilityOptions::default(), 4, None).unwrap();
        assert!(reopened.from_checkpoint);
        assert!(reopened.recovered_records > 0, "the delta was replayed");
        assert_eq!(reopened.recovered_rows, 1);
        let e = reopened.engine.snapshot();
        assert_eq!(e.database().expect_relation("E").len(), 2);
        // The dictionary growth survived (DictExtend replay).
        let dict = reopened.dictionary.read().unwrap();
        assert_eq!(dict.tokens(), ["a0", "b0", "c1", "c2"]);
    }

    #[test]
    fn fresh_directory_without_base_is_an_error() {
        let dir = TempDir::new("nobase");
        let err = open_durable(&dir.0, DurabilityOptions::default(), 4, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn update_escape_hatch_checkpoints_so_edits_survive() {
        let dir = TempDir::new("update");
        let opened = open_durable(&dir.0, DurabilityOptions::default(), 4, Some(base())).unwrap();
        opened.engine.update(|db| {
            db.relation_mut("E").unwrap().push_row(&[5, 6]);
        });
        drop(opened);
        let reopened = open_durable(&dir.0, DurabilityOptions::default(), 4, None).unwrap();
        assert_eq!(
            reopened.engine.snapshot().database().expect_relation("E").len(),
            2,
            "the closure edit came back from the forced checkpoint"
        );
    }

    #[test]
    fn auto_checkpoint_bounds_replay() {
        let dir = TempDir::new("autockpt");
        let options = DurabilityOptions { checkpoint_every: 4, ..Default::default() };
        let opened = open_durable(&dir.0, options.clone(), 4, Some(base())).unwrap();
        for i in 0..10 {
            opened.engine.apply(Delta::insert("E", vec![vec![i, i + 1]])).unwrap();
        }
        drop(opened);
        let reopened = open_durable(&dir.0, options, 4, None).unwrap();
        assert_eq!(reopened.engine.snapshot().database().expect_relation("E").len(), 11);
        // 10 deltas with a checkpoint every 4: at most 4 deltas (plus
        // checkpoint markers) after the last checkpoint.
        assert!(
            reopened.recovered_rows <= 4,
            "replay not bounded: {} rows",
            reopened.recovered_rows
        );
    }
}
