//! Prepared queries: parse once, plan once, run many times.
//!
//! A [`PreparedQuery`] is the serving-path optimisation of the classic
//! prepare/execute split: the query text is parsed exactly once, the plan
//! is memoized inside the handle, and every [`PreparedQuery::run`] skips
//! the parser *and* the shared cache lock as long as the engine's snapshot
//! is unchanged. When a writer installs new data via `Engine::update`, the
//! next `run` notices the fingerprint mismatch and re-plans — through the
//! shared plan cache, so sibling prepared queries (or sessions) with the
//! same rename-invariant signature pay for the new plan only once between
//! them. The handle is `Sync`: one prepared query can be hammered from
//! many threads at once.

use crate::backend::ExecBackend;
use crate::engine::{lock_unpoisoned, Engine, EngineError, EngineRun};
use crate::executor::run_plan_on_observed;
use crate::obs::EngineObs;
use crate::parser::{parse_query, ParsedQuery};
use crate::planner::Plan;
use crate::session::{stamp_rounds, Session};
use pq_obs::{Phase, QueryTrace};
use std::sync::Mutex;
use std::time::Instant;

/// A parse-once / plan-once query handle, bound to the session's server
/// budget and seed at [`Session::prepare`] time.
#[derive(Debug)]
pub struct PreparedQuery {
    engine: Engine,
    parsed: ParsedQuery,
    p: usize,
    seed: u64,
    backend: ExecBackend,
    /// The memoized plan; its embedded statistics fingerprint says which
    /// snapshot it was planned against.
    plan: Mutex<Plan>,
}

impl PreparedQuery {
    pub(crate) fn new(session: &Session, text: &str) -> Result<Self, EngineError> {
        let parsed = parse_query(text)?;
        let engine = session.engine().clone();
        let snapshot = engine.snapshot();
        let (plan, _) = engine.plan_parsed(&snapshot, &parsed, session.servers())?;
        Ok(PreparedQuery {
            engine,
            parsed,
            p: session.servers(),
            seed: session.seed(),
            backend: session.backend().clone(),
            plan: Mutex::new(plan),
        })
    }

    /// The parsed query this handle will run.
    pub fn parsed(&self) -> &ParsedQuery {
        &self.parsed
    }

    /// The rename-invariant signature — the plan-cache key this handle
    /// shares with every alpha-equivalent query.
    pub fn signature(&self) -> String {
        self.parsed.signature()
    }

    /// The server budget the handle was prepared with.
    pub fn servers(&self) -> usize {
        self.p
    }

    /// The currently memoized plan (a clone; re-planning may replace it on
    /// the next [`PreparedQuery::run`] after a snapshot change).
    pub fn plan(&self) -> Plan {
        lock_unpoisoned(&self.plan).clone()
    }

    /// Execute against the current snapshot. Reuses the memoized plan when
    /// the snapshot is unchanged (`cache_hit` is then true); otherwise
    /// re-plans through the shared plan cache and memoizes the result. The
    /// handle keeps working across any number of `Engine::update` calls.
    ///
    /// Like [`Session::run`], the run lands in the engine's cumulative
    /// metrics; the memo check is recorded as the cache-lookup phase
    /// (steady-state runs never touch the shared cache, so its counters
    /// only move on re-plans).
    pub fn run(&self) -> Result<EngineRun, EngineError> {
        let mut trace = QueryTrace::start();
        trace.backend = Some(self.backend.describe());
        let result = self.run_inner(&mut trace);
        match result {
            Ok(run) => {
                EngineObs::stamp_run(&mut trace, &run);
                stamp_rounds(&mut trace, &run);
                trace.finish();
                self.engine.obs().record_trace(&trace, true);
                Ok(run)
            }
            Err(error) => {
                trace.finish();
                self.engine.obs().record_trace(&trace, false);
                Err(error)
            }
        }
    }

    fn run_inner(&self, trace: &mut QueryTrace) -> Result<EngineRun, EngineError> {
        let snapshot = self.engine.snapshot();
        let lookup_start = Instant::now();
        let memoized = {
            let memo = lock_unpoisoned(&self.plan);
            (memo.fingerprint == snapshot.fingerprint()).then(|| memo.clone())
        };
        trace.record(Phase::CacheLookup, lookup_start.elapsed());
        let (plan, cache_hit) = match memoized {
            Some(plan) => (plan, true),
            None => {
                let (fresh, hit) =
                    self.engine
                        .plan_parsed_traced(&snapshot, &self.parsed, self.p, Some(trace))?;
                *lock_unpoisoned(&self.plan) = fresh.clone();
                (fresh, hit)
            }
        };
        let registry = self.engine.metrics();
        let observe_cluster = registry.is_enabled().then_some(&registry);
        let pool = self.engine.pool();
        trace.parallelism = Some(pool.threads() as u64);
        let outcome = trace.time(Phase::Execute, || {
            pool.install(|| {
                run_plan_on_observed(&plan, &snapshot, self.seed, &self.backend, observe_cluster)
            })
        })?;
        Ok(EngineRun {
            plan,
            cache_hit,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Database, Relation, Schema, Tuple};

    fn engine() -> Engine {
        let mut db = Database::new(1 << 10);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a", "b"]),
            (0..30).map(|i| vec![i, i + 1]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["a", "b"]),
            (0..30).map(|i| vec![i + 1, i + 2]).collect(),
        ));
        Engine::new(db, 8)
    }

    #[test]
    fn prepared_query_reuses_its_plan_without_touching_the_cache() {
        let e = engine();
        let prepared = e.session().prepare("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let misses_after_prepare = e.cache_stats().misses;
        let hits_after_prepare = e.cache_stats().hits;
        for _ in 0..5 {
            let run = prepared.run().unwrap();
            assert!(run.cache_hit);
            assert_eq!(run.outcome.output.len(), 30);
        }
        let stats = e.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (hits_after_prepare, misses_after_prepare),
            "steady-state prepared runs bypass the shared cache entirely"
        );
    }

    #[test]
    fn prepared_query_survives_a_snapshot_swap_by_replanning() {
        let e = engine();
        let prepared = e.session().prepare("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        assert_eq!(prepared.run().unwrap().outcome.output.len(), 30);
        let old_fingerprint = prepared.plan().fingerprint;
        e.update(|db| {
            db.relation_mut("R").unwrap().push(Tuple::from([100, 200]));
            db.relation_mut("S").unwrap().push(Tuple::from([200, 300]));
        });
        let run = prepared.run().unwrap();
        assert_eq!(run.outcome.output.len(), 31, "answers reflect the new data");
        assert_ne!(prepared.plan().fingerprint, old_fingerprint, "re-planned");
        // And the re-plan is memoized again: the next run is a local hit.
        assert!(prepared.run().unwrap().cache_hit);
    }

    #[test]
    fn prepared_query_over_untouched_relations_rides_the_rekeyed_cache() {
        let mut db = Database::new(1 << 10);
        for (name, offset) in [("R", 0u64), ("S", 1), ("T", 2)] {
            db.insert(Relation::from_rows(
                Schema::from_strs(name, &["a", "b"]),
                (0..30).map(|i| vec![i + offset, i + offset + 1]).collect(),
            ));
        }
        let e = Engine::new(db, 8);
        let prepared = e.session().prepare("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        prepared.run().unwrap();
        // A delta into T changes the snapshot fingerprint, so the memoized
        // plan is refreshed — but through the re-keyed cache entry, not a
        // re-plan: the plan reads only R and S.
        let misses_before = e.cache_stats().misses;
        e.apply(crate::Delta::insert("T", vec![vec![700, 701]]))
            .unwrap();
        let run = prepared.run().unwrap();
        assert!(run.cache_hit, "refresh came from the re-keyed shared cache");
        assert_eq!(e.cache_stats().misses, misses_before, "no fresh planning");
        assert_eq!(run.plan.fingerprint, e.snapshot().fingerprint());
        // And it is memoized again for steady-state runs.
        assert!(prepared.run().unwrap().cache_hit);
    }

    #[test]
    fn prepared_queries_with_equal_signatures_share_replanning_work() {
        let e = engine();
        let s = e.session();
        let a = s.prepare("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let b = s.prepare("P(u, v, w) :- R(u, v), S(v, w)").unwrap();
        assert_eq!(a.signature(), b.signature());
        e.update(|db| {
            db.relation_mut("R").unwrap().push(Tuple::from([500, 501]));
        });
        let misses_before = e.cache_stats().misses;
        assert!(!a.run().unwrap().cache_hit, "first re-plan is fresh work");
        assert!(b.run().unwrap().cache_hit, "second rides the shared cache");
        assert_eq!(e.cache_stats().misses, misses_before + 1);
    }
}
