//! # pq-engine — an end-to-end query engine over the MPC simulator
//!
//! Everything below this crate simulates the *algorithms* of Beame, Koutris
//! and Suciu's "Communication Cost in Parallel Query Processing"; this crate
//! turns them into a *system*: from "a query and a database" to "an answer",
//! with the strategy chosen by inspecting the query's structure and the
//! data's statistics rather than hard-coded per experiment.
//!
//! The four layers:
//!
//! * [`parser`] — Datalog-style text syntax for full conjunctive queries
//!   (`Q(x, z) :- R(x, y), S(y, z)`), with spans and caret diagnostics;
//! * [`planner`] — a cost-based planner: relation statistics, the
//!   share-exponent LP (Eq. 10) and its fractional-edge-packing dual,
//!   heavy-hitter detection against the paper's `m/p` skew threshold, and
//!   an explainable [`Plan`] choosing between one-round HyperCube, the
//!   skew-aware star/triangle algorithms of §4.2, and multi-round bushy
//!   plans of §5;
//! * [`cache`] — an LRU plan cache keyed by (query signature, statistics
//!   fingerprint, `p`), so repeated queries over unchanged data skip
//!   planning and data changes invalidate stale plans automatically;
//! * [`executor`] — runs the chosen plan's rounds on the MPC simulator,
//!   with per-server local joins fanned out over real OS threads via
//!   [`pq_mpc::map_servers_parallel`], returning the answer plus
//!   [`pq_mpc::RunMetrics`] and wall-clock time.
//!
//! The [`Engine`] façade wires the layers together, and the `pqsh` binary
//! exposes them as a CLI that loads CSV/TSV relations and supports
//! `explain` and `run`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod executor;
pub mod parser;
pub mod planner;

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use engine::{Engine, EngineError, EngineRun};
pub use executor::{run_plan, RunOutcome};
pub use parser::{parse_query, ParseError, ParsedQuery, Span};
pub use planner::{
    plan_query, plan_query_with_fingerprint, HeavyReport, Plan, PlanError, Strategy,
};
