//! # pq-engine — a concurrent, end-to-end query engine over the MPC simulator
//!
//! Everything below this crate simulates the *algorithms* of Beame, Koutris
//! and Suciu's "Communication Cost in Parallel Query Processing"; this crate
//! turns them into a *system*: from "a query and a database" to "an answer",
//! with the strategy chosen by inspecting the query's structure and the
//! data's statistics rather than hard-coded per experiment — and served to
//! arbitrarily many concurrent clients from one loaded database.
//!
//! The layers:
//!
//! * [`parser`] — Datalog-style text syntax for full conjunctive queries
//!   (`Q(x, z) :- R(x, y), S(y, z)`), with spans and caret diagnostics;
//! * [`snapshot`] — an immutable [`Snapshot`]: the database plus its
//!   statistics catalogue ([`pq_relation::DatabaseStatistics`]) analysed in
//!   **one** pass, shared behind `Arc` by every concurrent reader;
//! * [`planner`] — a cost-based planner: the share-exponent LP (Eq. 10) and
//!   its fractional-edge-packing dual, heavy-hitter detection against the
//!   paper's `m/p` threshold (read from the snapshot's degree maps, no
//!   re-scan), and an explainable [`Plan`] choosing between one-round
//!   HyperCube, the skew-aware star/triangle algorithms of §4.2, and
//!   multi-round bushy plans of §5;
//! * [`cache`] — an LRU plan cache keyed by (query signature, statistics
//!   fingerprint, `p`), shared by all sessions under one lock, so repeated
//!   queries over unchanged data skip planning; data changes invalidate
//!   **per touched relation** (plans over unchanged relations are re-keyed
//!   and keep hitting);
//! * [`delta`] — typed, insert-only mutation batches ([`Delta`]): the
//!   O(delta) write path behind [`Engine::apply`], which maintains
//!   statistics incrementally instead of re-scanning the database;
//! * [`durability`] — the crash-safety layer over `pq-wal`: [`open_durable`]
//!   recovers a WAL directory (checkpoint + log replay), attaches the
//!   reopened log so every applied [`Delta`] is logged before it lands,
//!   and arms the auto-checkpointer (`pqd --data-dir` is this);
//! * [`executor`] — runs the chosen plan's rounds on the MPC simulator
//!   against a `&Snapshot`, with per-server local joins fanned out over
//!   real OS threads via [`pq_mpc::map_servers_parallel`];
//! * [`engine`] / [`session`] / [`prepared`] — the concurrent façade:
//!   [`Engine`] is a cheap, cloneable handle over the shared snapshot and
//!   plan cache; [`Session`] carries per-client state (budget `p`, seed)
//!   and exposes `plan`/`explain`/`run` as `&self`; [`PreparedQuery`] is a
//!   parse-once/plan-once handle that survives copy-on-write
//!   [`Engine::update`] snapshot swaps by re-planning lazily.
//!
//! Two binaries expose the stack: `pqsh`, the interactive shell / one-shot
//! CLI, and `pqd`, a line-protocol TCP server that opens one [`Session`]
//! per connection — many clients, one engine, one plan cache.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod delta;
pub mod durability;
pub mod engine;
pub mod executor;
mod obs;
pub mod parser;
pub mod planner;
pub mod prepared;
pub mod session;
pub mod snapshot;

pub use backend::{ExecBackend, FallbackPolicy};
pub use cache::{CacheStats, PlanCache, PlanKey};
pub use delta::{Delta, DeltaError};
pub use durability::{open_durable, DurabilityOptions, DurableOpen};
pub use engine::{Engine, EngineError, EngineRun};
pub use executor::{run_plan, run_plan_on, run_plan_on_observed, RunOutcome};
pub use pq_mpc::net::{ClusterConfig, ClusterError, RetryPolicy, WorkerPool};
pub use pq_obs::{MetricsRegistry, Phase, QueryTrace};
pub use parser::{parse_query, ParseError, ParsedQuery, Span};
pub use planner::{plan_query, plan_query_on, HeavyReport, Plan, PlanError, Strategy};
pub use prepared::PreparedQuery;
pub use session::Session;
pub use snapshot::Snapshot;
