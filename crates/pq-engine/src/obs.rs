//! The engine's observability wiring: one [`MetricsRegistry`] per
//! [`crate::Engine`], with the hot-path handles resolved once.
//!
//! Every engine owns a registry from birth — there is no "unobserved"
//! engine, only one whose registry is disabled
//! ([`crate::Engine::with_metrics_enabled`]), in which case every
//! instrumentation site skips its whole recording block behind one relaxed
//! atomic load. [`EngineObs`] pre-resolves the handles the per-query path
//! needs (query counters, phase histograms, cache counters), so recording
//! a fully traced query is a handful of atomic adds; only the per-strategy
//! latency histogram is resolved per run (a short registry read-lock),
//! because strategy labels are data-dependent.
//!
//! Metric inventory (the engine-level slice; `pqd` and the cluster layers
//! add their own — see the README's Observability section):
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `pq_queries_total` | counter | `status="ok"\|"error"` |
//! | `pq_query_rows_total` | counter | — |
//! | `pq_bytes_on_wire_total` | counter | — |
//! | `pq_query_latency_micros` | histogram | `strategy` |
//! | `pq_phase_micros` | histogram | `phase="parse"\|"plan"\|"execute"` |
//! | `pq_plan_cache_hits_total` | counter | — |
//! | `pq_plan_cache_misses_total` | counter | — |
//! | `pq_plan_cache_invalidated_total` | counter | — |
//! | `pq_deltas_applied_total` | counter | — |
//! | `pq_rows_inserted_total` | counter | — |
//! | `pq_snapshot_updates_total` | counter | — |
//!
//! A cluster backend folds its resilience metrics into the same registry
//! (registered lazily by [`pq_mpc::net::WorkerPool`] on its first run, and
//! by the degrade path in [`crate::executor`]):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `pq_cluster_retries_total` | counter | failed attempts retried on a rebuilt topology |
//! | `pq_cluster_reconnects_total` | counter | worker connections (re)dialled |
//! | `pq_cluster_degraded_total` | counter | runs answered by the simulator fallback |
//! | `pq_cluster_pool_size` | gauge | warm pooled connections after the last run |
//! | `pq_cluster_breaker_state` | gauge | 0 = closed, 1 = open, 2 = half-open |
//!
//! An engine sized with [`crate::Engine::with_threads`] additionally
//! mirrors its dedicated executor pool's counters
//! ([`pq_exec::TaskPool::attach_registry`]):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `pq_exec_tasks_total` | counter | tasks scheduled on the persistent pool |
//! | `pq_exec_steals_total` | counter | tasks taken from another worker's queue |
//! | `pq_exec_threads_spawned_total` | counter | worker threads ever spawned — flat across queries |
//! | `pq_exec_pool_size` | gauge | configured parallelism, helping caller included |
//! | `pq_exec_queue_depth` | gauge | tasks queued and not yet started |

use crate::engine::EngineRun;
use pq_obs::{Counter, Histogram, MetricsRegistry, Phase, QueryTrace};
use std::sync::Arc;

/// Pre-resolved metric handles for the engine's instrumentation sites.
/// One per engine, shared by every session and prepared query.
#[derive(Debug)]
pub(crate) struct EngineObs {
    registry: Arc<MetricsRegistry>,
    queries_ok: Counter,
    queries_error: Counter,
    query_rows: Counter,
    bytes_on_wire: Counter,
    phase_parse: Histogram,
    phase_plan: Histogram,
    phase_execute: Histogram,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) cache_invalidated: Counter,
    pub(crate) deltas_applied: Counter,
    pub(crate) rows_inserted: Counter,
    pub(crate) snapshot_updates: Counter,
}

impl EngineObs {
    /// A fresh registry with every engine-level metric registered.
    pub(crate) fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        EngineObs {
            queries_ok: registry.counter(
                "pq_queries_total",
                &[("status", "ok")],
                "Queries served, by outcome",
            ),
            queries_error: registry.counter(
                "pq_queries_total",
                &[("status", "error")],
                "Queries served, by outcome",
            ),
            query_rows: registry.counter(
                "pq_query_rows_total",
                &[],
                "Result rows returned across all queries",
            ),
            bytes_on_wire: registry.counter(
                "pq_bytes_on_wire_total",
                &[],
                "Measured bytes on the wire across all cluster-backend queries",
            ),
            phase_parse: registry.histogram(
                "pq_phase_micros",
                &[("phase", "parse")],
                "Per-phase query lifecycle timings",
            ),
            phase_plan: registry.histogram(
                "pq_phase_micros",
                &[("phase", "plan")],
                "Per-phase query lifecycle timings",
            ),
            phase_execute: registry.histogram(
                "pq_phase_micros",
                &[("phase", "execute")],
                "Per-phase query lifecycle timings",
            ),
            cache_hits: registry.counter(
                "pq_plan_cache_hits_total",
                &[],
                "Shared plan-cache lookups that found a plan",
            ),
            cache_misses: registry.counter(
                "pq_plan_cache_misses_total",
                &[],
                "Shared plan-cache lookups that had to plan",
            ),
            cache_invalidated: registry.counter(
                "pq_plan_cache_invalidated_total",
                &[],
                "Cached plans evicted by data changes",
            ),
            deltas_applied: registry.counter(
                "pq_deltas_applied_total",
                &[],
                "Typed deltas folded into the snapshot",
            ),
            rows_inserted: registry.counter(
                "pq_rows_inserted_total",
                &[],
                "Rows inserted through typed deltas",
            ),
            snapshot_updates: registry.counter(
                "pq_snapshot_updates_total",
                &[],
                "Copy-on-write snapshot installs (apply + update)",
            ),
            registry,
        }
    }

    /// The registry behind this engine.
    pub(crate) fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Whether instrumentation sites should record (one relaxed load).
    pub(crate) fn enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Fold one finished query trace into the cumulative metrics:
    /// outcome-labelled query count, rows/bytes totals, per-phase
    /// histograms and the per-strategy latency histogram.
    pub(crate) fn record_trace(&self, trace: &QueryTrace, ok: bool) {
        if !self.enabled() {
            return;
        }
        if ok { &self.queries_ok } else { &self.queries_error }.inc();
        if let Some(rows) = trace.rows_out {
            self.query_rows.add(rows);
        }
        if let Some(bytes) = trace.bytes_on_wire {
            self.bytes_on_wire.add(bytes);
        }
        for (phase, histogram) in [
            (Phase::Parse, &self.phase_parse),
            (Phase::Plan, &self.phase_plan),
            (Phase::Execute, &self.phase_execute),
        ] {
            if let Some(duration) = trace.phase_duration(phase) {
                histogram.observe_micros(duration);
            }
        }
        let strategy = trace.strategy.as_deref().unwrap_or("none");
        self.registry
            .histogram(
                "pq_query_latency_micros",
                &[("strategy", strategy)],
                "End-to-end query latency, by chosen strategy",
            )
            .observe_micros(trace.total());
    }

    /// Record the outcome labels of a completed run onto `trace` (strategy,
    /// rows, measured wire bytes) — shared by the session and
    /// prepared-query paths.
    pub(crate) fn stamp_run(trace: &mut QueryTrace, run: &EngineRun) {
        trace.strategy = Some(run.plan.strategy.name().to_string());
        trace.cache_hit = Some(run.cache_hit);
        trace.rows_out = Some(run.outcome.output.len() as u64);
        trace.bytes_on_wire = Some(if run.outcome.metrics.is_measured() {
            run.outcome.metrics.bytes_on_wire()
        } else {
            0
        });
    }
}
