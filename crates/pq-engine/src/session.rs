//! Per-client sessions: where queries are planned and run.
//!
//! A [`Session`] carries exactly the state that is private to one client —
//! its server budget `p`, its router hash seed — plus a handle to the
//! shared [`crate::Engine`]. Every query entry point takes `&self`:
//! sessions never serialise each other, so N threads each holding a
//! session answer queries concurrently against one snapshot while sharing
//! one plan cache. Changing a session's `p` or seed affects that session
//! only (plans are cached per `p`, so two sessions with different budgets
//! coexist without stepping on each other's cache entries).

use crate::backend::ExecBackend;
use crate::engine::{Engine, EngineError, EngineRun};
use crate::executor::run_plan_on_observed;
use crate::obs::EngineObs;
use crate::parser::parse_query;
use crate::planner::Plan;
use crate::prepared::PreparedQuery;
use pq_obs::{Phase, QueryTrace};
use std::time::Duration;

/// A per-client query session over a shared [`Engine`].
///
/// Obtained from [`Engine::session`]; cheap to create (an `Arc` clone and
/// two integers) and intended to be dropped when the client disconnects.
#[derive(Debug, Clone)]
pub struct Session {
    engine: Engine,
    p: usize,
    seed: u64,
    backend: ExecBackend,
}

impl Session {
    pub(crate) fn new(engine: Engine, p: usize, seed: u64, backend: ExecBackend) -> Self {
        Session {
            engine,
            p,
            seed,
            backend,
        }
    }

    /// The engine this session runs against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// This session's server budget `p`.
    pub fn servers(&self) -> usize {
        self.p
    }

    /// Change this session's server budget. Other sessions are unaffected;
    /// plans for other budgets stay cached under their own `(…, p)` keys
    /// (see [`crate::CacheStats::per_p`] for the cache's split).
    pub fn set_servers(&mut self, p: usize) {
        self.p = p;
    }

    /// This session's router hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Change this session's router hash seed (any value is correct; the
    /// seed only permutes how tuples are routed to servers).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// This session's execution backend.
    pub fn backend(&self) -> &ExecBackend {
        &self.backend
    }

    /// Change this session's execution backend (simulator or worker
    /// cluster). Other sessions are unaffected; plans are backend-agnostic,
    /// so the cache keeps hitting across a switch.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// Parse and plan a query against the current snapshot, consulting the
    /// shared plan cache. Returns the plan and whether it was a cache hit.
    pub fn plan(&self, text: &str) -> Result<(Plan, bool), EngineError> {
        let parsed = parse_query(text)?;
        let snapshot = self.engine.snapshot();
        self.engine.plan_parsed(&snapshot, &parsed, self.p)
    }

    /// Parse and plan a query, returning the human-readable explanation —
    /// what `pqsh explain` prints.
    pub fn explain(&self, text: &str) -> Result<String, EngineError> {
        let (plan, cache_hit) = self.plan(text)?;
        let stats = self.engine.cache_stats();
        Ok(format!(
            "{}  {:<18} {} ({} hit(s), {} miss(es), {} cached)\n",
            plan.explain(),
            "plan cache",
            if cache_hit { "HIT" } else { "MISS" },
            stats.hits,
            stats.misses,
            stats.len
        ))
    }

    /// Parse, plan (cached) and execute a query against the snapshot that
    /// is current when the call starts. A writer installing a new snapshot
    /// mid-run does not disturb this execution: the session holds the old
    /// snapshot's `Arc` until the answer is computed.
    ///
    /// The run is recorded into the engine's cumulative metrics
    /// ([`Engine::metrics`]); use [`Session::run_traced`] to also get the
    /// per-query lifecycle trace back.
    pub fn run(&self, text: &str) -> Result<EngineRun, EngineError> {
        self.run_traced(text).map(|(run, _)| run)
    }

    /// [`Session::run`] returning the query's lifecycle [`QueryTrace`]
    /// next to the result: per-phase timings (parse → cache lookup →
    /// plan → execute, plus one span per cluster round) and the outcome
    /// labels (strategy, backend, cache hit, rows, measured wire bytes).
    /// This is what `pqsh ANALYZE` prints and what `pqd` feeds its
    /// slow-query log from. The trace is recorded into the engine's
    /// metrics whether the query succeeds or fails.
    pub fn run_traced(&self, text: &str) -> Result<(EngineRun, QueryTrace), EngineError> {
        let mut trace = QueryTrace::start();
        trace.backend = Some(self.backend.describe());
        let result = self.run_inner(text, &mut trace);
        match result {
            Ok(run) => {
                EngineObs::stamp_run(&mut trace, &run);
                stamp_rounds(&mut trace, &run);
                trace.finish();
                self.engine.obs().record_trace(&trace, true);
                Ok((run, trace))
            }
            Err(error) => {
                trace.finish();
                self.engine.obs().record_trace(&trace, false);
                Err(error)
            }
        }
    }

    fn run_inner(&self, text: &str, trace: &mut QueryTrace) -> Result<EngineRun, EngineError> {
        let parsed = trace.time(Phase::Parse, || parse_query(text))?;
        let snapshot = self.engine.snapshot();
        let (plan, cache_hit) =
            self.engine
                .plan_parsed_traced(&snapshot, &parsed, self.p, Some(trace))?;
        let registry = self.engine.metrics();
        let observe_cluster = registry.is_enabled().then_some(&registry);
        let pool = self.engine.pool();
        trace.parallelism = Some(pool.threads() as u64);
        let outcome = trace.time(Phase::Execute, || {
            pool.install(|| {
                run_plan_on_observed(&plan, &snapshot, self.seed, &self.backend, observe_cluster)
            })
        })?;
        Ok(EngineRun {
            plan,
            cache_hit,
            outcome,
        })
    }

    /// Parse and plan once, returning a reusable [`PreparedQuery`] bound to
    /// this session's budget and seed. The handle re-plans automatically
    /// (at most once per snapshot change) when [`Engine::update`] installs
    /// new data.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, EngineError> {
        PreparedQuery::new(self, text)
    }
}

/// Add one trace span per communication round from the run's metrics —
/// the cluster measures per-round wall time; the simulator's rounds are
/// part of the execute span and carry no separate wall clock.
pub(crate) fn stamp_rounds(trace: &mut QueryTrace, run: &EngineRun) {
    if !run.outcome.metrics.is_measured() {
        return;
    }
    for (i, round) in run.outcome.metrics.rounds.iter().enumerate() {
        trace.record(
            Phase::Round(i as u32),
            Duration::from_micros(round.wall_micros),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Database, Relation, Schema};

    fn engine() -> Engine {
        let mut db = Database::new(1 << 10);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a", "b"]),
            (0..40).map(|i| vec![i, i + 1]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["a", "b"]),
            (0..40).map(|i| vec![i + 1, i + 2]).collect(),
        ));
        Engine::new(db, 8)
    }

    #[test]
    fn sessions_have_independent_budgets_and_seeds() {
        let e = engine();
        let mut a = e.session();
        let b = e.session();
        a.set_servers(4);
        a.set_seed(99);
        assert_eq!(a.servers(), 4);
        assert_eq!(a.seed(), 99);
        assert_eq!(b.servers(), 8, "other sessions keep the default");
        let text = "Q(x, y, z) :- R(x, y), S(y, z)";
        let run_a = a.run(text).unwrap();
        let run_b = b.run(text).unwrap();
        assert_eq!(run_a.plan.p, 4);
        assert_eq!(run_b.plan.p, 8);
        assert_eq!(
            run_a.outcome.output.canonicalized(),
            run_b.outcome.output.canonicalized(),
            "p and seed change the routing, never the answer"
        );
        // Same signature under two budgets occupies two cache slots.
        let per_p = e.cache_stats().per_p;
        assert_eq!(per_p.get(&4), Some(&1));
        assert_eq!(per_p.get(&8), Some(&1));
    }

    #[test]
    fn run_takes_shared_ref_and_runs_from_multiple_threads() {
        let e = engine();
        let text = "Q(x, y, z) :- R(x, y), S(y, z)";
        let expected = e.session().run(text).unwrap().outcome.output.canonicalized();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let session = e.session();
                let expected = &expected;
                scope.spawn(move || {
                    let run = session.run(text).unwrap();
                    assert!(run.cache_hit);
                    assert_eq!(run.outcome.output.canonicalized(), *expected);
                });
            }
        });
        assert_eq!(e.cache_stats().hits, 4);
    }
}
