//! Flag-parsing and command plumbing shared by the `pqsh` and `pqd`
//! binaries (pulled in via `#[path] mod`, not compiled as a binary — see
//! `autobins = false`).
//!
//! Both front-ends load the same data, construct the same engine and
//! expose the same insert command, so the `--data`/`--servers`/`--seed`
//! flags and the validate/encode/apply insert pipeline live here once:
//! same validation, same error style, one place to extend.

use pq_engine::{ClusterConfig, Delta, ExecBackend, FallbackPolicy, RetryPolicy, Session};
use pq_relation::Value;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// The flags every pq-engine front-end accepts.
pub struct CommonArgs {
    /// `--data` paths (repeatable).
    pub data: Vec<PathBuf>,
    /// `--servers`: default server budget for new sessions.
    pub servers: usize,
    /// `--seed`: default router hash seed for new sessions.
    pub seed: u64,
    /// `--cluster` worker addresses (repeatable and/or comma-separated):
    /// when non-empty, plans execute on these `pqd --worker` processes
    /// instead of the in-process simulator.
    pub cluster: Vec<String>,
    /// `--cluster-retries`: extra attempts after a failed cluster run
    /// (each on a freshly rebuilt topology).
    pub cluster_retries: u32,
    /// `--cluster-deadline-ms`: per-query wall-clock budget over all
    /// attempts, backoff pauses included.
    pub cluster_deadline_ms: u64,
    /// `--cluster-fallback`: what to do when the cluster stays unhealthy
    /// past its retry budget (`error` or `simulator`).
    pub cluster_fallback: FallbackPolicy,
    /// `--threads`: executor-pool parallelism (worker threads plus the
    /// helping caller; `1` runs queries fully inline). Defaults to the
    /// `PQ_THREADS` environment variable, then `available_parallelism`.
    pub threads: usize,
}

impl CommonArgs {
    /// Defaults shared by both binaries (`--servers 64 --seed 7`,
    /// simulator backend; 2 cluster retries, 30 s deadline, fallback
    /// `error`).
    pub fn new() -> Self {
        CommonArgs {
            data: Vec::new(),
            servers: 64,
            seed: 7,
            cluster: Vec::new(),
            cluster_retries: RetryPolicy::default().retries,
            cluster_deadline_ms: 30_000,
            cluster_fallback: FallbackPolicy::default(),
            threads: pq_exec::default_threads(),
        }
    }

    /// Try to consume `arg` as one of the shared flags, pulling its value
    /// from `args`. Returns `Ok(true)` when the flag was handled here,
    /// `Ok(false)` when it is the caller's to interpret.
    pub fn consume(
        &mut self,
        arg: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--data" => {
                self.data.push(PathBuf::from(value_of("--data", args)?));
                Ok(true)
            }
            "--servers" => {
                self.servers = parse_number("--servers", &value_of("--servers", args)?)?;
                if self.servers < 2 {
                    return Err(format!(
                        "--servers: the planner needs p ≥ 2, got {}",
                        self.servers
                    ));
                }
                Ok(true)
            }
            "--seed" => {
                self.seed = parse_number("--seed", &value_of("--seed", args)?)?;
                Ok(true)
            }
            "--cluster" => {
                let value = value_of("--cluster", args)?;
                for address in value.split(',').map(str::trim).filter(|a| !a.is_empty()) {
                    self.cluster.push(address.to_string());
                }
                if self.cluster.is_empty() {
                    return Err("--cluster needs at least one host:port address".into());
                }
                Ok(true)
            }
            "--cluster-retries" => {
                self.cluster_retries =
                    parse_number("--cluster-retries", &value_of("--cluster-retries", args)?)?;
                Ok(true)
            }
            "--cluster-deadline-ms" => {
                self.cluster_deadline_ms = parse_number(
                    "--cluster-deadline-ms",
                    &value_of("--cluster-deadline-ms", args)?,
                )?;
                if self.cluster_deadline_ms == 0 {
                    return Err("--cluster-deadline-ms must be positive".into());
                }
                Ok(true)
            }
            "--cluster-fallback" => {
                let value = value_of("--cluster-fallback", args)?;
                self.cluster_fallback = FallbackPolicy::parse(&value).ok_or_else(|| {
                    format!("--cluster-fallback: `{value}` is not `error` or `simulator`")
                })?;
                Ok(true)
            }
            "--threads" => {
                self.threads = parse_number("--threads", &value_of("--threads", args)?)?;
                if self.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// The cluster configuration the flags describe (addresses, retry
    /// budget, deadline).
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig::new(self.cluster.clone())
            .with_retry(RetryPolicy::with_retries(self.cluster_retries))
            .with_deadline(Duration::from_millis(self.cluster_deadline_ms))
    }

    /// The execution backend the `--cluster` flags selected (the
    /// simulator when `--cluster` was absent).
    pub fn backend(&self) -> ExecBackend {
        if self.cluster.is_empty() {
            ExecBackend::Simulator
        } else {
            ExecBackend::cluster_with_fallback(self.cluster_config(), self.cluster_fallback)
        }
    }

    /// Final validation once every argument is parsed.
    pub fn finish(self) -> Result<Self, String> {
        if self.data.is_empty() {
            return Err(
                "no data given; pass --data FILE_OR_DIR at least once (see --help)".into(),
            );
        }
        Ok(self)
    }
}

/// The value following a flag, or a readable error.
pub fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value (see --help)"))
}

/// Parse a flag value into any integer type, rejecting (rather than
/// truncating) out-of-range input — `--port 70000` must be an error, not
/// a silent bind to port 4464.
pub fn parse_number<T: FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: `{value}` is not a valid number for this flag"))
}

/// Split a `v1,...,vk` value list on unescaped commas, resolving the wire
/// escapes `\\` → `\` and `\,` → `,` — the inverse of the escaping `pqd`
/// applies to ROW output, shared by the `INSERT`/`insert` commands of both
/// front-ends. Empty input is zero values (a nullary row); empty tokens
/// between commas are legal (the empty string is a value like any other).
pub fn split_values(input: &str) -> Vec<String> {
    if input.is_empty() {
        return Vec::new();
    }
    let mut values = vec![String::new()];
    let mut chars = input.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => values
                .last_mut()
                .expect("never empty")
                .push(chars.next().unwrap_or('\\')),
            ',' => values.push(String::new()),
            other => values.last_mut().expect("never empty").push(other),
        }
    }
    values
}

/// Split a `row1;row2;…` batch on unescaped semicolons, leaving every
/// escape sequence intact for [`split_values`] to resolve per row (so `\;`
/// inside a value survives the row split and becomes a literal `;` after
/// the value split). Empty input is one empty row — the single-row path
/// for nullary relations.
pub fn split_rows(input: &str) -> Vec<String> {
    let mut rows = vec![String::new()];
    let mut chars = input.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let row = rows.last_mut().expect("never empty");
                row.push('\\');
                if let Some(escaped) = chars.next() {
                    row.push(escaped);
                }
            }
            ';' => rows.push(String::new()),
            other => rows.last_mut().expect("never empty").push(other),
        }
    }
    rows
}

/// One `insert <relation> <row1>;<row2>;…` request (each row
/// `v1,...,vk`), shared by `pqd`'s `INSERT` and `pqsh`'s `insert`:
/// validate **every** row against the current snapshot before encoding
/// anything (so typos don't grow the dictionary and a half-bad batch
/// inserts nothing), then apply the whole batch as **one** [`Delta`] — one
/// WAL record, one statistics fold, one plan-cache invalidation, however
/// many rows. `usage` is the front-end's syntax hint for an empty relation
/// name; `encode` maps one row's split tokens to domain values under
/// whatever locking the front-end uses around its dictionary.
pub fn insert_rows(
    session: &Session,
    rest: &str,
    usage: &str,
    mut encode: impl FnMut(&[String]) -> Vec<Value>,
) -> Result<String, String> {
    let (relation, values_text) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    if relation.is_empty() {
        return Err(usage.to_string());
    }
    let row_tokens: Vec<Vec<String>> = split_rows(values_text.trim())
        .iter()
        .map(|row| split_values(row.trim()))
        .collect();
    let snapshot = session.engine().snapshot();
    let arity = match snapshot.database().relation(relation) {
        None => {
            return Err(format!(
                "relation `{relation}` is not loaded (available: {})",
                snapshot.database().relation_names().join(", ")
            ))
        }
        Some(stored) => stored.arity(),
    };
    for (i, tokens) in row_tokens.iter().enumerate() {
        if tokens.len() != arity {
            return Err(if row_tokens.len() == 1 {
                format!(
                    "relation `{relation}` has {arity} column(s) but {} value(s) were given",
                    tokens.len()
                )
            } else {
                format!(
                    "relation `{relation}` has {arity} column(s) but row {} has {} value(s); \
                     no row inserted",
                    i + 1,
                    tokens.len()
                )
            });
        }
    }
    let rows: Vec<Vec<Value>> = row_tokens.iter().map(|tokens| encode(tokens)).collect();
    let inserted = rows.len();
    match session.engine().apply(Delta::insert(relation, rows)) {
        Ok(next) => Ok(format!(
            "inserted {inserted} row{} into {relation} ({} rows)",
            if inserted == 1 { "" } else { "s" },
            next.database().expect_relation(relation).len()
        )),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::{split_rows, split_values};

    #[test]
    fn splits_on_unescaped_commas_only() {
        assert_eq!(split_values("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_values(r"a\,b,c"), vec!["a,b", "c"]);
        assert_eq!(split_values(r"a\\,b"), vec![r"a\", "b"]);
        assert_eq!(split_values("a,,b"), vec!["a", "", "b"]);
        assert_eq!(split_values(""), Vec::<String>::new());
        // A trailing lone backslash survives as a literal.
        assert_eq!(split_values(r"a\"), vec![r"a\"]);
    }

    #[test]
    fn splits_rows_on_unescaped_semicolons_keeping_escapes() {
        assert_eq!(split_rows("a,b;c,d"), vec!["a,b", "c,d"]);
        assert_eq!(split_rows("a,b"), vec!["a,b"]);
        assert_eq!(split_rows(""), vec![""]);
        // `\;` stays escaped for split_values to resolve into a literal `;`.
        assert_eq!(split_rows(r"a\;b;c"), vec![r"a\;b", "c"]);
        assert_eq!(split_values(r"a\;b"), vec!["a;b"]);
        // `\\` consumes its pair, so the following `;` still splits.
        assert_eq!(split_rows(r"a\\;b"), vec![r"a\\", "b"]);
        assert_eq!(split_rows("a;;b"), vec!["a", "", "b"]);
    }
}
