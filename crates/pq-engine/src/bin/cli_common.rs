//! Flag-parsing plumbing shared by the `pqsh` and `pqd` binaries (pulled in
//! via `#[path] mod`, not compiled as a binary — see `autobins = false`).
//!
//! Both front-ends load the same data and construct the same engine, so the
//! `--data`/`--servers`/`--seed` flags live here once: same validation, same
//! error style, one place to extend.

use std::path::PathBuf;
use std::str::FromStr;

/// The flags every pq-engine front-end accepts.
pub struct CommonArgs {
    /// `--data` paths (repeatable).
    pub data: Vec<PathBuf>,
    /// `--servers`: default server budget for new sessions.
    pub servers: usize,
    /// `--seed`: default router hash seed for new sessions.
    pub seed: u64,
}

impl CommonArgs {
    /// Defaults shared by both binaries (`--servers 64 --seed 7`).
    pub fn new() -> Self {
        CommonArgs {
            data: Vec::new(),
            servers: 64,
            seed: 7,
        }
    }

    /// Try to consume `arg` as one of the shared flags, pulling its value
    /// from `args`. Returns `Ok(true)` when the flag was handled here,
    /// `Ok(false)` when it is the caller's to interpret.
    pub fn consume(
        &mut self,
        arg: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--data" => {
                self.data.push(PathBuf::from(value_of("--data", args)?));
                Ok(true)
            }
            "--servers" => {
                self.servers = parse_number("--servers", &value_of("--servers", args)?)?;
                if self.servers < 2 {
                    return Err(format!(
                        "--servers: the planner needs p ≥ 2, got {}",
                        self.servers
                    ));
                }
                Ok(true)
            }
            "--seed" => {
                self.seed = parse_number("--seed", &value_of("--seed", args)?)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Final validation once every argument is parsed.
    pub fn finish(self) -> Result<Self, String> {
        if self.data.is_empty() {
            return Err(
                "no data given; pass --data FILE_OR_DIR at least once (see --help)".into(),
            );
        }
        Ok(self)
    }
}

/// The value following a flag, or a readable error.
pub fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value (see --help)"))
}

/// Parse a flag value into any integer type, rejecting (rather than
/// truncating) out-of-range input — `--port 70000` must be an error, not
/// a silent bind to port 4464.
pub fn parse_number<T: FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: `{value}` is not a valid number for this flag"))
}
