//! `pqd` — the parallel-query daemon.
//!
//! A minimal line-protocol TCP server that proves the concurrent engine
//! API end to end: the process loads one database into one [`Engine`]
//! (one snapshot, one shared plan cache) and serves every connection from
//! its own thread with its own [`Session`] — so N clients plan and execute
//! concurrently, and a plan cached for one client is a HIT for all others.
//!
//! Protocol (one request line, one response block ending in `OK …`/`ERR …`):
//!
//! ```text
//! → RUN Q(x, y, z) :- E1(x, y), E2(y, z), E3(z, x)
//! ← ROW a,b,c                    (one line per answer tuple; inside a
//!                                 value, `\` is `\\` and `,` is `\,`)
//! ← OK 200 rows strategy=one-round HyperCube cache=MISS
//! → EXPLAIN Q(x, y) :- R(x, y)
//! ← …plan text…
//! ← OK
//! → SERVERS 8        ← OK p=8          (this connection's session only)
//! → SEED 42          ← OK seed=42
//! → STATS            ← …lines… then OK
//! → QUIT             ← OK bye
//! ```
//!
//! Errors never kill the connection: `ERR <message>` (newlines folded) and
//! the session keeps listening.

use pq_engine::{Engine, Session};
use pq_relation::{load_database_files, ValueDictionary};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

#[path = "cli_common.rs"]
mod cli_common;
use cli_common::{parse_number, value_of, CommonArgs};

const USAGE: &str = "\
pqd — parallel-query daemon (one engine, one plan cache, N client sessions)

USAGE:
    pqd [OPTIONS] --data PATH...

OPTIONS:
    --data PATH      CSV/TSV file, or directory of .csv/.tsv files (repeatable)
    --servers P      default simulated servers per session (default 64)
    --seed S         default router hash seed per session (default 7)
    --port PORT      TCP port to listen on (default 0 = ephemeral, printed)
    --host HOST      address to bind (default 127.0.0.1)
    -h, --help       this text

PROTOCOL: one command per line — RUN <query>, EXPLAIN <query>, SERVERS <p>,
SEED <n>, STATS, QUIT; each response block ends with an OK or ERR line.
";

struct Options {
    common: CommonArgs,
    port: u16,
    host: String,
}

fn parse_args() -> Result<Options, String> {
    let mut common = CommonArgs::new();
    let mut port = 0u16;
    let mut host = "127.0.0.1".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if common.consume(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            // parse_number::<u16> rejects (not truncates) ports above 65535.
            "--port" => port = parse_number("--port", &value_of("--port", &mut args)?)?,
            "--host" => host = value_of("--host", &mut args)?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(Options {
        common: common.finish()?,
        port,
        host,
    })
}

/// Serve one connection: its own session, its own budget/seed, shared
/// engine. Any I/O error simply ends the connection.
fn serve(stream: TcpStream, mut session: Session, dictionary: Arc<ValueDictionary>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let fold = |message: String| message.replace('\n', " | ");
    let _ = writeln!(
        writer,
        "READY {} relation(s) p={} seed={}",
        session.engine().snapshot().database().num_relations(),
        session.servers(),
        session.seed()
    );
    let _ = writer.flush();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (command, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let result = match command.to_ascii_uppercase().as_str() {
            "RUN" => match session.run(rest) {
                Ok(run) => {
                    for tuple in run.outcome.output.iter() {
                        // Backslash-escape the delimiter so string-valued
                        // cells containing commas stay unambiguous:
                        // `\` → `\\`, `,` → `\,`.
                        let row: Vec<String> = tuple
                            .iter()
                            .map(|&v| {
                                dictionary
                                    .decode_or_number(v)
                                    .replace('\\', "\\\\")
                                    .replace(',', "\\,")
                            })
                            .collect();
                        let _ = writeln!(writer, "ROW {}", row.join(","));
                    }
                    writeln!(
                        writer,
                        "OK {} rows strategy={} cache={}",
                        run.outcome.output.len(),
                        run.plan.strategy.name(),
                        if run.cache_hit { "HIT" } else { "MISS" }
                    )
                }
                Err(e) => writeln!(writer, "ERR {}", fold(e.to_string())),
            },
            "EXPLAIN" => match session.explain(rest) {
                Ok(text) => {
                    let _ = write!(writer, "{text}");
                    writeln!(writer, "OK")
                }
                Err(e) => writeln!(writer, "ERR {}", fold(e.to_string())),
            },
            "SERVERS" => match rest.parse::<usize>() {
                Ok(p) if p >= 2 => {
                    session.set_servers(p);
                    writeln!(writer, "OK p={p}")
                }
                _ => writeln!(writer, "ERR SERVERS needs a number >= 2, got `{rest}`"),
            },
            "SEED" => match rest.parse::<u64>() {
                Ok(seed) => {
                    session.set_seed(seed);
                    writeln!(writer, "OK seed={seed}")
                }
                Err(_) => writeln!(writer, "ERR SEED needs a number, got `{rest}`"),
            },
            "STATS" => {
                let snapshot = session.engine().snapshot();
                let cache = session.engine().cache_stats();
                let _ = writeln!(
                    writer,
                    "{} relation(s) {} tuple(s) fingerprint {:#018x}",
                    snapshot.database().num_relations(),
                    snapshot.database().total_tuples(),
                    snapshot.fingerprint()
                );
                let _ = writeln!(
                    writer,
                    "plan cache {} cached {} hit(s) {} miss(es)",
                    cache.len, cache.hits, cache.misses
                );
                writeln!(writer, "OK")
            }
            "QUIT" | "EXIT" => {
                let _ = writeln!(writer, "OK bye");
                let _ = writer.flush();
                break;
            }
            other => writeln!(
                writer,
                "ERR unknown command `{other}`; try RUN, EXPLAIN, SERVERS, SEED, STATS, QUIT"
            ),
        };
        if result.is_err() || writer.flush().is_err() {
            break;
        }
    }
    eprintln!("pqd: connection from {peer} closed");
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("pqd: {message}");
            std::process::exit(2);
        }
    };
    let (database, dictionary) = match load_database_files(&options.common.data) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("pqd: {e}");
            std::process::exit(1);
        }
    };
    let engine = Engine::new(database, options.common.servers).with_seed(options.common.seed);
    let dictionary = Arc::new(dictionary);
    let listener = match TcpListener::bind((options.host.as_str(), options.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pqd: cannot bind {}:{}: {e}", options.host, options.port);
            std::process::exit(1);
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("pqd: listening on {addr}"),
        Err(_) => println!("pqd: listening"),
    }
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                // One thread + one session per connection; the engine handle
                // (snapshot + plan cache) is shared by all of them.
                let session = engine.session();
                let dictionary = Arc::clone(&dictionary);
                std::thread::spawn(move || serve(stream, session, dictionary));
            }
            Err(e) => eprintln!("pqd: accept failed: {e}"),
        }
    }
}
