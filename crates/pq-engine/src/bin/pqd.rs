//! `pqd` — the parallel-query daemon.
//!
//! A minimal line-protocol TCP server that proves the concurrent engine
//! API end to end: the process loads one database into one [`Engine`]
//! (one snapshot, one shared plan cache) and serves every connection from
//! its own thread with its own [`Session`] — so N clients plan and execute
//! concurrently, a plan cached for one client is a HIT for all others, and
//! a delta INSERTed by one client lands copy-on-write: readers mid-query
//! finish on their old snapshot while the next RUN sees the new rows.
//!
//! Protocol (one request line, one response block ending in `OK …`/`ERR …`):
//!
//! ```text
//! → RUN Q(x, y, z) :- E1(x, y), E2(y, z), E3(z, x)
//! ← ROW a,b,c                    (one line per answer tuple; inside a
//!                                 value, `\` is `\\` and `,` is `\,`)
//! ← OK 200 rows strategy=one-round HyperCube cache=MISS
//! → INSERT E1 a,b                (same value escaping as ROW; new tokens
//!                                 extend the shared dictionary)
//! ← OK inserted 1 row into E1 (201 rows)
//! → EXPLAIN Q(x, y) :- R(x, y)
//! ← …plan text…
//! ← OK
//! → SERVERS 8        ← OK p=8          (this connection's session only)
//! → SEED 42          ← OK seed=42
//! → STATS            ← …lines… then OK
//! → METRICS          ← Prometheus text exposition of the engine's
//!                      cumulative metrics, then OK (`METRICS JSON` for
//!                      one JSON document instead)
//! → QUIT             ← OK bye
//! ```
//!
//! Observability: every query is traced through the engine (parse → cache
//! lookup → plan → execute) into the cumulative [`pq_obs`] registry that
//! `METRICS` dumps; `--slow-query-ms N` warn-logs any RUN slower than `N`
//! milliseconds with its per-phase breakdown, and `--log-level` gates the
//! structured stderr log (default `info`, `quiet` silences it).
//!
//! Errors never kill the connection: `ERR <message>` (newlines folded) and
//! the session keeps listening. Two knobs bound the damage misbehaving or
//! idle clients can do (the first slice of the async front-end roadmap
//! item): `--read-timeout` closes connections that stay silent too long,
//! and `--max-connections` refuses connections over the cap with a clean
//! `ERR busy` instead of letting threads pile up.
//!
//! Two distributed modes turn one `pqd` into a cluster:
//!
//! * `pqd --worker` speaks the binary frame protocol of [`pq_mpc::net`]
//!   instead of the line protocol: no data is loaded, the process joins
//!   whatever fragments a coordinator ships it and exits cleanly on a
//!   `Shutdown` frame;
//! * `pqd --cluster w1:port,w2:port,…` serves the normal line protocol
//!   but executes every plan on those workers, reporting measured
//!   per-round `bytes_on_wire` in `RUN` summaries and `STATS`.
//!
//! The `SHUTDOWN` command tears the whole arrangement down: the daemon
//! asks its workers (if any) to exit and then exits itself — the teardown
//! path scripts and CI use instead of `kill`.

use pq_engine::{open_durable, DurabilityOptions, Engine, Session};
use pq_mpc::RunMetrics;
use pq_obs::{json_text, prometheus_text, Counter, Gauge, LogLevel, Logger, MetricsRegistry};
use pq_relation::{load_database_files, ValueDictionary};
use pq_wal::SyncPolicy;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

#[path = "cli_common.rs"]
mod cli_common;
use cli_common::{insert_rows, parse_number, value_of, CommonArgs};

/// Set by the C signal handler on SIGTERM/SIGINT; polled by the accept
/// loops, which then take the same graceful path as `SHUTDOWN` (checkpoint
/// the WAL, stop the workers, exit 0) instead of dying mid-write.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn note_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store, no allocation,
    // no locks, no I/O.
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT to [`note_shutdown_signal`] via libc's
/// `signal(2)` — no crate dependency, just the symbol every libc exports.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = note_shutdown_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is the C standard library's handler registration;
    // the handler only performs an atomic store, which is
    // async-signal-safe.
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

const USAGE: &str = "\
pqd — parallel-query daemon (one engine, one plan cache, N client sessions)

USAGE:
    pqd [OPTIONS] --data PATH...

OPTIONS:
    --data PATH            CSV/TSV file, or directory of .csv/.tsv files (repeatable)
    --data-dir DIR         durable mode: write-ahead log + checkpoints in DIR.
                           A fresh DIR is initialised from --data; an existing
                           one recovers its own state (--data then ignored)
    --wal-sync POLICY      WAL fsync policy: always, group-commit, never
                           (default group-commit; needs --data-dir)
    --checkpoint-every N   checkpoint after N logged deltas, 0 = only on
                           SHUTDOWN (default 1024; needs --data-dir)
    --servers P            default logical servers per session (default 64)
    --seed S               default router hash seed per session (default 7)
    --threads N            executor-pool parallelism: N-1 persistent worker
                           threads plus the helping caller; 1 runs queries
                           fully inline (default: PQ_THREADS, then the
                           machine's available parallelism). With --worker,
                           sizes the pool that parallelises each fragment
                           join
    --port PORT            TCP port to listen on (default 0 = ephemeral, printed)
    --host HOST            address to bind (default 127.0.0.1)
    --read-timeout SECS    close connections idle for SECS seconds (default 0 = never)
    --max-connections N    refuse connections over N with `ERR busy` (default 1024)
    --cluster ADDRS        execute plans on these pqd --worker processes
                           (host:port, repeatable and/or comma-separated)
    --cluster-retries N    extra attempts after a failed cluster run, each
                           on a freshly rebuilt topology (default 2)
    --cluster-deadline-ms MS
                           per-query wall-clock budget across all cluster
                           attempts, backoff included (default 30000)
    --cluster-fallback P   when the cluster stays unhealthy past the retry
                           budget: error (default) surfaces the failure;
                           simulator re-runs the plan in-process and marks
                           the answer degraded=true
    --worker               be a cluster worker: speak the binary frame
                           protocol, load no data, exit on a Shutdown frame
    --max-fragment-bytes N worker mode: reject fragments once a connection
                           holds N stored bytes (default 1 GiB)
    --log-level LEVEL      stderr log verbosity: quiet, error, warn, info,
                           debug (default info)
    --slow-query-ms MS     warn-log RUNs slower than MS milliseconds, with
                           the per-phase breakdown (default 0 = off)
    -h, --help             this text

PROTOCOL: one command per line — RUN <query>, EXPLAIN <query>,
INSERT <relation> <v1,...,vk>[;<v1,...,vk>]..., SERVERS <p>, SEED <n>,
STATS, METRICS [JSON], SHUTDOWN, QUIT; each response block ends with an
OK or ERR line. A batched INSERT (rows separated by `;`) applies as one
delta: one WAL record, one statistics fold, one cache invalidation.
METRICS dumps the engine's cumulative metrics in the Prometheus text
format (or one JSON document). SHUTDOWN flushes and checkpoints the WAL
(with --data-dir), then stops the daemon (and, with --cluster, its
workers); QUIT only closes the connection. SIGTERM and SIGINT take the
same graceful path as SHUTDOWN: stop accepting, checkpoint, stop the
workers, exit 0.
";

struct Options {
    common: CommonArgs,
    port: u16,
    host: String,
    read_timeout: u64,
    max_connections: usize,
    worker: bool,
    max_fragment_bytes: u64,
    log_level: LogLevel,
    slow_query_ms: u64,
    data_dir: Option<PathBuf>,
    wal_sync: SyncPolicy,
    checkpoint_every: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut common = CommonArgs::new();
    let mut port = 0u16;
    let mut host = "127.0.0.1".to_string();
    let mut read_timeout = 0u64;
    let mut max_connections = 1024usize;
    let mut worker = false;
    let mut max_fragment_bytes = pq_mpc::net::WorkerLimits::default().max_fragment_bytes;
    let mut log_level = LogLevel::Info;
    let mut slow_query_ms = 0u64;
    let mut data_dir: Option<PathBuf> = None;
    let mut wal_sync = SyncPolicy::GroupCommit;
    let mut checkpoint_every = 1024u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if common.consume(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--worker" => worker = true,
            "--max-fragment-bytes" => {
                max_fragment_bytes = parse_number(
                    "--max-fragment-bytes",
                    &value_of("--max-fragment-bytes", &mut args)?,
                )?;
                if max_fragment_bytes == 0 {
                    return Err("--max-fragment-bytes must be positive".into());
                }
            }
            "--data-dir" => {
                data_dir = Some(PathBuf::from(value_of("--data-dir", &mut args)?))
            }
            "--wal-sync" => {
                let value = value_of("--wal-sync", &mut args)?;
                wal_sync = SyncPolicy::parse(&value).ok_or_else(|| {
                    format!("--wal-sync: `{value}` is not always|group-commit|never")
                })?;
            }
            "--checkpoint-every" => {
                checkpoint_every = parse_number(
                    "--checkpoint-every",
                    &value_of("--checkpoint-every", &mut args)?,
                )?
            }
            // parse_number::<u16> rejects (not truncates) ports above 65535.
            "--port" => port = parse_number("--port", &value_of("--port", &mut args)?)?,
            "--host" => host = value_of("--host", &mut args)?,
            "--read-timeout" => {
                read_timeout =
                    parse_number("--read-timeout", &value_of("--read-timeout", &mut args)?)?
            }
            "--log-level" => {
                let value = value_of("--log-level", &mut args)?;
                log_level = LogLevel::parse(&value).ok_or_else(|| {
                    format!("--log-level: `{value}` is not quiet|error|warn|info|debug")
                })?;
            }
            "--slow-query-ms" => {
                slow_query_ms =
                    parse_number("--slow-query-ms", &value_of("--slow-query-ms", &mut args)?)?
            }
            "--max-connections" => {
                max_connections = parse_number(
                    "--max-connections",
                    &value_of("--max-connections", &mut args)?,
                )?;
                if max_connections == 0 {
                    return Err("--max-connections must be at least 1".into());
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    if worker && !common.cluster.is_empty() {
        return Err("--worker and --cluster are mutually exclusive: a worker \
                    executes fragments, it does not coordinate other workers"
            .into());
    }
    Ok(Options {
        // A worker loads no data, and a durable daemon may recover
        // everything from --data-dir, so the data-is-required validation
        // only applies to the plain in-memory daemon mode.
        common: if worker || data_dir.is_some() { common } else { common.finish()? },
        port,
        host,
        read_timeout,
        max_connections,
        worker,
        max_fragment_bytes,
        log_level,
        slow_query_ms,
        data_dir,
        wal_sync,
        checkpoint_every,
    })
}

/// Daemon-wide observability shared by every connection thread: the
/// structured logger behind `--log-level`, the slow-query threshold, and
/// the pqd-level metrics registered into the engine's registry (so one
/// `METRICS` dump covers both layers).
struct Daemon {
    logger: Logger,
    slow_query_ms: u64,
    slow_queries: Counter,
    connections_total: Counter,
    connections_active: Gauge,
}

impl Daemon {
    fn new(logger: Logger, slow_query_ms: u64, registry: &MetricsRegistry) -> Self {
        Daemon {
            logger,
            slow_query_ms,
            slow_queries: registry.counter(
                "pqd_slow_queries_total",
                &[],
                "RUNs slower than --slow-query-ms",
            ),
            connections_total: registry.counter(
                "pqd_connections_total",
                &[],
                "Client connections accepted since startup",
            ),
            connections_active: registry.gauge(
                "pqd_connections_active",
                &[],
                "Client connections currently being served",
            ),
        }
    }
}

/// The shared token dictionary: RUN decodes under a read lock, INSERT
/// encodes new tokens under a write lock.
type SharedDictionary = Arc<RwLock<ValueDictionary>>;

/// Handle one `INSERT <relation> <row1>[;<row2>]…` request: the shared
/// validate/encode/apply pipeline, encoding under the dictionary write
/// lock. All rows of a batch land as one delta.
fn handle_insert(
    session: &Session,
    dictionary: &SharedDictionary,
    rest: &str,
) -> Result<String, String> {
    insert_rows(
        session,
        rest,
        "INSERT needs: INSERT <relation> <v1,...,vk>[;<v1,...,vk>]...",
        |tokens| {
            let mut dictionary = dictionary.write().unwrap_or_else(PoisonError::into_inner);
            tokens.iter().map(|t| dictionary.encode(t)).collect()
        },
    )
}

/// Serve one connection: its own session, its own budget/seed, shared
/// engine. Any I/O error simply ends the connection.
fn serve(stream: TcpStream, mut session: Session, dictionary: SharedDictionary, daemon: Arc<Daemon>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let fold = |message: String| message.replace('\n', " | ");
    // Metrics of this connection's most recent successful RUN, so STATS
    // can report the measured per-round wire traffic of a cluster run.
    let mut last_metrics: Option<RunMetrics> = None;
    let _ = writeln!(
        writer,
        "READY {} relation(s) p={} seed={} backend={}",
        session.engine().snapshot().database().num_relations(),
        session.servers(),
        session.seed(),
        session.backend().describe()
    );
    let _ = writer.flush();
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            // The per-connection read timeout surfaces as WouldBlock (unix)
            // or TimedOut; tell the client why it is being dropped.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let _ = writeln!(writer, "ERR idle timeout, closing");
                let _ = writer.flush();
                break;
            }
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (command, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let result = match command.to_ascii_uppercase().as_str() {
            "RUN" => match session.run_traced(rest) {
                Ok((run, trace)) => {
                    // Decode everything first, then write: socket writes can
                    // block on a slow client's backpressure, and holding the
                    // dictionary read lock across them would wedge every
                    // INSERT (and with it all other decoding) server-wide.
                    let rows: Vec<String> = {
                        let dictionary =
                            dictionary.read().unwrap_or_else(PoisonError::into_inner);
                        run.outcome
                            .output
                            .iter()
                            .map(|tuple| {
                                // Backslash-escape the delimiter so
                                // string-valued cells containing commas stay
                                // unambiguous: `\` → `\\`, `,` → `\,`.
                                let row: Vec<String> = tuple
                                    .iter()
                                    .map(|&v| {
                                        dictionary
                                            .decode_or_number(v)
                                            .replace('\\', "\\\\")
                                            .replace(',', "\\,")
                                    })
                                    .collect();
                                row.join(",")
                            })
                            .collect()
                    };
                    for row in rows {
                        let _ = writeln!(writer, "ROW {row}");
                    }
                    // Cluster runs append the measured wire traffic; the
                    // leading fields stay byte-identical for existing
                    // clients and greps.
                    let wire = if run.outcome.metrics.is_measured() {
                        format!(" bytes_on_wire={}", run.outcome.metrics.bytes_on_wire())
                    } else {
                        String::new()
                    };
                    // Cluster sessions always say whether the answer came
                    // off the workers or the simulator fallback, so a
                    // client need not infer health from a missing
                    // bytes_on_wire field.
                    let degraded = if session.backend().is_cluster() {
                        format!(" degraded={}", run.outcome.metrics.degraded)
                    } else {
                        String::new()
                    };
                    let result = writeln!(
                        writer,
                        "OK {} rows strategy={} cache={}{wire}{degraded}",
                        run.outcome.output.len(),
                        run.plan.strategy.name(),
                        if run.cache_hit { "HIT" } else { "MISS" }
                    );
                    if daemon.slow_query_ms > 0
                        && trace.total() >= Duration::from_millis(daemon.slow_query_ms)
                    {
                        daemon.slow_queries.inc();
                        daemon
                            .logger
                            .warn("slow query")
                            .kv("peer", &peer)
                            .kvs(trace.summary_fields())
                            .emit();
                    }
                    last_metrics = Some(run.outcome.metrics);
                    result
                }
                Err(e) => writeln!(writer, "ERR {}", fold(e.to_string())),
            },
            "EXPLAIN" => match session.explain(rest) {
                Ok(text) => {
                    let _ = write!(writer, "{text}");
                    writeln!(writer, "OK")
                }
                Err(e) => writeln!(writer, "ERR {}", fold(e.to_string())),
            },
            "INSERT" => match handle_insert(&session, &dictionary, rest) {
                Ok(message) => writeln!(writer, "OK {message}"),
                Err(e) => writeln!(writer, "ERR {}", fold(e)),
            },
            "SERVERS" => match rest.parse::<usize>() {
                Ok(p) if p >= 2 => {
                    session.set_servers(p);
                    writeln!(writer, "OK p={p}")
                }
                _ => writeln!(writer, "ERR SERVERS needs a number >= 2, got `{rest}`"),
            },
            "SEED" => match rest.parse::<u64>() {
                Ok(seed) => {
                    session.set_seed(seed);
                    writeln!(writer, "OK seed={seed}")
                }
                Err(_) => writeln!(writer, "ERR SEED needs a number, got `{rest}`"),
            },
            "STATS" => {
                let snapshot = session.engine().snapshot();
                let cache = session.engine().cache_stats();
                let _ = writeln!(
                    writer,
                    "{} relation(s) {} tuple(s) fingerprint {:#018x}",
                    snapshot.database().num_relations(),
                    snapshot.database().total_tuples(),
                    snapshot.fingerprint()
                );
                let _ = writeln!(
                    writer,
                    "plan cache {} cached {} hit(s) {} miss(es) {} invalidated",
                    cache.len, cache.hits, cache.misses, cache.invalidated
                );
                let _ = writeln!(writer, "backend {}", session.backend().describe());
                if let Some(metrics) = &last_metrics {
                    if metrics.is_measured() {
                        for round in &metrics.rounds {
                            let _ = writeln!(
                                writer,
                                "last run round {} bytes_on_wire={} wall_micros={}",
                                round.round,
                                round.total_wire_bytes(),
                                round.wall_micros
                            );
                        }
                        let _ = writeln!(
                            writer,
                            "last run total bytes_on_wire={} result_bytes={}",
                            metrics.bytes_on_wire(),
                            metrics.result_wire_bytes
                        );
                    }
                }
                // Cumulative server-wide totals from the metrics registry —
                // the last-run lines above cover only this connection's most
                // recent RUN; these cover every query since startup.
                let registry = session.engine().metrics();
                let ok_runs = registry.counter_value("pq_queries_total", &[("status", "ok")]);
                let err_runs = registry.counter_value("pq_queries_total", &[("status", "error")]);
                let _ = writeln!(
                    writer,
                    "totals {} queries ({} ok, {} err) {} rows bytes_on_wire={}",
                    ok_runs + err_runs,
                    ok_runs,
                    err_runs,
                    registry.counter_value("pq_query_rows_total", &[]),
                    registry.counter_value("pq_bytes_on_wire_total", &[]),
                );
                let _ = writeln!(
                    writer,
                    "totals connections active={} served={} slow_queries={}",
                    daemon.connections_active.get(),
                    daemon.connections_total.get(),
                    daemon.slow_queries.get(),
                );
                writeln!(writer, "OK")
            }
            "METRICS" => {
                let snapshot = session.engine().metrics().snapshot();
                if rest.eq_ignore_ascii_case("json") {
                    let _ = writeln!(writer, "{}", json_text(&snapshot));
                } else {
                    let _ = write!(writer, "{}", prometheus_text(&snapshot));
                }
                writeln!(writer, "OK")
            }
            "SHUTDOWN" => {
                // Durable daemons leave a clean directory behind: flush the
                // log and write a final checkpoint so the next startup
                // replays nothing.
                match session.engine().checkpoint() {
                    Ok(Some(lsn)) => {
                        daemon
                            .logger
                            .info("final checkpoint written")
                            .kv("covered_lsn", lsn)
                            .emit();
                        let _ = writeln!(writer, "OK shutting down (checkpoint at lsn {lsn})");
                    }
                    Ok(None) => {
                        let _ = writeln!(writer, "OK shutting down");
                    }
                    Err(e) => {
                        daemon.logger.error("final checkpoint failed").kv("error", &e).emit();
                        let _ = writeln!(writer, "OK shutting down (checkpoint failed: {e})");
                    }
                }
                let _ = writer.flush();
                if let Some(config) = session.backend().cluster_config() {
                    pq_mpc::net::shutdown_workers(config);
                }
                daemon
                    .logger
                    .info("shutdown requested")
                    .kv("peer", &peer)
                    .emit();
                std::process::exit(0);
            }
            "QUIT" | "EXIT" => {
                let _ = writeln!(writer, "OK bye");
                let _ = writer.flush();
                break;
            }
            other => writeln!(
                writer,
                "ERR unknown command `{other}`; try RUN, EXPLAIN, INSERT, SERVERS, SEED, STATS, METRICS, SHUTDOWN, QUIT"
            ),
        };
        if result.is_err() || writer.flush().is_err() {
            break;
        }
    }
    daemon
        .logger
        .info("connection closed")
        .kv("peer", &peer)
        .emit();
}

/// RAII share of the connection budget: incremented on accept, given back
/// when the serving thread (or the busy-rejection path) drops it. Mirrors
/// the count into the `pqd_connections_active` gauge.
struct ConnectionPermit(Arc<AtomicUsize>, Gauge);

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        self.1.sub(1);
    }
}

/// Worker mode: bind, announce, and speak the binary frame protocol until
/// a coordinator sends a `Shutdown` frame. The worker keeps its own
/// registry of frame/byte/round counters and logs their totals on exit.
fn run_worker(options: &Options) -> ! {
    let logger = Logger::new("pqd", options.log_level);
    let listener = match TcpListener::bind((options.host.as_str(), options.port)) {
        Ok(l) => l,
        Err(e) => {
            logger
                .error("worker cannot bind")
                .kv("addr", format_args!("{}:{}", options.host, options.port))
                .kv("error", e)
                .emit();
            std::process::exit(1);
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("pqd: worker listening on {addr}"),
        Err(_) => println!("pqd: worker listening"),
    }
    let registry = MetricsRegistry::new();
    let obs = pq_mpc::net::WorkerObs::new(&registry, logger.clone());
    let limits = pq_mpc::net::WorkerLimits {
        max_fragment_bytes: options.max_fragment_bytes,
    };
    // The worker's own executor pool: every Execute frame's fragment join
    // runs on it, so `--threads` is worker-side parallelism.
    let pool = pq_exec::TaskPool::new(options.common.threads);
    pool.attach_registry(&registry);
    if let Err(e) = pq_mpc::net::serve_worker_pooled(&listener, &obs, limits, &pool) {
        logger.error("worker failed").kv("error", e).emit();
        std::process::exit(1);
    }
    logger
        .info("worker totals")
        .kv("frames", registry.counter_value("pq_worker_frames_total", &[]))
        .kv(
            "wire_bytes",
            registry.counter_value("pq_worker_wire_bytes_total", &[]),
        )
        .kv("rounds", registry.counter_value("pq_worker_rounds_total", &[]))
        .emit();
    println!("pqd: worker shut down");
    std::process::exit(0);
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            Logger::new("pqd", LogLevel::Info).error(message).emit();
            std::process::exit(2);
        }
    };
    if options.worker {
        run_worker(&options);
    }
    let logger = Logger::new("pqd", options.log_level);
    // The base state from --data, when given (required without --data-dir;
    // the initial content of a fresh --data-dir; ignored by an existing
    // --data-dir, which recovers its own durable state).
    let base = if options.common.data.is_empty() {
        None
    } else {
        match load_database_files(&options.common.data) {
            Ok(loaded) => Some(loaded),
            Err(e) => {
                logger.error(e.to_string()).emit();
                std::process::exit(1);
            }
        }
    };
    let (engine, dictionary): (Engine, SharedDictionary) = match &options.data_dir {
        Some(dir) => {
            let durability = DurabilityOptions {
                sync: options.wal_sync,
                checkpoint_every: options.checkpoint_every,
            };
            let opened = match open_durable(dir, durability, options.common.servers, base) {
                Ok(opened) => opened,
                Err(e) => {
                    logger
                        .error("cannot open data dir")
                        .kv("dir", dir.display())
                        .kv("error", e)
                        .emit();
                    std::process::exit(1);
                }
            };
            logger
                .info("durable state opened")
                .kv("dir", dir.display())
                .kv("sync", options.wal_sync.name())
                .kv(
                    "source",
                    if opened.from_checkpoint { "checkpoint" } else { "--data" },
                )
                .kv("replayed_records", opened.recovered_records)
                .kv("replayed_rows", opened.recovered_rows)
                .kv("torn_tail", opened.torn_tail)
                .kv("checkpoints_discarded", opened.checkpoints_discarded)
                .emit();
            let engine = opened
                .engine
                .with_seed(options.common.seed)
                .with_backend(options.common.backend())
                .with_threads(options.common.threads);
            (engine, opened.dictionary)
        }
        None => {
            let (database, dictionary) = base.expect("finish() required --data");
            let engine = Engine::new(database, options.common.servers)
                .with_seed(options.common.seed)
                .with_backend(options.common.backend())
                .with_threads(options.common.threads);
            (engine, Arc::new(RwLock::new(dictionary)))
        }
    };
    let daemon = Arc::new(Daemon::new(
        logger.clone(),
        options.slow_query_ms,
        &engine.metrics(),
    ));
    let listener = match TcpListener::bind((options.host.as_str(), options.port)) {
        Ok(l) => l,
        Err(e) => {
            logger
                .error("cannot bind")
                .kv("addr", format_args!("{}:{}", options.host, options.port))
                .kv("error", e)
                .emit();
            std::process::exit(1);
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("pqd: listening on {addr}"),
        Err(_) => println!("pqd: listening"),
    }
    let active = Arc::new(AtomicUsize::new(0));
    let read_timeout = (options.read_timeout > 0).then(|| Duration::from_secs(options.read_timeout));
    // A nonblocking accept loop instead of `listener.incoming()`: the
    // listener is polled every 50 ms so a SIGTERM/SIGINT noticed by the
    // handler turns into the graceful SHUTDOWN path below instead of the
    // process dying mid-write. Accepted streams are switched back to
    // blocking before they reach their serving thread.
    install_signal_handlers();
    if let Err(e) = listener.set_nonblocking(true) {
        logger.error("cannot poll listener").kv("error", e).emit();
        std::process::exit(1);
    }
    while !SHUTDOWN_REQUESTED.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let permit =
                    ConnectionPermit(Arc::clone(&active), daemon.connections_active.clone());
                permit.1.add(1);
                if permit.0.fetch_add(1, Ordering::SeqCst) >= options.max_connections {
                    // Over the cap: one clean protocol line, then hang up
                    // (dropping the permit releases the slot we took).
                    let mut writer = BufWriter::new(stream);
                    let _ = writeln!(writer, "ERR busy ({} connections)", options.max_connections);
                    let _ = writer.flush();
                    continue;
                }
                daemon.connections_total.inc();
                if let Some(timeout) = read_timeout {
                    // A connection that stays silent past the timeout gets
                    // its blocking read cancelled and is closed.
                    let _ = stream.set_read_timeout(Some(timeout));
                }
                // One thread + one session per connection; the engine handle
                // (snapshot + plan cache) is shared by all of them.
                let session = engine.session();
                let dictionary = Arc::clone(&dictionary);
                let daemon = Arc::clone(&daemon);
                std::thread::spawn(move || {
                    let _permit = permit;
                    serve(stream, session, dictionary, daemon);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => logger.warn("accept failed").kv("error", e).emit(),
        }
    }
    // The graceful signal path: same teardown as the SHUTDOWN command.
    // In-flight connection threads keep their engine clones and finish
    // their current request; new connections are no longer accepted.
    logger
        .info("signal received, shutting down")
        .kv("connections_active", active.load(Ordering::SeqCst))
        .emit();
    match engine.checkpoint() {
        Ok(Some(lsn)) => logger
            .info("final checkpoint written")
            .kv("covered_lsn", lsn)
            .emit(),
        Ok(None) => {}
        Err(e) => logger.error("final checkpoint failed").kv("error", &e).emit(),
    }
    if !options.common.cluster.is_empty() {
        pq_mpc::net::shutdown_workers(&options.common.cluster_config());
    }
    std::process::exit(0);
}
