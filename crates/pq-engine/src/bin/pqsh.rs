//! `pqsh` — the parallel-query shell.
//!
//! Loads CSV/TSV relations into the engine and evaluates conjunctive
//! queries over them through a [`Session`], either as one-shot commands
//! (`explain`, `run`, `stats`) or as an interactive shell when no command
//! is given. Session-local settings (`servers`, `seed`) can be changed
//! mid-REPL without touching the engine other clients would share.
//!
//! ```text
//! pqsh --data data/sample run "Q(x, y, z) :- E1(x, y), E2(y, z), E3(z, x)"
//! ```

use pq_engine::{ClusterConfig, Engine, EngineRun, ExecBackend, Session};
use pq_obs::{json_text, prometheus_text, QueryTrace};
use pq_relation::{load_database_files, Relation, ValueDictionary};
use std::io::{BufRead, IsTerminal, Write};

#[path = "cli_common.rs"]
mod cli_common;
use cli_common::{insert_rows, parse_number, value_of, CommonArgs};

const USAGE: &str = "\
pqsh — parallel-query shell (parser → cost-based planner → threaded executor)

USAGE:
    pqsh [OPTIONS] --data PATH... [COMMAND]

OPTIONS:
    --data PATH      CSV/TSV file, or directory of .csv/.tsv files
                     (repeatable; one shared value dictionary)
    --servers P      number of logical servers (default 64)
    --seed S         hash seed for the routers (default 7)
    --threads N      executor-pool parallelism: N-1 persistent worker
                     threads plus the helping caller; 1 runs queries fully
                     inline (default: PQ_THREADS, then the machine's
                     available parallelism)
    --limit N        maximum rows printed by `run` (default 20)
    --cluster ADDRS  execute on pqd --worker processes at these host:port
                     addresses (repeatable and/or comma-separated) instead
                     of the in-process simulator
    --cluster-retries N
                     extra attempts after a failed cluster run, each on a
                     freshly rebuilt topology (default 2)
    --cluster-deadline-ms MS
                     per-query wall-clock budget across all cluster
                     attempts, backoff included (default 30000)
    --cluster-fallback P
                     when the cluster stays unhealthy past the retry
                     budget: error (default), or simulator to degrade
                     gracefully (the run summary then says `degraded`)
    -h, --help       this text

COMMAND (one-shot; omit to enter the interactive shell):
    explain QUERY    parse + plan, print the explainable plan
    run QUERY        parse + plan + execute, print rows and a summary
    analyze QUERY    like `run`, plus the query's lifecycle trace: how long
                     parse, cache lookup, plan and execute (and each cluster
                     round) took
    stats            print the loaded relations and their statistics
    metrics [json]   dump this process's cumulative metrics (queries,
                     latency quantiles, cache counters) in the Prometheus
                     text format, or as one JSON document

REPL-only commands (take effect immediately):
    insert R V1,...,Vk[;V1,...,Vk]...
                     append one or more rows to relation R, all as one
                     delta (O(delta): only R's statistics are refreshed,
                     plans over other relations stay cached; `\\,` escapes
                     a comma inside a value, `\\;` a semicolon)
    servers P        change this session's server budget p
    seed S           change this session's router hash seed
    backend [simulator | cluster ADDRS]
                     show or change where this session executes; cluster
                     runs report measured bytes on the wire per round
    help             this text
    quit             leave the shell

QUERY syntax: full conjunctive queries, e.g.
    \"Q(x, y, z) :- R(x, y), S(y, z)\"
";

struct Options {
    common: CommonArgs,
    limit: usize,
    command: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut common = CommonArgs::new();
    let mut limit = 20usize;
    let mut command = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if common.consume(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--limit" => limit = parse_number("--limit", &value_of("--limit", &mut args)?)?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            other => {
                command.push(other.to_string());
                command.extend(args.by_ref());
            }
        }
    }
    Ok(Options {
        common: common.finish()?,
        limit,
        command,
    })
}

fn print_rows(output: &Relation, dictionary: &ValueDictionary, limit: usize) {
    let attrs = output.schema().attributes();
    println!("{}", attrs.join(" | "));
    println!("{}", "-".repeat(attrs.join(" | ").len().max(4)));
    for tuple in output.iter().take(limit) {
        let row: Vec<String> = tuple
            .iter()
            .map(|&v| dictionary.decode_or_number(v))
            .collect();
        println!("{}", row.join(" | "));
    }
}

fn print_run(run: &EngineRun, dictionary: &ValueDictionary, limit: usize) {
    let output = &run.outcome.output;
    print_rows(output, dictionary, limit);
    let shown = output.len().min(limit);
    let elided = if shown < output.len() {
        format!(" (showing {shown})")
    } else {
        String::new()
    };
    // Cluster runs carry a measured wire-traffic account next to the
    // model's bit accounting; the simulator has no wire to measure.
    let wire = if run.outcome.metrics.is_measured() {
        format!(
            " · bytes on wire: {}",
            run.outcome.metrics.bytes_on_wire()
        )
    } else {
        String::new()
    };
    // A degraded run answered from the simulator fallback because the
    // cluster stayed unhealthy past its retry budget — exact rows, but no
    // measured wire traffic.
    let degraded = if run.outcome.metrics.degraded {
        " · degraded: simulator fallback"
    } else {
        ""
    };
    println!(
        "-- {} rows{elided} · {:.1} ms · strategy: {} · rounds: {} · max load: {} bits · \
         replication rate: {:.2}{wire}{degraded} · plan cache: {}",
        output.len(),
        run.outcome.wall.as_secs_f64() * 1e3,
        run.plan.strategy.name(),
        run.outcome.metrics.num_rounds(),
        run.outcome.metrics.max_load(),
        run.outcome.metrics.replication_rate(),
        if run.cache_hit { "HIT" } else { "MISS" },
    );
}

/// The `analyze` tail: one line per lifecycle phase, then the total — the
/// human-readable rendering of a [`QueryTrace`].
fn print_trace(trace: &QueryTrace) {
    let cache = match trace.cache_hit {
        Some(true) => " (hit)",
        Some(false) => " (miss)",
        None => "",
    };
    println!("query #{} lifecycle:", trace.query_id);
    for span in &trace.spans {
        let note = if span.phase.name() == "cache_lookup" {
            cache
        } else {
            ""
        };
        println!(
            "  {:<12} {:>10.3} ms{note}",
            span.phase.name(),
            span.duration.as_secs_f64() * 1e3
        );
    }
    println!(
        "  {:<12} {:>10.3} ms",
        "total",
        trace.total().as_secs_f64() * 1e3
    );
}

fn print_stats(session: &Session, dictionary: &ValueDictionary) {
    let snapshot = session.engine().snapshot();
    let db = snapshot.database();
    println!(
        "{} relations · {} tuples · domain of {} distinct values · p = {} servers · seed {} · \
         backend {}",
        db.num_relations(),
        db.total_tuples(),
        dictionary.len(),
        session.servers(),
        session.seed(),
        session.backend().describe()
    );
    for relation in db.relations() {
        println!(
            "  {}({}) · {} tuples · {} bits",
            relation.name(),
            relation.schema().attributes().join(", "),
            relation.len(),
            relation.size_bits(db.bits_per_value())
        );
    }
    let cache = session.engine().cache_stats();
    let per_p: Vec<String> = cache
        .per_p
        .iter()
        .map(|(p, n)| format!("p={p}: {n}"))
        .collect();
    println!(
        "plan cache: {} cached · {} hit(s) · {} miss(es) · {} invalidated{}",
        cache.len,
        cache.hits,
        cache.misses,
        cache.invalidated,
        if per_p.is_empty() {
            String::new()
        } else {
            format!(" · {}", per_p.join(" · "))
        }
    );
}

/// The REPL's `insert R v1,...,vk[;v1,...,vk]…`: the shared
/// validate/encode/apply pipeline over the locally-owned dictionary; a
/// `;`-separated batch lands as one delta.
fn dispatch_insert(
    session: &Session,
    dictionary: &mut ValueDictionary,
    arguments: &str,
) -> Result<String, String> {
    insert_rows(
        session,
        arguments,
        "`insert` needs: insert RELATION V1,...,Vk[;V1,...,Vk]...",
        |tokens| tokens.iter().map(|t| dictionary.encode(t)).collect(),
    )
}

/// One command. Returns false on an engine/parse error (the REPL keeps
/// going; one-shot mode exits non-zero). Errors are reported through
/// `report`, which the REPL uses to prefix the input line number.
fn dispatch(
    session: &mut Session,
    dictionary: &mut ValueDictionary,
    limit: usize,
    command: &str,
    query: &str,
    report: &dyn Fn(String),
) -> bool {
    match command {
        "insert" => match dispatch_insert(session, dictionary, query) {
            Ok(message) => {
                println!("{message}");
                true
            }
            Err(e) => {
                report(e);
                false
            }
        },
        "explain" => match session.explain(query) {
            Ok(text) => {
                print!("{text}");
                true
            }
            Err(e) => {
                report(e.to_string());
                false
            }
        },
        "run" => match session.run(query) {
            Ok(run) => {
                print_run(&run, dictionary, limit);
                true
            }
            Err(e) => {
                report(e.to_string());
                false
            }
        },
        "analyze" => match session.run_traced(query) {
            Ok((run, trace)) => {
                print_run(&run, dictionary, limit);
                print_trace(&trace);
                true
            }
            Err(e) => {
                report(e.to_string());
                false
            }
        },
        "stats" => {
            print_stats(session, dictionary);
            true
        }
        "metrics" => match query {
            "" => {
                print!("{}", prometheus_text(&session.engine().metrics().snapshot()));
                true
            }
            "json" => {
                println!("{}", json_text(&session.engine().metrics().snapshot()));
                true
            }
            other => {
                report(format!("`metrics` takes nothing or `json`, got `{other}`"));
                false
            }
        },
        "servers" => match query.parse::<usize>() {
            Ok(p) if p >= 2 => {
                session.set_servers(p);
                println!("servers set to p = {p} (this session only)");
                true
            }
            _ => {
                report(format!(
                    "`servers` needs a number ≥ 2, got `{query}`"
                ));
                false
            }
        },
        "seed" => match query.parse::<u64>() {
            Ok(seed) => {
                session.set_seed(seed);
                println!("seed set to {seed} (this session only)");
                true
            }
            Err(_) => {
                report(format!("`seed` needs a number, got `{query}`"));
                false
            }
        },
        "backend" => {
            let (kind, addrs) = query.split_once(char::is_whitespace).unwrap_or((query, ""));
            match kind {
                "" => {
                    println!("backend: {}", session.backend().describe());
                    true
                }
                "simulator" => {
                    session.set_backend(ExecBackend::Simulator);
                    println!("backend set to simulator (this session only)");
                    true
                }
                "cluster" => {
                    let workers: Vec<String> = addrs
                        .split([',', ' '])
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect();
                    if workers.is_empty() {
                        report("`backend cluster` needs host:port addresses".to_string());
                        return false;
                    }
                    let n = workers.len();
                    session.set_backend(ExecBackend::cluster(ClusterConfig::new(workers)));
                    println!("backend set to cluster({n} workers) (this session only)");
                    true
                }
                other => {
                    report(format!(
                        "`backend` takes `simulator` or `cluster ADDRS`, got `{other}`"
                    ));
                    false
                }
            }
        }
        other => {
            report(format!(
                "unknown command `{other}`; try explain, run, analyze, insert, stats, metrics, \
                 servers, seed, backend or help"
            ));
            false
        }
    }
}

fn repl(session: &mut Session, dictionary: &mut ValueDictionary, limit: usize) {
    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!(
            "pqsh: {} relations loaded; try `run Q(x, y) :- R(x, y)` or `help`",
            session.engine().snapshot().database().num_relations()
        );
    }
    let stdin = std::io::stdin();
    let mut line_no = 0usize;
    loop {
        if interactive {
            print!("pqsh> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        line_no += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (command, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match command {
            "quit" | "exit" => break,
            "help" => print!("{USAGE}"),
            _ => {
                // Same `path:line:` shape as the CSV loader's diagnostics,
                // with stdin standing in for the file.
                let report = |message: String| eprintln!("stdin:{line_no}: {message}");
                dispatch(session, dictionary, limit, command, rest.trim(), &report);
            }
        }
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("pqsh: {message}");
            std::process::exit(2);
        }
    };
    let (database, mut dictionary) = match load_database_files(&options.common.data) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("pqsh: {e}");
            std::process::exit(1);
        }
    };
    let engine = Engine::new(database, options.common.servers)
        .with_seed(options.common.seed)
        .with_backend(options.common.backend())
        .with_threads(options.common.threads);
    let mut session = engine.session();

    match options.command.split_first() {
        None => repl(&mut session, &mut dictionary, options.limit),
        Some((command, rest)) => {
            let query = rest.join(" ");
            if command == "help" {
                print!("{USAGE}");
                return;
            }
            if matches!(command.as_str(), "servers" | "seed") {
                eprintln!(
                    "pqsh: `{command}` is REPL-only (a one-shot session ends immediately, so \
                     it would have no effect); use the --{command} option instead"
                );
                std::process::exit(2);
            }
            if command == "backend" {
                eprintln!(
                    "pqsh: `backend` is REPL-only (a one-shot session ends immediately, so \
                     it would have no effect); use the --cluster option instead"
                );
                std::process::exit(2);
            }
            if command == "insert" {
                eprintln!(
                    "pqsh: `insert` is REPL-only (the in-memory database dies with the \
                     process, so a one-shot insert would be lost); use the shell, or pqd \
                     for durable serving"
                );
                std::process::exit(2);
            }
            if !matches!(
                command.as_str(),
                "stats" | "explain" | "run" | "analyze" | "metrics"
            ) {
                eprintln!(
                    "pqsh: unknown one-shot command `{command}`; try explain, run, analyze, \
                     stats, metrics or help"
                );
                std::process::exit(2);
            }
            if command == "stats" && !query.is_empty() {
                eprintln!("pqsh: `stats` takes no arguments");
                std::process::exit(2);
            }
            if matches!(command.as_str(), "explain" | "run" | "analyze") && query.is_empty() {
                eprintln!("pqsh: `{command}` needs a query argument");
                std::process::exit(2);
            }
            let report = |message: String| eprintln!("{message}");
            if !dispatch(
                &mut session,
                &mut dictionary,
                options.limit,
                command,
                &query,
                &report,
            ) {
                std::process::exit(1);
            }
        }
    }
}
