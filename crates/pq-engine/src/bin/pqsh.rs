//! `pqsh` — the parallel-query shell.
//!
//! Loads CSV/TSV relations into the engine and evaluates conjunctive
//! queries over them, either as one-shot commands (`explain`, `run`,
//! `stats`) or as an interactive shell when no command is given.
//!
//! ```text
//! pqsh --data data/sample run "Q(x, y, z) :- E1(x, y), E2(y, z), E3(z, x)"
//! ```

use pq_engine::{Engine, EngineRun};
use pq_relation::{load_database_files, Relation, ValueDictionary};
use std::io::{BufRead, IsTerminal, Write};
use std::path::PathBuf;

const USAGE: &str = "\
pqsh — parallel-query shell (parser → cost-based planner → threaded executor)

USAGE:
    pqsh [OPTIONS] --data PATH... [COMMAND]

OPTIONS:
    --data PATH      CSV/TSV file, or directory of .csv/.tsv files
                     (repeatable; one shared value dictionary)
    --servers P      number of simulated servers (default 64)
    --seed S         hash seed for the routers (default 7)
    --limit N        maximum rows printed by `run` (default 20)
    -h, --help       this text

COMMAND (one-shot; omit to enter the interactive shell):
    explain QUERY    parse + plan, print the explainable plan
    run QUERY        parse + plan + execute, print rows and a summary
    stats            print the loaded relations and their statistics

QUERY syntax: full conjunctive queries, e.g.
    \"Q(x, y, z) :- R(x, y), S(y, z)\"
";

struct Options {
    data: Vec<PathBuf>,
    servers: usize,
    seed: u64,
    limit: usize,
    command: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        data: Vec::new(),
        servers: 64,
        seed: 7,
        limit: 20,
        command: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--data" => options.data.push(PathBuf::from(value_of("--data")?)),
            "--servers" => {
                let v = value_of("--servers")?;
                options.servers = v
                    .parse()
                    .map_err(|_| format!("--servers: `{v}` is not a number"))?;
            }
            "--seed" => {
                let v = value_of("--seed")?;
                options.seed = v
                    .parse()
                    .map_err(|_| format!("--seed: `{v}` is not a number"))?;
            }
            "--limit" => {
                let v = value_of("--limit")?;
                options.limit = v
                    .parse()
                    .map_err(|_| format!("--limit: `{v}` is not a number"))?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            other => {
                options.command.push(other.to_string());
                options.command.extend(args.by_ref());
            }
        }
    }
    if options.data.is_empty() {
        return Err("no data given; pass --data FILE_OR_DIR at least once (see --help)".into());
    }
    Ok(options)
}

fn print_rows(output: &Relation, dictionary: &ValueDictionary, limit: usize) {
    let attrs = output.schema().attributes();
    println!("{}", attrs.join(" | "));
    println!("{}", "-".repeat(attrs.join(" | ").len().max(4)));
    for tuple in output.iter().take(limit) {
        let row: Vec<String> = tuple
            .values()
            .iter()
            .map(|&v| dictionary.decode_or_number(v))
            .collect();
        println!("{}", row.join(" | "));
    }
}

fn print_run(run: &EngineRun, dictionary: &ValueDictionary, limit: usize) {
    let output = &run.outcome.output;
    print_rows(output, dictionary, limit);
    let shown = output.len().min(limit);
    let elided = if shown < output.len() {
        format!(" (showing {shown})")
    } else {
        String::new()
    };
    println!(
        "-- {} rows{elided} · {:.1} ms · strategy: {} · rounds: {} · max load: {} bits · \
         replication rate: {:.2} · plan cache: {}",
        output.len(),
        run.outcome.wall.as_secs_f64() * 1e3,
        run.plan.strategy.name(),
        run.outcome.metrics.num_rounds(),
        run.outcome.metrics.max_load(),
        run.outcome.metrics.replication_rate(),
        if run.cache_hit { "HIT" } else { "MISS" },
    );
}

fn print_stats(engine: &Engine, dictionary: &ValueDictionary) {
    let db = engine.database();
    println!(
        "{} relations · {} tuples · domain of {} distinct values · p = {} servers",
        db.num_relations(),
        db.total_tuples(),
        dictionary.len(),
        engine.servers()
    );
    for relation in db.relations() {
        println!(
            "  {}({}) · {} tuples · {} bits",
            relation.name(),
            relation.schema().attributes().join(", "),
            relation.len(),
            relation.size_bits(db.bits_per_value())
        );
    }
    let cache = engine.cache_stats();
    println!(
        "plan cache: {} cached · {} hit(s) · {} miss(es)",
        cache.len, cache.hits, cache.misses
    );
}

/// One command. Returns false on an engine/parse error (the REPL keeps
/// going; one-shot mode exits non-zero).
fn dispatch(
    engine: &mut Engine,
    dictionary: &ValueDictionary,
    limit: usize,
    command: &str,
    query: &str,
) -> bool {
    match command {
        "explain" => match engine.explain(query) {
            Ok(text) => {
                print!("{text}");
                true
            }
            Err(e) => {
                eprintln!("{e}");
                false
            }
        },
        "run" => match engine.run(query) {
            Ok(run) => {
                print_run(&run, dictionary, limit);
                true
            }
            Err(e) => {
                eprintln!("{e}");
                false
            }
        },
        "stats" => {
            print_stats(engine, dictionary);
            true
        }
        other => {
            eprintln!("unknown command `{other}`; try explain, run, stats or help");
            false
        }
    }
}

fn repl(engine: &mut Engine, dictionary: &ValueDictionary, limit: usize) {
    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!(
            "pqsh: {} relations loaded; try `run Q(x, y) :- R(x, y)` or `help`",
            engine.database().num_relations()
        );
    }
    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("pqsh> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (command, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match command {
            "quit" | "exit" => break,
            "help" => print!("{USAGE}"),
            _ => {
                dispatch(engine, dictionary, limit, command, rest.trim());
            }
        }
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("pqsh: {message}");
            std::process::exit(2);
        }
    };
    let (database, dictionary) = match load_database_files(&options.data) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("pqsh: {e}");
            std::process::exit(1);
        }
    };
    let mut engine = Engine::new(database, options.servers).with_seed(options.seed);

    match options.command.split_first() {
        None => repl(&mut engine, &dictionary, options.limit),
        Some((command, rest)) => {
            let query = rest.join(" ");
            if command == "help" {
                print!("{USAGE}");
                return;
            }
            if command == "stats" && !query.is_empty() {
                eprintln!("pqsh: `stats` takes no arguments");
                std::process::exit(2);
            }
            if !matches!(command.as_str(), "stats" | "explain" | "run") && query.is_empty() {
                eprintln!("pqsh: unknown command `{command}`; try explain, run, stats or help");
                std::process::exit(2);
            }
            if matches!(command.as_str(), "explain" | "run") && query.is_empty() {
                eprintln!("pqsh: `{command}` needs a query argument");
                std::process::exit(2);
            }
            if !dispatch(&mut engine, &dictionary, options.limit, command, &query) {
                std::process::exit(1);
            }
        }
    }
}
