//! Typed mutation deltas: the engine's O(delta) write path.
//!
//! A [`Delta`] describes an **insert-only** batch of rows, grouped by
//! relation. [`crate::Engine::apply`] consumes one to build the next
//! snapshot copy-on-write: only the touched relations' row buffers and
//! statistics are rebuilt, everything else keeps being shared with the
//! previous snapshot (see [`pq_relation::DatabaseStatistics::apply_inserts`]),
//! and plan-cache invalidation is limited to plans that actually read a
//! touched relation. For arbitrary edits (deletes, schema changes) use the
//! closure-based [`crate::Engine::update`], which recomputes statistics
//! for whatever it cannot prove unchanged.
//!
//! ```
//! use pq_engine::{Delta, Engine};
//! use pq_relation::{Database, Relation, Schema};
//!
//! let mut db = Database::new(64);
//! db.insert(Relation::from_rows(
//!     Schema::from_strs("R", &["a", "b"]),
//!     vec![vec![1, 2]],
//! ));
//! let engine = Engine::new(db, 4);
//! let snapshot = engine
//!     .apply(Delta::insert("R", vec![vec![2, 3], vec![3, 4]]))
//!     .unwrap();
//! assert_eq!(snapshot.database().expect_relation("R").len(), 3);
//! ```

use pq_relation::Value;
use std::collections::BTreeMap;
use std::fmt;

/// An insert-only batch of rows, grouped by relation name.
///
/// Build one with [`Delta::insert`] (or [`Delta::new`] plus
/// [`Delta::and_insert`] for multi-relation batches) and hand it to
/// [`crate::Engine::apply`]. Values are plain domain values (`u64`); the
/// CLI front-ends encode string tokens through their
/// [`pq_relation::ValueDictionary`] before building the delta. Rows are
/// validated (relation exists, arity matches) at apply time, against the
/// snapshot the delta lands on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    inserts: BTreeMap<String, Vec<Vec<Value>>>,
}

impl Delta {
    /// An empty delta (applying it is a no-op returning the current
    /// snapshot).
    pub fn new() -> Self {
        Delta::default()
    }

    /// A delta inserting `rows` into `relation` — the common single-relation
    /// case as one expression.
    pub fn insert(relation: impl Into<String>, rows: Vec<Vec<Value>>) -> Self {
        Delta::new().and_insert(relation, rows)
    }

    /// Add more inserted rows (builder-style; rows for the same relation
    /// accumulate).
    pub fn and_insert(mut self, relation: impl Into<String>, rows: Vec<Vec<Value>>) -> Self {
        self.inserts.entry(relation.into()).or_default().extend(rows);
        self
    }

    /// True when the delta inserts no row at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.values().all(Vec::is_empty)
    }

    /// Total number of inserted rows across all relations.
    pub fn num_rows(&self) -> usize {
        self.inserts.values().map(Vec::len).sum()
    }

    /// Names of the relations this delta touches (with at least one row),
    /// in sorted order.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.inserts
            .iter()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(name, _)| name.as_str())
    }

    /// The grouped rows (relations with empty row lists included).
    pub(crate) fn inserts(&self) -> &BTreeMap<String, Vec<Vec<Value>>> {
        &self.inserts
    }
}

/// Why a [`Delta`] could not be applied. Validation happens before any
/// state is touched, so a rejected delta leaves the engine exactly as it
/// was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names a relation the snapshot does not hold.
    UnknownRelation {
        /// The missing relation.
        relation: String,
        /// What is loaded instead.
        available: Vec<String>,
    },
    /// A row's length does not match the stored relation's arity.
    ArityMismatch {
        /// The relation being inserted into.
        relation: String,
        /// Arity of the stored relation.
        stored: usize,
        /// Length of the offending row.
        given: usize,
    },
    /// The delta was valid but could not be made durable: the write-ahead
    /// log rejected the append (an I/O error). The engine's state is
    /// unchanged — log-before-apply means a delta that never reached the
    /// log is never applied.
    Wal {
        /// The underlying I/O failure, rendered.
        message: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownRelation {
                relation,
                available,
            } => write!(
                f,
                "relation `{relation}` is not loaded (available: {})",
                available.join(", ")
            ),
            DeltaError::ArityMismatch {
                relation,
                stored,
                given,
            } => write!(
                f,
                "relation `{relation}` has {stored} column(s) but a delta row has {given} value(s)"
            ),
            DeltaError::Wal { message } => {
                write!(f, "write-ahead log append failed, delta not applied: {message}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_rows_per_relation() {
        let delta = Delta::insert("R", vec![vec![1, 2]])
            .and_insert("S", vec![vec![3]])
            .and_insert("R", vec![vec![4, 5]]);
        assert_eq!(delta.num_rows(), 3);
        assert!(!delta.is_empty());
        assert_eq!(delta.relations().collect::<Vec<_>>(), vec!["R", "S"]);
        assert_eq!(delta.inserts()["R"], vec![vec![1, 2], vec![4, 5]]);
    }

    #[test]
    fn empty_deltas_are_detected() {
        assert!(Delta::new().is_empty());
        // A relation with zero rows does not count as touched.
        let noop = Delta::insert("R", vec![]);
        assert!(noop.is_empty());
        assert_eq!(noop.relations().count(), 0);
    }

    #[test]
    fn errors_render_readably() {
        let e = DeltaError::UnknownRelation {
            relation: "X".into(),
            available: vec!["R".into(), "S".into()],
        };
        assert!(e.to_string().contains("not loaded"));
        let e = DeltaError::ArityMismatch {
            relation: "R".into(),
            stored: 2,
            given: 3,
        };
        assert!(e.to_string().contains("2 column(s)"), "{e}");
    }
}
