//! Text parser for conjunctive queries.
//!
//! The surface syntax is the usual Datalog-style rule for a full conjunctive
//! query:
//!
//! ```text
//! Q(x, z) :- R(x, y), S(y, z).
//! ```
//!
//! `<-` and `=` are accepted in place of `:-` (the latter makes
//! [`pq_query::ConjunctiveQuery`]'s `Display` output round-trip through the
//! parser), and the trailing period is optional. Every error carries a
//! [`Span`] into the input and renders as a compiler-style message with a
//! caret line, so `pqsh` users see *where* a query went wrong, not just
//! that it did.
//!
//! Queries must be **full** (every body variable appears in the head) and
//! **self-join free** (no relation appears twice in the body) — the paper's
//! query class, and what the downstream algorithms expect. Violations are
//! reported as parse errors with the offending atom or variable underlined.

use pq_query::{Atom, ConjunctiveQuery};
use std::fmt;

/// A byte range into the query text, used to point errors at their cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

impl Span {
    fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

/// A parse (or validation) error with a location and the original text, so
/// `Display` can render a caret diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
    source_text: String,
}

impl ParseError {
    fn new(message: impl Into<String>, span: Span, source_text: &str) -> Self {
        ParseError {
            message: message.into(),
            span,
            source_text: source_text.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        // Locate the line containing the span start.
        let start = self.span.start.min(self.source_text.len());
        let line_start = self.source_text[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = self.source_text[line_start..]
            .find('\n')
            .map_or(self.source_text.len(), |i| line_start + i);
        let line = &self.source_text[line_start..line_end];
        writeln!(f, "  | {line}")?;
        let caret_offset = self.source_text[line_start..start].chars().count();
        let caret_len = self.source_text[start..self.span.end.min(line_end)]
            .chars()
            .count()
            .max(1);
        write!(
            f,
            "  | {}{}",
            " ".repeat(caret_offset),
            "^".repeat(caret_len)
        )
    }
}

impl std::error::Error for ParseError {}

/// A successfully parsed query: the [`ConjunctiveQuery`] plus the head
/// variables *in the order the user wrote them* (query answers are returned
/// in head order, which may differ from body first-occurrence order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedQuery {
    /// The query, named after the head predicate.
    pub query: ConjunctiveQuery,
    /// Head variables in written order.
    pub head: Vec<String>,
}

impl ParsedQuery {
    /// A canonical signature of the query *structure*: relation names and
    /// the join pattern with variables renamed to `v0, v1, …` in body
    /// first-occurrence order, plus the head order. Two queries with equal
    /// signatures get identical plans, whatever the user called the
    /// variables or the query — this is the plan-cache key together with
    /// the statistics fingerprint.
    pub fn signature(&self) -> String {
        fn canon(v: &str, names: &mut Vec<String>) -> String {
            let idx = match names.iter().position(|n| n == v) {
                Some(i) => i,
                None => {
                    names.push(v.to_string());
                    names.len() - 1
                }
            };
            format!("v{idx}")
        }
        let mut names: Vec<String> = Vec::new();
        let mut body = Vec::new();
        for atom in self.query.atoms() {
            let vars: Vec<String> = atom
                .variables()
                .iter()
                .map(|v| canon(v, &mut names))
                .collect();
            body.push(format!("{}({})", atom.relation(), vars.join(",")));
        }
        let head: Vec<String> = self.head.iter().map(|v| canon(v, &mut names)).collect();
        format!("{}=>{}", body.join(","), head.join(","))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Dot,
}

fn tokenize(text: &str) -> Result<Vec<(Token, Span)>, ParseError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = text[i..].chars().next().expect("in bounds");
        match c {
            c if c.is_whitespace() => i += c.len_utf8(),
            '(' => {
                tokens.push((Token::LParen, Span::new(i, i + 1)));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, Span::new(i, i + 1)));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, Span::new(i, i + 1)));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, Span::new(i, i + 1)));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Turnstile, Span::new(i, i + 1)));
                i += 1;
            }
            ':' | '<' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push((Token::Turnstile, Span::new(i, i + 2)));
                    i += 2;
                } else {
                    return Err(ParseError::new(
                        format!("expected `{c}-` (as in `:-`), found a lone `{c}`"),
                        Span::new(i, i + 1),
                        text,
                    ));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = text[i..].chars().next().expect("in bounds");
                    if ch.is_alphanumeric() || ch == '_' || ch == '\'' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(text[start..i].to_string()), Span::new(start, i)));
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span::new(i, i + other.len_utf8()),
                    text,
                ));
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    text: &'a str,
    tokens: Vec<(Token, Span)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&(Token, Span)> {
        self.tokens.get(self.pos)
    }

    fn eof_span(&self) -> Span {
        Span::new(self.text.len(), self.text.len())
    }

    fn error(&self, message: impl Into<String>, span: Span) -> ParseError {
        ParseError::new(message, span, self.text)
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<Span, ParseError> {
        match self.peek() {
            Some((t, span)) if *t == token => {
                let span = *span;
                self.pos += 1;
                Ok(span)
            }
            Some((t, span)) => Err(self.error(
                format!("expected {what}, found `{}`", render(t)),
                *span,
            )),
            None => Err(self.error(
                format!("expected {what}, found end of input"),
                self.eof_span(),
            )),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek() {
            Some((Token::Ident(name), span)) => {
                let out = (name.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            Some((t, span)) => Err(self.error(
                format!("expected {what}, found `{}`", render(t)),
                *span,
            )),
            None => Err(self.error(
                format!("expected {what}, found end of input"),
                self.eof_span(),
            )),
        }
    }

    /// `ident ( var {, var} )`, returning the atom with its full span and
    /// the spans of the individual variables.
    fn atom(&mut self, what: &str) -> Result<(Atom, Span, Vec<Span>), ParseError> {
        let (relation, rel_span) = self.ident(what)?;
        self.expect(
            Token::LParen,
            &format!("`(` after relation name `{relation}`"),
        )?;
        let mut variables = Vec::new();
        let mut var_spans = Vec::new();
        loop {
            let (var, span) = self.ident("a variable name")?;
            variables.push(var);
            var_spans.push(span);
            match self.peek() {
                Some((Token::Comma, _)) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let close = self.expect(Token::RParen, "`,` or `)` in the argument list")?;
        let span = Span::new(rel_span.start, close.end);
        Ok((Atom::new(relation, variables), span, var_spans))
    }
}

fn render(token: &Token) -> String {
    match token {
        Token::Ident(name) => name.clone(),
        Token::LParen => "(".to_string(),
        Token::RParen => ")".to_string(),
        Token::Comma => ",".to_string(),
        Token::Turnstile => ":-".to_string(),
        Token::Dot => ".".to_string(),
    }
}

/// Parse a conjunctive query from text.
///
/// Accepts `Q(x̄) :- body`, `Q(x̄) <- body` and `Q(x̄) = body`, with an
/// optional trailing `.`. Returns a readable, located [`ParseError`] on
/// malformed input, on self-joins, and on non-full queries.
pub fn parse_query(text: &str) -> Result<ParsedQuery, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser {
        text,
        tokens,
        pos: 0,
    };
    let (head_atom, head_span, head_var_spans) = parser.atom("a query head like `Q(x, y)`")?;
    parser.expect(Token::Turnstile, "`:-` between the head and the body")?;

    let mut atoms: Vec<(Atom, Span)> = Vec::new();
    loop {
        let (atom, span, _) = parser.atom("a body atom like `R(x, y)`")?;
        atoms.push((atom, span));
        match parser.peek() {
            Some((Token::Comma, _)) => {
                parser.pos += 1;
            }
            _ => break,
        }
    }
    if let Some((Token::Dot, _)) = parser.peek() {
        parser.pos += 1;
    }
    if let Some((t, span)) = parser.peek() {
        return Err(parser.error(
            format!("unexpected `{}` after the query body", render(t)),
            *span,
        ));
    }

    // Self-join freedom.
    for (i, (a, span)) in atoms.iter().enumerate() {
        if let Some((b, _)) = atoms[..i].iter().find(|(b, _)| b.relation() == a.relation()) {
            return Err(ParseError::new(
                format!(
                    "relation `{}` appears twice in the body; self-joins are not supported \
                     (rename one occurrence and duplicate the data)",
                    b.relation()
                ),
                *span,
                text,
            ));
        }
    }

    // Head variables: distinct.
    let head_vars = head_atom.variables().to_vec();
    for (i, v) in head_vars.iter().enumerate() {
        if head_vars[..i].contains(v) {
            return Err(ParseError::new(
                format!("variable `{v}` is repeated in the head"),
                head_var_spans[i],
                text,
            ));
        }
    }

    // Fullness: head variables == body variables as sets.
    let mut body_vars: Vec<&String> = Vec::new();
    for (a, _) in &atoms {
        for v in a.variables() {
            if !body_vars.contains(&v) {
                body_vars.push(v);
            }
        }
    }
    for (v, span) in head_vars.iter().zip(&head_var_spans) {
        if !body_vars.contains(&v) {
            return Err(ParseError::new(
                format!("head variable `{v}` does not appear in the body"),
                *span,
                text,
            ));
        }
    }
    for v in &body_vars {
        if !head_vars.contains(v) {
            return Err(ParseError::new(
                format!(
                    "body variable `{v}` is missing from the head; the engine evaluates full \
                     conjunctive queries (add `{v}` to the head, projections are not supported)"
                ),
                head_span,
                text,
            ));
        }
    }

    let query = ConjunctiveQuery::new(
        head_atom.relation(),
        atoms.into_iter().map(|(a, _)| a).collect(),
    );
    Ok(ParsedQuery {
        query,
        head: head_vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_binary_join() {
        let parsed = parse_query("Q(x, z, y) :- R(x, y), S(y, z).").expect("parses");
        assert_eq!(parsed.query.name(), "Q");
        assert_eq!(parsed.query.num_atoms(), 2);
        assert_eq!(parsed.head, vec!["x", "z", "y"]);
        // Body-order variables differ from head order; both are preserved.
        assert_eq!(parsed.query.variables(), vec!["x", "y", "z"]);
    }

    #[test]
    fn accepts_arrow_and_equals_and_no_period() {
        for text in [
            "Q(x, y) <- R(x, y)",
            "Q(x, y) = R(x, y)",
            "Q(x,y):-R(x,y)",
        ] {
            let parsed = parse_query(text).expect(text);
            assert_eq!(parsed.query.num_atoms(), 1);
        }
    }

    #[test]
    fn display_output_round_trips() {
        let q = ConjunctiveQuery::triangle();
        let parsed = parse_query(&q.to_string()).expect("round-trips");
        assert_eq!(parsed.query.atoms(), q.atoms());
        assert_eq!(parsed.head, q.variables());
    }

    #[test]
    fn error_points_at_the_problem() {
        let err = parse_query("Q(x, y) :- R x, y)").expect_err("missing paren");
        let msg = err.to_string();
        assert!(msg.contains("expected `(` after relation name `R`"), "{msg}");
        assert!(msg.contains('^'), "{msg}");
        // The caret is under the offending token (`x` at column 13).
        let caret_line = msg.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(4 + 13), "{msg}");
    }

    #[test]
    fn self_join_is_a_located_error() {
        let err = parse_query("Q(x, y, z) :- S(x, y), S(y, z)").expect_err("self-join");
        assert!(err.to_string().contains("appears twice"), "{err}");
        assert_eq!(err.span.start, 23);
    }

    #[test]
    fn non_full_queries_are_rejected_both_ways() {
        let err = parse_query("Q(x) :- R(x, y)").expect_err("projection");
        assert!(err.to_string().contains("missing from the head"), "{err}");
        let err = parse_query("Q(x, y, w) :- R(x, y)").expect_err("unbound head var");
        assert!(err.to_string().contains("does not appear in the body"), "{err}");
    }

    #[test]
    fn repeated_head_variable_is_rejected() {
        let err = parse_query("Q(x, x) :- R(x, y)").expect_err("repeat");
        assert!(err.to_string().contains("repeated in the head"), "{err}");
    }

    #[test]
    fn lone_colon_and_garbage_are_rejected() {
        assert!(parse_query("Q(x) : R(x)").is_err());
        assert!(parse_query("Q(x) :- R(x) extra").is_err());
        assert!(parse_query("Q(x) :- R(x) @").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("Q()").is_err());
    }

    #[test]
    fn signatures_are_invariant_under_renaming() {
        let a = parse_query("Q(x, z, y) :- R(x, y), S(y, z), T(z, x)").unwrap();
        let b = parse_query("P(a, c, b) :- R(a, b), S(b, c), T(c, a)").unwrap();
        let c = parse_query("P(a, c, b) :- R(a, b), S(b, c), T(a, c)").unwrap();
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn repeated_variable_inside_an_atom_is_allowed() {
        let parsed = parse_query("Q(x) :- R(x, x)").expect("diagonal selection");
        assert_eq!(parsed.query.atoms()[0].arity(), 2);
        assert_eq!(parsed.head, vec!["x"]);
    }
}
