//! The cost-based planner.
//!
//! Given a parsed query, a database snapshot and a server budget `p`, the
//! planner produces an explainable [`Plan`]:
//!
//! 1. it reads **statistics** (cardinalities, bit sizes, per-variable
//!    distinct counts, degree maps) and their fingerprint from the
//!    snapshot's shared [`pq_relation::DatabaseStatistics`] catalogue —
//!    computed once per snapshot, so planning itself makes **no O(data)
//!    pass** (the sole exception is an atom binding the same variable
//!    twice, whose filtered statistics cannot be precomputed per column);
//! 2. it solves the **share-exponent LP** (Eq. 10 of the paper) for the
//!    one-round HyperCube shares, and independently the size-weighted
//!    **fractional edge-packing LP** — the dual that yields the one-round
//!    lower bound `L_lower = max_u L(u, M, p)` — as a cross-check that the
//!    chosen shares are LP-optimal;
//! 3. it detects **heavy hitters** against the paper's skew threshold
//!    `m_j / p` on every join variable; when the query is a triangle or a
//!    star, skew routes the plan to the matching skew-aware one-round
//!    algorithm of Section 4.2;
//! 4. for deeper skew-free queries it prices a **multi-round bushy plan**
//!    (Section 5) with a textbook cardinality estimator (distinct-count
//!    selectivities, one share LP per operator) and switches to it when the
//!    estimated total communication clearly beats the one-round load.
//!
//! The resulting [`Plan`] names its strategy, shares, and estimated load —
//! `pqsh explain` prints it verbatim — and is cached by the engine keyed on
//! (query signature, statistics fingerprint, `p`).

use crate::parser::ParsedQuery;
use crate::snapshot::Snapshot;
use pq_core::multiround::plan::PlanNode;
use pq_core::shares::{self, ShareExponents, ShareRounding};
use pq_core::skew::heavy::heavy_hitters_of_variable;
use pq_lp::{ConstraintOp, LinearProgram, Objective};
use pq_query::{agm_bound, Atom, ConjunctiveQuery, Hypergraph};
use pq_relation::{Database, DatabaseStatistics, DegreeStatistics, Value};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// Preference factor for the one-round strategy: a multi-round plan is
/// chosen only when its estimated total communication is below
/// `one-round load / MULTIROUND_ADVANTAGE`, pricing in synchronisation
/// overhead and estimator error.
const MULTIROUND_ADVANTAGE: f64 = 2.0;

/// How the executor will evaluate the query.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// One communication round of the HyperCube algorithm with the given
    /// integer shares (Section 3.1).
    HyperCube {
        /// Integer shares per variable, product ≤ `p`.
        shares: BTreeMap<String, usize>,
    },
    /// The skew-aware one-round star algorithm (Section 4.2.1): hash the
    /// light tuples on the centre, give every heavy hitter its own server
    /// block for the residual join.
    SkewAwareStar {
        /// The centre variable (occurs in every atom).
        center: String,
    },
    /// The skew-aware one-round triangle algorithm (Section 4.2.2), applied
    /// through the variable renaming that maps the query onto the canonical
    /// `C_3`.
    SkewAwareTriangle {
        /// The user's variables in the roles of `x1, x2, x3`.
        canonical_vars: [String; 3],
    },
    /// A multi-round bushy plan (Section 5): every operator is a one-round
    /// HyperCube join on its own server block.
    MultiRound {
        /// The operator tree (leaves are the query's relations).
        plan: PlanNode,
        /// Number of communication rounds (the tree depth).
        rounds: usize,
    },
}

impl Strategy {
    /// Short human-readable name, used by `explain` and the CLI summary.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::HyperCube { .. } => "one-round HyperCube",
            Strategy::SkewAwareStar { .. } => "skew-aware star",
            Strategy::SkewAwareTriangle { .. } => "skew-aware triangle",
            Strategy::MultiRound { .. } => "multi-round bushy plan",
        }
    }
}

/// Heavy-hitter summary for one join variable (threshold `m_j / p`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyReport {
    /// The variable.
    pub variable: String,
    /// Number of heavy values detected across the relations binding it.
    pub num_values: usize,
    /// The largest frequency of any heavy value.
    pub max_frequency: usize,
}

/// An executable, explainable query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The parsed query (body atoms plus head order).
    pub parsed: ParsedQuery,
    /// Server budget the plan was optimised for.
    pub p: usize,
    /// The chosen evaluation strategy.
    pub strategy: Strategy,
    /// Solution of the share-exponent LP (Eq. 10).
    pub exponents: ShareExponents,
    /// Integer shares derived from the LP solution (greedy fill).
    pub shares: BTreeMap<String, usize>,
    /// Optimum of the size-weighted fractional edge-packing LP: the
    /// one-round lower-bound exponent `λ_lower` (equals the primal λ by LP
    /// duality — the planner checks this).
    pub packing_lambda: f64,
    /// Estimated per-server load of the chosen strategy, in bits.
    pub estimated_load_bits: f64,
    /// AGM upper bound on the number of output tuples.
    pub estimated_output_tuples: f64,
    /// Heavy hitters per join variable (empty on skew-free data).
    pub heavy: Vec<HeavyReport>,
    /// Statistics fingerprint of the database the plan was built against.
    pub fingerprint: u64,
    /// Total tuples across the query's relations (for the explain header).
    pub input_tuples: usize,
    /// Free-form notes about decisions taken (cost comparisons, fallbacks).
    pub notes: Vec<String>,
}

impl Plan {
    /// Multi-line, human-readable explanation of the plan — what `pqsh
    /// explain` prints.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, k: &str, v: String| {
            out.push_str(&format!("  {k:<18} {v}\n"));
        };
        out.push_str(&format!("{}\n", self.parsed.query));
        push(&mut out, "servers", format!("p = {}", self.p));
        push(
            &mut out,
            "statistics",
            format!(
                "{} relations · {} tuples · fingerprint {:#018x}",
                self.parsed.query.num_atoms(),
                self.input_tuples,
                self.fingerprint
            ),
        );
        let exps: Vec<String> = self
            .exponents
            .exponents
            .iter()
            .map(|(v, e)| format!("{v}={e:.3}"))
            .collect();
        push(
            &mut out,
            "share LP",
            format!(
                "λ = {:.3} (dual packing bound {:.3}) · {}",
                self.exponents.lambda,
                self.packing_lambda,
                exps.join(" ")
            ),
        );
        let shares: Vec<String> = self
            .shares
            .iter()
            .map(|(v, s)| format!("{v}={s}"))
            .collect();
        push(
            &mut out,
            "integer shares",
            format!(
                "{} (grid {} of {} servers)",
                shares.join(" "),
                shares::grid_size(&self.shares),
                self.p
            ),
        );
        if self.heavy.is_empty() {
            push(&mut out, "heavy hitters", "none above m/p".to_string());
        } else {
            let hh: Vec<String> = self
                .heavy
                .iter()
                .map(|h| {
                    format!(
                        "{}: {} value(s), max frequency {}",
                        h.variable, h.num_values, h.max_frequency
                    )
                })
                .collect();
            push(&mut out, "heavy hitters", hh.join(" · "));
        }
        let strategy = match &self.strategy {
            Strategy::HyperCube { .. } => self.strategy.name().to_string(),
            Strategy::SkewAwareStar { center } => {
                format!("{} (centre `{center}`)", self.strategy.name())
            }
            Strategy::SkewAwareTriangle { canonical_vars } => format!(
                "{} ({} → x1, {} → x2, {} → x3)",
                self.strategy.name(),
                canonical_vars[0],
                canonical_vars[1],
                canonical_vars[2]
            ),
            Strategy::MultiRound { rounds, .. } => {
                format!("{} ({rounds} rounds)", self.strategy.name())
            }
        };
        push(&mut out, "strategy", strategy);
        push(
            &mut out,
            "estimated load",
            format!("{:.0} bits/server", self.estimated_load_bits),
        );
        push(
            &mut out,
            "estimated output",
            format!("≤ {:.0} tuples (AGM)", self.estimated_output_tuples),
        );
        for note in &self.notes {
            push(&mut out, "note", note.clone());
        }
        out
    }
}

/// Why the planner could not produce a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The paper's algorithms need at least two servers.
    TooFewServers {
        /// The offending budget.
        p: usize,
    },
    /// A relation named by the query is not loaded.
    MissingRelation {
        /// The missing relation.
        relation: String,
        /// Names that *are* loaded, for the error message.
        available: Vec<String>,
    },
    /// A loaded relation's arity does not match the atom using it.
    ArityMismatch {
        /// The relation.
        relation: String,
        /// Columns in the loaded data.
        stored: usize,
        /// Variables in the query atom.
        expected: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::TooFewServers { p } => {
                write!(f, "cannot plan for p = {p} servers; need at least 2")
            }
            PlanError::MissingRelation {
                relation,
                available,
            } => {
                write!(
                    f,
                    "relation `{relation}` is not loaded (loaded: {})",
                    if available.is_empty() {
                        "none".to_string()
                    } else {
                        available.join(", ")
                    }
                )
            }
            PlanError::ArityMismatch {
                relation,
                stored,
                expected,
            } => write!(
                f,
                "relation `{relation}` has {stored} column(s) but the query uses it with \
                 {expected} variable(s)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Build a plan for the query over a bare database on `p` servers.
///
/// Computes a throwaway statistics catalogue first; callers that plan more
/// than once against the same data should build a [`Snapshot`] and use
/// [`plan_query_on`], which shares the single statistics pass across the
/// fingerprint, heavy-hitter detection and the selectivity estimator.
pub fn plan_query(parsed: &ParsedQuery, database: &Database, p: usize) -> Result<Plan, PlanError> {
    let statistics = DatabaseStatistics::compute(database);
    plan_with_statistics(parsed, database, &statistics, p)
}

/// Build a plan against an analysed [`Snapshot`] — the engine's path. All
/// statistics (fingerprint, degree maps, distinct counts) come from the
/// snapshot's catalogue, so no data is scanned here.
pub fn plan_query_on(parsed: &ParsedQuery, snapshot: &Snapshot, p: usize) -> Result<Plan, PlanError> {
    plan_with_statistics(parsed, snapshot.database(), snapshot.statistics(), p)
}

fn plan_with_statistics(
    parsed: &ParsedQuery,
    database: &Database,
    statistics: &DatabaseStatistics,
    p: usize,
) -> Result<Plan, PlanError> {
    let fingerprint = statistics.fingerprint;
    if p < 2 {
        return Err(PlanError::TooFewServers { p });
    }
    let query = &parsed.query;
    for atom in query.atoms() {
        match database.relation(atom.relation()) {
            None => {
                return Err(PlanError::MissingRelation {
                    relation: atom.relation().to_string(),
                    available: database.relation_names(),
                })
            }
            Some(stored) if stored.arity() != atom.arity() => {
                return Err(PlanError::ArityMismatch {
                    relation: atom.relation().to_string(),
                    stored: stored.arity(),
                    expected: atom.arity(),
                })
            }
            Some(_) => {}
        }
    }

    let sizes: BTreeMap<String, u64> = query
        .relation_names()
        .into_iter()
        .map(|r| {
            let bits = statistics.relation(&r).expect("validated above").size_bits;
            (r, bits)
        })
        .collect();
    let input_tuples: usize = query
        .relation_names()
        .iter()
        .map(|r| statistics.relation(r).expect("validated above").cardinality)
        .sum();

    // Share-exponent LP and its integerisation (the one-round candidate).
    let exponents = shares::optimal_share_exponents(query, &sizes, p);
    let integer = shares::integer_shares(&exponents, ShareRounding::GreedyFill);
    let one_round_load = exponents.upper_bound_load();
    let packing_lambda = packing_dual_lambda(query, &sizes, p);

    // Heavy hitters on every join variable, at the paper's m/p threshold,
    // read from the precomputed degree maps (no data scan).
    let mut heavy = Vec::new();
    for variable in query.variables() {
        if query.atoms_of(&variable).len() < 2 {
            continue;
        }
        if let Some(report) = heavy_report(query, database, statistics, &variable, p) {
            heavy.push(report);
        }
    }

    let estimated_output_tuples = agm_bound(query, &database.cardinalities());
    let max_relation_bits = sizes.values().copied().max().unwrap_or(0) as f64;
    let mut notes = Vec::new();

    // Skew routes to a specialised one-round algorithm when the shape has
    // one (Section 4.2); otherwise the skew is noted and the skew-free cost
    // model decides.
    if !heavy.is_empty() {
        if let Some(canonical_vars) = detect_triangle(query) {
            notes.push(format!(
                "skew above m/{p} detected; splitting light/heavy tuples as in §4.2.2"
            ));
            return Ok(Plan {
                parsed: parsed.clone(),
                p,
                strategy: Strategy::SkewAwareTriangle { canonical_vars },
                estimated_load_bits: one_round_load.max(max_relation_bits / p as f64),
                exponents,
                shares: integer,
                packing_lambda,
                estimated_output_tuples,
                heavy,
                fingerprint,
                input_tuples,
                notes,
            });
        }
        if let Some(center) = detect_star_center(query) {
            if heavy.iter().any(|h| h.variable == center) {
                notes.push(format!(
                    "skew on centre `{center}` above m/{p}; residual joins get dedicated \
                     server blocks as in §4.2.1"
                ));
                return Ok(Plan {
                    parsed: parsed.clone(),
                    p,
                    strategy: Strategy::SkewAwareStar { center },
                    estimated_load_bits: max_relation_bits / p as f64,
                    exponents,
                    shares: integer,
                    packing_lambda,
                    estimated_output_tuples,
                    heavy,
                    fingerprint,
                    input_tuples,
                    notes,
                });
            }
        }
        notes.push(
            "heavy hitters present but no specialised one-round algorithm for this \
             shape; falling back to the skew-free cost model"
                .to_string(),
        );
    }

    // Multi-round candidate for connected queries of at least three atoms.
    let mut strategy = Strategy::HyperCube {
        shares: integer.clone(),
    };
    let mut estimated_load_bits = one_round_load;
    if query.num_atoms() >= 3 && Hypergraph::of(query).is_connected() {
        let plan_node = bushy_plan(query);
        if let Some(estimate) = estimate_multiround(&plan_node, query, database, statistics, p) {
            notes.push(format!(
                "multi-round candidate: {} rounds, estimated total {:.0} bits/server vs \
                 one-round {:.0}",
                estimate.rounds, estimate.cost_bits, one_round_load
            ));
            if estimate.cost_bits * MULTIROUND_ADVANTAGE < one_round_load {
                strategy = Strategy::MultiRound {
                    plan: plan_node,
                    rounds: estimate.rounds,
                };
                estimated_load_bits = estimate.cost_bits;
            }
        }
    }

    Ok(Plan {
        parsed: parsed.clone(),
        p,
        strategy,
        estimated_load_bits,
        exponents,
        shares: integer,
        packing_lambda,
        estimated_output_tuples,
        heavy,
        fingerprint,
        input_tuples,
        notes,
    })
}

/// Heavy-hitter report of one join variable, read from the precomputed
/// degree maps. Semantics match
/// [`pq_core::skew::heavy::heavy_hitters_of_variable`] with divisor `p`: a
/// value is heavy when its frequency in some relation binding the variable
/// strictly exceeds that relation's `m_j / p`, and the reported maximum
/// frequency ranges over every heavy value in every relation binding the
/// variable (a value heavy in one relation may be light in another). An
/// atom repeating the variable (`R(x, x)`) filters the relation before
/// counting — per-column statistics cannot express that, so such variables
/// fall back to the scanning implementation.
fn heavy_report(
    query: &ConjunctiveQuery,
    database: &Database,
    statistics: &DatabaseStatistics,
    variable: &str,
    p: usize,
) -> Option<HeavyReport> {
    fn degrees_of<'a>(
        database: &Database,
        statistics: &'a DatabaseStatistics,
        atom: &Atom,
        variable: &str,
    ) -> &'a DegreeStatistics {
        let pos = atom
            .variables()
            .iter()
            .position(|w| w == variable)
            .expect("atom contains the variable");
        let attribute = &database
            .expect_relation(atom.relation())
            .schema()
            .attributes()[pos];
        &statistics
            .relation(atom.relation())
            .expect("validated by the planner")
            .degrees[attribute]
    }

    let atoms: Vec<&Atom> = query
        .atoms()
        .iter()
        .filter(|a| a.contains(variable))
        .collect();
    if atoms.iter().any(|a| a.distinct_variables().len() != a.arity()) {
        let hitters = heavy_hitters_of_variable(query, database, variable, p as f64);
        if hitters.values.is_empty() {
            return None;
        }
        let max_frequency = hitters
            .frequencies
            .values()
            .flat_map(|m| m.values())
            .copied()
            .max()
            .unwrap_or(0);
        return Some(HeavyReport {
            variable: variable.to_string(),
            num_values: hitters.values.len(),
            max_frequency,
        });
    }
    let mut values: BTreeSet<Value> = BTreeSet::new();
    for atom in &atoms {
        let cardinality = statistics
            .relation(atom.relation())
            .expect("validated by the planner")
            .cardinality;
        let threshold = cardinality as f64 / p as f64;
        let degrees = degrees_of(database, statistics, atom, variable);
        for (&value, &count) in &degrees.frequencies {
            if count as f64 > threshold {
                values.insert(value);
            }
        }
    }
    if values.is_empty() {
        return None;
    }
    let mut max_frequency = 0usize;
    for atom in &atoms {
        let degrees = degrees_of(database, statistics, atom, variable);
        for &value in &values {
            max_frequency = max_frequency.max(degrees.frequency(value));
        }
    }
    Some(HeavyReport {
        variable: variable.to_string(),
        num_values: values.len(),
        max_frequency,
    })
}

/// The size-weighted fractional edge-packing LP, solved directly with
/// `pq-lp`: maximise `Σ_j u_j (µ_j − 1/Σu)`… in its linearised form
/// `max Σ_j µ_j u_j − 1` over packings scaled to `Σ_i` constraints — i.e.
/// the LP dual of the share-exponent program of Eq. 10. Its optimum equals
/// the primal `λ` by strong duality, which gives the planner an independent
/// check (and the paper's lower-bound exponent) for the explain output.
fn packing_dual_lambda(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> f64 {
    let ln_p = (p as f64).ln();
    let mut lp = LinearProgram::new(Objective::Maximize);
    // Dual variables: u_j per atom (packing weights) and y ≥ 0 for the
    // Σ e_i ≤ 1 primal constraint.
    let u: Vec<_> = query
        .atoms()
        .iter()
        .map(|a| lp.add_variable(format!("u_{}", a.relation())))
        .collect();
    let y = lp.add_variable("y");
    for (j, atom) in query.atoms().iter().enumerate() {
        let m = sizes_bits.get(atom.relation()).copied().unwrap_or(1);
        let mu = ((m.max(p as u64)) as f64).ln() / ln_p;
        lp.set_objective_coefficient(u[j], mu);
    }
    lp.set_objective_coefficient(y, -1.0);
    // Dual constraint of each primal e_i: Σ_{j: x_i ∈ S_j} u_j ≤ y.
    for variable in query.variables() {
        let mut terms: Vec<_> = query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(&variable))
            .map(|(j, _)| (u[j], 1.0))
            .collect();
        terms.push((y, -1.0));
        lp.add_constraint(terms, ConstraintOp::Le, 0.0);
    }
    // Dual constraint of the primal λ: Σ_j u_j = 1.
    lp.add_constraint(u.iter().map(|&v| (v, 1.0)).collect(), ConstraintOp::Eq, 1.0);
    lp.solve().map(|s| s.objective.max(0.0)).unwrap_or(0.0)
}

/// Detect a triangle query (three binary atoms over three variables, every
/// variable in exactly two atoms); returns the variables in the roles of
/// the canonical `x1, x2, x3`.
pub(crate) fn detect_triangle(query: &ConjunctiveQuery) -> Option<[String; 3]> {
    if query.num_atoms() != 3 {
        return None;
    }
    let vars = query.variables();
    if vars.len() != 3 {
        return None;
    }
    for atom in query.atoms() {
        if atom.arity() != 2 || atom.distinct_variables().len() != 2 {
            return None;
        }
    }
    for v in &vars {
        if query.atoms_of(v).len() != 2 {
            return None;
        }
    }
    let first = &query.atoms()[0];
    let v1 = first.variables()[0].clone();
    let v2 = first.variables()[1].clone();
    let v3 = vars.into_iter().find(|v| *v != v1 && *v != v2)?;
    Some([v1, v2, v3])
}

/// Detect a star query: at least two binary atoms, all sharing one centre
/// variable. Returns the centre.
///
/// The selection (including the tie-break when several variables occur in
/// every atom) is delegated to [`pq_core::skew::star::star_center`], the
/// same function the executor's algorithm uses — `explain` can never name
/// a different centre than the one the run partitions on.
pub(crate) fn detect_star_center(query: &ConjunctiveQuery) -> Option<String> {
    if query.num_atoms() < 2 {
        return None;
    }
    for atom in query.atoms() {
        if atom.arity() != 2 || atom.distinct_variables().len() != 2 {
            return None;
        }
    }
    query
        .variables()
        .iter()
        .any(|v| query.atoms().iter().all(|a| a.contains(v)))
        .then(|| pq_core::skew::star::star_center(query))
}

/// Order the atoms greedily by connectivity (never pull in a Cartesian
/// product while a connected atom is available), then pair consecutive
/// atoms into a bushy operator tree, exactly one leaf per atom.
pub(crate) fn bushy_plan(query: &ConjunctiveQuery) -> PlanNode {
    // Connectivity-greedy atom order.
    let mut remaining: Vec<usize> = (0..query.num_atoms()).collect();
    let mut order: Vec<usize> = vec![remaining.remove(0)];
    let mut vars: HashSet<String> = query.atoms()[order[0]]
        .distinct_variables()
        .into_iter()
        .collect();
    while !remaining.is_empty() {
        let next_pos = remaining
            .iter()
            .position(|&i| {
                query.atoms()[i]
                    .distinct_variables()
                    .iter()
                    .any(|v| vars.contains(v))
            })
            .unwrap_or(0);
        let i = remaining.remove(next_pos);
        vars.extend(query.atoms()[i].distinct_variables());
        order.push(i);
    }

    // View names must not collide with user relation names.
    let mut prefix = "__v".to_string();
    while query
        .relation_names()
        .iter()
        .any(|r| r.starts_with(&prefix))
    {
        prefix.push('_');
    }

    let mut level: Vec<PlanNode> = order
        .iter()
        .map(|&i| PlanNode::base(query.atoms()[i].relation()))
        .collect();
    let mut view = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for chunk in level.chunks(2) {
            if chunk.len() == 1 {
                next.push(chunk[0].clone());
            } else {
                view += 1;
                next.push(PlanNode::join(format!("{prefix}{view}"), chunk.to_vec()));
            }
        }
        level = next;
    }
    level.pop().expect("non-empty plan")
}

/// Cost estimate of a multi-round plan.
pub(crate) struct MultiRoundEstimate {
    /// Number of communication rounds.
    pub rounds: usize,
    /// Estimated total communication: the sum over rounds of the largest
    /// per-operator load estimate, in bits.
    pub cost_bits: f64,
}

/// Cardinality/distinct-count estimate of one operator output.
struct NodeEstimate {
    cardinality: f64,
    bits: f64,
    variables: Vec<String>,
    distinct: BTreeMap<String, f64>,
}

/// Price a multi-round plan: a textbook estimator (join selectivity
/// `1 / max(d_A(v), d_B(v))` over shared variables from real distinct
/// counts, AGM-free) sizes every view, then each operator's load is its own
/// share LP on its server block. Returns `None` when a round has more
/// operators than servers.
pub(crate) fn estimate_multiround(
    plan: &PlanNode,
    query: &ConjunctiveQuery,
    database: &Database,
    statistics: &DatabaseStatistics,
    p: usize,
) -> Option<MultiRoundEstimate> {
    let bits_per_value = database.bits_per_value() as f64;

    // Base estimates from the statistics catalogue: cardinality and
    // per-variable distinct counts of every atom's relation (the distinct
    // count of a variable is that of the stored column it first binds,
    // exactly what the previous direct scan computed).
    let mut estimates: BTreeMap<String, NodeEstimate> = BTreeMap::new();
    for atom in query.atoms() {
        let stored = database.expect_relation(atom.relation());
        let stats = statistics
            .relation(atom.relation())
            .expect("validated by the planner");
        let variables = atom.distinct_variables();
        let mut distinct = BTreeMap::new();
        for v in &variables {
            let pos = atom
                .variables()
                .iter()
                .position(|w| w == v)
                .expect("variable occurs in its atom");
            let attribute = &stored.schema().attributes()[pos];
            let count = stats.degrees[attribute].distinct();
            distinct.insert(v.clone(), (count as f64).max(1.0));
        }
        let cardinality = stats.cardinality.max(1) as f64;
        estimates.insert(
            atom.relation().to_string(),
            NodeEstimate {
                cardinality,
                bits: cardinality * variables.len() as f64 * bits_per_value,
                variables,
                distinct,
            },
        );
    }

    // Bottom-up view estimates.
    fn estimate_node(
        node: &PlanNode,
        estimates: &mut BTreeMap<String, NodeEstimate>,
        bits_per_value: f64,
    ) {
        let PlanNode::Join { name, children } = node else {
            return;
        };
        for child in children {
            estimate_node(child, estimates, bits_per_value);
        }
        let mut cardinality = 1.0f64;
        let mut variables: Vec<String> = Vec::new();
        let mut distinct: BTreeMap<String, f64> = BTreeMap::new();
        for child in children {
            let est = &estimates[child.output_name()];
            let mut selectivity = 1.0f64;
            for (v, d) in &est.distinct {
                if let Some(acc_d) = distinct.get(v) {
                    selectivity /= acc_d.max(*d);
                }
            }
            cardinality = (cardinality * est.cardinality * selectivity).max(1.0);
            for v in &est.variables {
                if !variables.contains(v) {
                    variables.push(v.clone());
                }
            }
            for (v, d) in &est.distinct {
                let merged = distinct.get(v).map_or(*d, |acc| acc.min(*d));
                distinct.insert(v.clone(), merged);
            }
        }
        for d in distinct.values_mut() {
            *d = d.min(cardinality);
        }
        let bits = cardinality * variables.len() as f64 * bits_per_value;
        estimates.insert(
            name.clone(),
            NodeEstimate {
                cardinality,
                bits,
                variables,
                distinct,
            },
        );
    }
    estimate_node(plan, &mut estimates, bits_per_value);

    // Per-round loads: one share LP per operator on its block. The round
    // grouping reuses the executor's own `nodes_at_depth`, so the cost
    // model prices exactly the rounds `execute_plan` will run.
    let rounds = plan.depth();
    let mut cost_bits = 0.0f64;
    for depth in 1..=rounds {
        let nodes = pq_core::multiround::plan::nodes_at_depth(plan, depth);
        if nodes.is_empty() || nodes.len() > p {
            return None;
        }
        // Same block size as the executor (`p / #operators`, no rounding
        // up): with a single-server block the executor clamps every share
        // to 1 and the whole operator input lands on that server.
        let block = p / nodes.len();
        let mut round_max = 0.0f64;
        for node in nodes {
            let PlanNode::Join { name, children } = node else {
                unreachable!("nodes_at_depth returns joins only");
            };
            let mut atoms = Vec::new();
            let mut sizes = BTreeMap::new();
            for child in children {
                let est = &estimates[child.output_name()];
                atoms.push(pq_query::Atom::new(
                    child.output_name(),
                    est.variables.clone(),
                ));
                sizes.insert(
                    child.output_name().to_string(),
                    (est.bits.ceil() as u64).max(1),
                );
            }
            let node_load = if block < 2 {
                sizes.values().map(|&b| b as f64).sum::<f64>()
            } else {
                let induced = ConjunctiveQuery::new(name.clone(), atoms);
                shares::optimal_share_exponents(&induced, &sizes, block).upper_bound_load()
            };
            round_max = round_max.max(node_load);
        }
        cost_bits += round_max;
    }
    Some(MultiRoundEstimate { rounds, cost_bits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use pq_relation::{DataGenerator, Relation, Schema, Tuple};

    fn matching_db(query: &ConjunctiveQuery, m: usize, seed: u64) -> Database {
        let domain = ((m as u64) * 64).max(1 << 12);
        let mut gen = DataGenerator::new(seed, domain);
        let specs: Vec<(Schema, usize)> = query
            .atoms()
            .iter()
            .map(|a| {
                let cols: Vec<String> = (0..a.arity()).map(|i| format!("c{i}")).collect();
                (Schema::new(a.relation(), cols), m)
            })
            .collect();
        gen.matching_database(&specs)
    }

    #[test]
    fn triangle_on_skew_free_data_picks_hypercube_with_lp_shares() {
        let parsed = parse_query("Q(a, b, c) :- R(a, b), S(b, c), T(c, a)").unwrap();
        let db = matching_db(&parsed.query, 500, 7);
        let plan = plan_query(&parsed, &db, 64).expect("plans");
        let Strategy::HyperCube { shares } = &plan.strategy else {
            panic!("expected HyperCube, got {}", plan.strategy.name());
        };
        // 64 = 4³ servers: every variable gets share 4 (τ* = 3/2).
        for v in parsed.query.variables() {
            assert_eq!(shares[&v], 4, "share of {v}");
        }
        assert!(plan.heavy.is_empty());
        // Primal λ equals the packing dual by strong duality.
        assert!(
            (plan.exponents.lambda - plan.packing_lambda).abs() < 1e-6,
            "primal {} vs dual {}",
            plan.exponents.lambda,
            plan.packing_lambda
        );
        let explain = plan.explain();
        assert!(explain.contains("one-round HyperCube"), "{explain}");
        assert!(explain.contains("estimated load"), "{explain}");
    }

    #[test]
    fn skewed_triangle_picks_the_skew_aware_algorithm() {
        let parsed = parse_query("Q(a, b, c) :- R(a, b), S(b, c), T(c, a)").unwrap();
        let mut db = matching_db(&parsed.query, 400, 11);
        // Plant a hub: value 0 of `a` participates in many R and T tuples.
        for i in 0..200u64 {
            db.relation_mut("R").unwrap().push(Tuple::from([0, 100_000 + i]));
            db.relation_mut("T").unwrap().push(Tuple::from([200_000 + i, 0]));
        }
        let plan = plan_query(&parsed, &db, 16).expect("plans");
        let Strategy::SkewAwareTriangle { canonical_vars } = &plan.strategy else {
            panic!("expected skew-aware triangle, got {}", plan.strategy.name());
        };
        assert_eq!(canonical_vars, &["a".to_string(), "b".to_string(), "c".to_string()]);
        assert!(!plan.heavy.is_empty());
        assert!(plan.explain().contains("skew-aware triangle"));
    }

    #[test]
    fn skewed_star_picks_the_skew_aware_algorithm() {
        let parsed = parse_query("Q(z, x, y) :- R(z, x), S(z, y)").unwrap();
        let mut db = matching_db(&parsed.query, 400, 13);
        for i in 0..150u64 {
            db.relation_mut("R").unwrap().push(Tuple::from([7, 300_000 + i]));
            db.relation_mut("S").unwrap().push(Tuple::from([7, 400_000 + i]));
        }
        let plan = plan_query(&parsed, &db, 16).expect("plans");
        let Strategy::SkewAwareStar { center } = &plan.strategy else {
            panic!("expected skew-aware star, got {}", plan.strategy.name());
        };
        assert_eq!(center, "z");
    }

    #[test]
    fn long_chain_on_many_servers_goes_multi_round() {
        let parsed =
            parse_query("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)").unwrap();
        let db = matching_db(&parsed.query, 2_000, 17);
        let plan = plan_query(&parsed, &db, 64).expect("plans");
        let Strategy::MultiRound { rounds, plan: node } = &plan.strategy else {
            panic!("expected multi-round, got {}", plan.strategy.name());
        };
        assert_eq!(*rounds, 2);
        assert_eq!(node.base_relations().len(), 3);
        assert!(plan.explain().contains("multi-round"));
    }

    #[test]
    fn small_p_keeps_the_chain_one_round() {
        let parsed = parse_query("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)").unwrap();
        let db = matching_db(&parsed.query, 2_000, 17);
        let plan = plan_query(&parsed, &db, 4).expect("plans");
        assert!(
            matches!(plan.strategy, Strategy::HyperCube { .. }),
            "got {}",
            plan.strategy.name()
        );
    }

    #[test]
    fn missing_relation_and_arity_mismatch_are_reported() {
        let parsed = parse_query("Q(x, y) :- R(x, y)").unwrap();
        let db = Database::new(16);
        let err = plan_query(&parsed, &db, 8).expect_err("missing");
        assert!(err.to_string().contains("not loaded"), "{err}");

        let mut db = Database::new(16);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a", "b", "c"]),
            vec![vec![1, 2, 3]],
        ));
        let err = plan_query(&parsed, &db, 8).expect_err("arity");
        assert!(err.to_string().contains("3 column(s)"), "{err}");

        let err = plan_query(&parsed, &db, 1).expect_err("p too small");
        assert!(err.to_string().contains("at least 2"), "{err}");
    }

    #[test]
    fn triangle_and_star_detection() {
        let triangle = parse_query("Q(x, y, z) :- A(x, y), B(y, z), C(z, x)").unwrap();
        assert!(detect_triangle(&triangle.query).is_some());
        assert!(detect_star_center(&triangle.query).is_none());

        let star = parse_query("Q(z, a, b, c) :- R(z, a), S(z, b), T(z, c)").unwrap();
        assert!(detect_triangle(&star.query).is_none());
        assert_eq!(detect_star_center(&star.query), Some("z".to_string()));

        let chain = parse_query("Q(a, b, c) :- R(a, b), S(b, c)").unwrap();
        assert!(detect_triangle(&chain.query).is_none());
        assert_eq!(detect_star_center(&chain.query), Some("b".to_string()));
    }

    #[test]
    fn bushy_plan_covers_every_atom_once_without_name_collisions() {
        let parsed = parse_query(
            "Q(a, b, c, d, e) :- __v1(a, b), R(b, c), S(c, d), T(d, e)",
        )
        .unwrap();
        let plan = bushy_plan(&parsed.query);
        let mut bases = plan.base_relations();
        bases.sort();
        assert_eq!(bases, vec!["R", "S", "T", "__v1"]);
        // Generated view names avoided the user's `__v1`.
        fn views(node: &PlanNode, out: &mut Vec<String>) {
            if let PlanNode::Join { name, children } = node {
                out.push(name.clone());
                for c in children {
                    views(c, out);
                }
            }
        }
        let mut names = Vec::new();
        views(&plan, &mut names);
        assert!(names.iter().all(|n| n.starts_with("__v_")), "{names:?}");
    }
}
