//! The executor: turn a [`Plan`] into an answer.
//!
//! Every strategy bottoms out in the MPC simulator, whose per-server local
//! computation phases run on real OS threads through
//! [`pq_mpc::map_servers_parallel`] — the executor inherits the paper's
//! communication accounting ([`RunMetrics`]) for free and adds wall-clock
//! timing. Answers are returned with columns in the user's head order,
//! whatever variable order the underlying algorithm produced.

use crate::backend::{ExecBackend, FallbackPolicy};
use crate::planner::{Plan, Strategy};
use crate::snapshot::Snapshot;
use pq_core::hypercube::{run_hypercube_with_shares, HyperCubeRouter};
use pq_core::multiround::plan::execute_plan as execute_multiround;
use pq_core::skew::star::run_star_skew_aware;
use pq_core::skew::triangle::run_triangle_skew_aware;
use pq_mpc::net::{AtomSpec, ClusterError, RoundProgram, WorkerPool};
use pq_mpc::RunMetrics;
use pq_obs::MetricsRegistry;
use pq_query::{bind_atom, instantiate, ConjunctiveQuery};
use pq_relation::{Database, Relation};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result of executing a plan.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The query answer, columns in head order, set semantics.
    pub output: Relation,
    /// The MPC communication metrics of the run (rounds, loads, bits).
    pub metrics: RunMetrics,
    /// Wall-clock time of the execution (routing + threaded local joins).
    pub wall: Duration,
}

/// Execute `plan` over a database [`Snapshot`]. The `seed` selects the hash
/// functions of the HyperCube routers; any value gives a correct answer.
/// Takes the snapshot immutably, so arbitrarily many executions (of the
/// same or different plans) can run concurrently against shared data.
///
/// # Panics
/// Panics when the snapshot no longer matches the plan (relations dropped
/// or re-shaped since planning); the engine re-plans on any statistics
/// change, so this indicates misuse of the raw executor API.
pub fn run_plan(plan: &Plan, snapshot: &Snapshot, seed: u64) -> RunOutcome {
    let database = snapshot.database();
    let query = &plan.parsed.query;
    let start = Instant::now();
    let (raw, metrics) = match &plan.strategy {
        Strategy::HyperCube { shares } => {
            let run = run_hypercube_with_shares(query, database, plan.p, shares, seed);
            (run.output, run.metrics)
        }
        Strategy::SkewAwareStar { .. } => {
            let run = run_star_skew_aware(query, database, plan.p, seed);
            (run.output, run.metrics)
        }
        Strategy::SkewAwareTriangle { canonical_vars } => {
            let canonical = canonical_triangle_database(query, canonical_vars, database);
            let run = run_triangle_skew_aware(&canonical, plan.p, seed);
            // Map the canonical x1..x3 columns back to the user's variables.
            let mapping: HashMap<String, String> = canonical_vars
                .iter()
                .enumerate()
                .map(|(i, v)| (format!("x{}", i + 1), v.clone()))
                .collect();
            (run.output.with_attributes_renamed(&mapping), run.metrics)
        }
        Strategy::MultiRound { plan: node, .. } => {
            let run = execute_multiround(node, query, database, plan.p, seed);
            (run.output, run.metrics)
        }
    };
    let mut output = raw.project(&plan.parsed.head, query.name());
    output.dedup();
    RunOutcome {
        output,
        metrics,
        wall: start.elapsed(),
    }
}

/// Execute `plan` on the chosen backend: [`run_plan`] on the simulator, or
/// one round over real worker processes for [`ExecBackend::Cluster`]. The
/// simulator path is infallible; only the cluster can error (a worker
/// died, timed out, or broke protocol).
///
/// The cluster backend runs *every* plan as the one-round HyperCube
/// algorithm with the plan's LP-derived integer shares (whose grid always
/// fits on `p` servers, for every strategy): that is correct for any full
/// conjunctive query. Skew-aware and multi-round refinements remain
/// simulator-side specialisations for now — on the wire they fall back to
/// plain HyperCube shares, still row-for-row the same answers, possibly
/// with a higher measured load on skewed data.
///
/// # Errors
/// A [`ClusterError`] naming the failing worker.
///
/// # Panics
/// As [`run_plan`], when the snapshot no longer matches the plan.
pub fn run_plan_on(
    plan: &Plan,
    snapshot: &Snapshot,
    seed: u64,
    backend: &ExecBackend,
) -> Result<RunOutcome, ClusterError> {
    run_plan_on_observed(plan, snapshot, seed, backend, None)
}

/// [`run_plan_on`] with cluster rounds additionally recorded into
/// `registry` (round counts, per-round wall-time histogram, per-worker
/// wire-byte counters — see [`pq_mpc::net::Coordinator::set_registry`]).
/// The simulator
/// path records nothing here; the engine layers account it from the
/// returned [`RunOutcome`].
///
/// # Errors
/// As [`run_plan_on`].
///
/// # Panics
/// As [`run_plan`], when the snapshot no longer matches the plan.
pub fn run_plan_on_observed(
    plan: &Plan,
    snapshot: &Snapshot,
    seed: u64,
    backend: &ExecBackend,
    registry: Option<&Arc<MetricsRegistry>>,
) -> Result<RunOutcome, ClusterError> {
    match backend {
        ExecBackend::Simulator => Ok(run_plan(plan, snapshot, seed)),
        ExecBackend::Cluster { pool, fallback } => {
            match run_plan_cluster(plan, snapshot, seed, pool, registry) {
                Ok(outcome) => Ok(outcome),
                Err(error) => match fallback {
                    FallbackPolicy::Error => Err(error),
                    FallbackPolicy::Simulator => {
                        // Graceful degradation: the cluster stayed
                        // unhealthy past its whole retry budget, so serve
                        // the exact answer from the simulator and mark
                        // the run degraded (only the measured wire
                        // accounting is lost).
                        if let Some(registry) = registry.filter(|r| r.is_enabled()) {
                            registry
                                .counter(
                                    "pq_cluster_degraded_total",
                                    &[],
                                    "Runs served by the simulator fallback after the cluster \
                                     failed past its retry budget",
                                )
                                .inc();
                        }
                        let mut outcome = run_plan(plan, snapshot, seed);
                        outcome.metrics.degraded = true;
                        Ok(outcome)
                    }
                },
            }
        }
    }
}

/// One HyperCube round on the pool's workers: borrow warm (health-checked)
/// connections, route the bound atoms with the plan's shares (the same
/// router and seed the simulator would use, so the model's per-round
/// `received_bits` come out identical), barrier on every worker's local
/// join, and merge. The routing closure re-runs per retry attempt over the
/// immutable snapshot — which is what makes the pool's automatic retry of
/// a failed round safe (see [`pq_mpc::net::pool`]).
fn run_plan_cluster(
    plan: &Plan,
    snapshot: &Snapshot,
    seed: u64,
    pool: &WorkerPool,
    registry: Option<&Arc<MetricsRegistry>>,
) -> Result<RunOutcome, ClusterError> {
    let database = snapshot.database();
    let query = &plan.parsed.query;
    let start = Instant::now();
    let bound = instantiate(query, database);
    let router = HyperCubeRouter::new(query, &plan.shares, seed, 0, 0);
    let program = RoundProgram {
        name: query.name().to_string(),
        output_vars: query.variables(),
        atoms: bound
            .iter()
            .map(|relation| AtomSpec {
                relation: relation.name().to_string(),
                variables: relation.schema().attributes().to_vec(),
            })
            .collect(),
    };
    let (raw, metrics) = pool.execute(
        plan.p,
        database.bits_per_value(),
        database.total_size_bits(),
        &program,
        &|| router.route_bound(&bound),
        registry,
    )?;
    let mut output = raw.project(&plan.parsed.head, query.name());
    output.dedup();
    Ok(RunOutcome {
        output,
        metrics,
        wall: start.elapsed(),
    })
}

/// Rebuild the database in the canonical triangle layout expected by
/// [`run_triangle_skew_aware`]: relations `S1(x1,x2), S2(x2,x3), S3(x3,x1)`
/// with columns in canonical variable order, whatever order the user's
/// atoms bind them in.
fn canonical_triangle_database(
    query: &ConjunctiveQuery,
    canonical_vars: &[String; 3],
    database: &Database,
) -> Database {
    let [v1, v2, v3] = canonical_vars;
    let edges = [(v1, v2), (v2, v3), (v3, v1)];
    let mut out = Database::new(database.domain_size());
    for (i, (a, b)) in edges.iter().enumerate() {
        let atom = query
            .atoms()
            .iter()
            .find(|at| at.contains(a) && at.contains(b))
            .expect("planner verified the triangle shape");
        let bound = bind_atom(atom, database.expect_relation(atom.relation()));
        out.insert(bound.project(&[(*a).clone(), (*b).clone()], &format!("S{}", i + 1)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::planner::plan_query;
    use pq_query::evaluate_sequential;
    use pq_relation::{DataGenerator, Schema, Tuple};

    fn matching_db(query: &ConjunctiveQuery, m: usize, seed: u64) -> Database {
        let domain = ((m as u64) * 64).max(1 << 12);
        let mut gen = DataGenerator::new(seed, domain);
        let specs: Vec<(Schema, usize)> = query
            .atoms()
            .iter()
            .map(|a| {
                let cols: Vec<String> = (0..a.arity()).map(|i| format!("c{i}")).collect();
                (Schema::new(a.relation(), cols), m)
            })
            .collect();
        gen.matching_database(&specs)
    }

    fn oracle(plan: &Plan, db: &Database) -> Relation {
        let mut o = evaluate_sequential(&plan.parsed.query, db)
            .project(&plan.parsed.head, plan.parsed.query.name());
        o.dedup();
        o.canonicalized()
    }

    #[test]
    fn hypercube_strategy_matches_oracle_in_head_order() {
        // Head order (z, x, y) differs from body first-occurrence (x, y, z).
        let parsed = parse_query("Q(z, x, y) :- R(x, y), S(y, z)").unwrap();
        let db = matching_db(&parsed.query, 300, 5);
        let plan = plan_query(&parsed, &db, 16).unwrap();
        let run = run_plan(&plan, &Snapshot::new(db.clone()), 3);
        assert_eq!(run.output.schema().attributes(), &["z", "x", "y"]);
        assert_eq!(run.output.canonicalized(), oracle(&plan, &db));
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn skewed_triangle_with_renamed_variables_matches_oracle() {
        let parsed = parse_query("Q(c, a, b) :- R(a, b), S(c, b), T(c, a)").unwrap();
        let mut db = matching_db(&parsed.query, 300, 9);
        for i in 0..120u64 {
            db.relation_mut("R").unwrap().push(Tuple::from([0, 500_000 + i]));
            db.relation_mut("T").unwrap().push(Tuple::from([600_000 + i, 0]));
        }
        let plan = plan_query(&parsed, &db, 16).unwrap();
        assert!(
            matches!(plan.strategy, Strategy::SkewAwareTriangle { .. }),
            "got {}",
            plan.strategy.name()
        );
        let run = run_plan(&plan, &Snapshot::new(db.clone()), 11);
        assert_eq!(run.output.canonicalized(), oracle(&plan, &db));
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn skewed_star_matches_oracle() {
        let parsed = parse_query("Q(z, a, b) :- R(z, a), S(z, b)").unwrap();
        let mut db = matching_db(&parsed.query, 300, 13);
        for i in 0..100u64 {
            db.relation_mut("R").unwrap().push(Tuple::from([5, 700_000 + i]));
            db.relation_mut("S").unwrap().push(Tuple::from([5, 800_000 + i]));
        }
        let plan = plan_query(&parsed, &db, 16).unwrap();
        assert!(matches!(plan.strategy, Strategy::SkewAwareStar { .. }));
        let run = run_plan(&plan, &Snapshot::new(db.clone()), 17);
        assert_eq!(run.output.canonicalized(), oracle(&plan, &db));
    }

    #[test]
    fn multi_round_chain_matches_oracle() {
        let parsed = parse_query("Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)").unwrap();
        let db = matching_db(&parsed.query, 1_500, 21);
        let plan = plan_query(&parsed, &db, 64).unwrap();
        assert!(matches!(plan.strategy, Strategy::MultiRound { .. }));
        let run = run_plan(&plan, &Snapshot::new(db.clone()), 23);
        assert_eq!(run.output.canonicalized(), oracle(&plan, &db));
        assert_eq!(run.metrics.num_rounds(), 2);
    }

    #[test]
    fn cluster_backend_matches_the_simulator_run_for_run() {
        let parsed = parse_query("Q(z, x, y) :- R(x, y), S(y, z)").unwrap();
        let db = matching_db(&parsed.query, 200, 5);
        let plan = plan_query(&parsed, &db, 4).unwrap();
        assert!(matches!(plan.strategy, Strategy::HyperCube { .. }));
        let snapshot = Snapshot::new(db);
        let sim = run_plan(&plan, &snapshot, 3);

        let workers = pq_mpc::net::LocalWorkers::spawn(2).unwrap();
        let backend = ExecBackend::cluster(pq_mpc::net::ClusterConfig::new(
            workers.addresses().to_vec(),
        ));
        let run = run_plan_on(&plan, &snapshot, 3, &backend).unwrap();
        assert_eq!(run.output.canonicalized(), sim.output.canonicalized());
        // Same router, same seed: the model account is bit-identical to the
        // simulator's, while the wire account is real and nonzero.
        assert_eq!(
            run.metrics.rounds[0].received_bits,
            sim.metrics.rounds[0].received_bits
        );
        assert!(run.metrics.is_measured());
        assert!(!run.metrics.degraded);
        assert!(!sim.metrics.is_measured());
        workers.shutdown();
    }

    #[test]
    fn an_unreachable_cluster_degrades_to_the_simulator_when_asked() {
        use pq_mpc::net::{ClusterConfig, RetryPolicy};
        let parsed = parse_query("Q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let db = matching_db(&parsed.query, 100, 5);
        let plan = plan_query(&parsed, &db, 4).unwrap();
        let snapshot = Snapshot::new(db);
        // Bind-then-drop: the address is reliably dead.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let config = ClusterConfig::new(vec![dead]).with_retry(RetryPolicy {
            retries: 1,
            base: std::time::Duration::from_millis(1),
            cap: std::time::Duration::from_millis(1),
        });

        // Default policy: the failure surfaces.
        let strict = ExecBackend::cluster(config.clone());
        assert!(run_plan_on(&plan, &snapshot, 3, &strict).is_err());

        // Fallback policy: the run succeeds on the simulator, marked
        // degraded, answers identical to a plain simulator run.
        let graceful =
            ExecBackend::cluster_with_fallback(config, crate::backend::FallbackPolicy::Simulator);
        let run = run_plan_on(&plan, &snapshot, 3, &graceful).unwrap();
        assert!(run.metrics.degraded);
        assert!(!run.metrics.is_measured(), "the fallback has no wire");
        let sim = run_plan(&plan, &snapshot, 3);
        assert_eq!(run.output.canonicalized(), sim.output.canonicalized());
    }

    #[test]
    fn cartesian_product_query_executes() {
        let parsed = parse_query("Q(x, y) :- R(x), S(y)").unwrap();
        let mut db = Database::new(64);
        db.insert(Relation::from_rows(
            Schema::from_strs("R", &["a"]),
            vec![vec![1], vec![2]],
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["a"]),
            vec![vec![7], vec![8], vec![9]],
        ));
        let plan = plan_query(&parsed, &db, 4).unwrap();
        let run = run_plan(&plan, &Snapshot::new(db.clone()), 1);
        assert_eq!(run.output.len(), 6);
    }
}
