//! Pooled-execution oracle: the persistent executor pool must be invisible
//! in every answer. For random databases and every pool size, a query run
//! on an N-thread engine returns exactly the rows — in exactly the order —
//! of the same query on a fully inline single-thread engine, and the warm
//! query path spawns zero threads.

use pq_engine::Engine;
use pq_relation::{Database, Relation, Schema};
use proptest::prelude::*;

/// The three query shapes of the oracle: the paper's triangle, a length-3
/// chain and a 3-leaf star, all over relations A, B, C.
const SHAPES: [&str; 3] = [
    "Q(x, y, z) :- A(x, y), B(y, z), C(z, x)",
    "Q(w, x, y, z) :- A(w, x), B(x, y), C(y, z)",
    "Q(x, a, b, c) :- A(x, a), B(x, b), C(x, c)",
];

fn database(a: &[(u64, u64)], b: &[(u64, u64)], c: &[(u64, u64)]) -> Database {
    let mut db = Database::new(1 << 10);
    for (name, rows) in [("A", a), ("B", b), ("C", c)] {
        db.insert(Relation::from_rows(
            Schema::from_strs(name, &["u", "v"]),
            rows.iter().map(|&(x, y)| vec![x, y]).collect(),
        ));
    }
    db
}

fn run_at(threads: usize, db: Database, query: &str) -> Relation {
    let engine = Engine::new(db, 8).with_threads(threads);
    engine
        .session()
        .run(query)
        .expect("oracle queries are valid")
        .outcome
        .output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The oracle itself: pooled == sequential, row for row, order included,
    // at every pool size, for random data on all three query shapes.
    #[test]
    fn pooled_execution_matches_the_inline_oracle(
        a in proptest::collection::vec((0u64..16, 0u64..16), 0..60),
        b in proptest::collection::vec((0u64..16, 0u64..16), 0..60),
        c in proptest::collection::vec((0u64..16, 0u64..16), 0..60),
        threads in 2usize..8,
        shape in 0usize..3,
    ) {
        let query = SHAPES[shape];
        let inline = run_at(1, database(&a, &b, &c), query);
        let pooled = run_at(threads, database(&a, &b, &c), query);
        prop_assert_eq!(pooled, inline);
    }
}

// Determinism at a fixed pool size: the same data and query produce
// byte-identical output across repeated runs and across separately built
// engines — per-morsel buffers are merged in input order, never in
// completion order.
#[test]
fn pooled_execution_is_deterministic_across_runs_and_engines() {
    let rows: Vec<(u64, u64)> = (0..200).map(|i| (i % 23, (i * 7) % 23)).collect();
    for query in SHAPES {
        let first = run_at(4, database(&rows, &rows, &rows), query);
        let engine = Engine::new(database(&rows, &rows, &rows), 8).with_threads(4);
        let session = engine.session();
        for _ in 0..3 {
            let again = session.run(query).unwrap().outcome.output;
            assert_eq!(again, first, "run-to-run determinism for `{query}`");
        }
    }
}

// A relation large enough to cross the morsel threshold in routing takes
// the parallel kernels and still matches the inline oracle exactly.
#[test]
fn morsel_sized_inputs_match_the_inline_oracle() {
    let m = 3 * pq_relation::MORSEL_ROWS as u64;
    let a: Vec<(u64, u64)> = (0..m).map(|i| (i % 512, (i + 1) % 512)).collect();
    let b: Vec<(u64, u64)> = (0..m).map(|i| ((i + 1) % 512, (i + 2) % 512)).collect();
    let c: Vec<(u64, u64)> = (0..m).map(|i| ((i + 2) % 512, i % 512)).collect();
    let query = SHAPES[0];
    let inline = run_at(1, database(&a, &b, &c), query);
    let pooled = run_at(4, database(&a, &b, &c), query);
    assert_eq!(pooled, inline);
    assert!(!inline.is_empty(), "the oracle must exercise non-empty joins");
}

// The perf contract behind the whole PR: the pool's threads are spawned
// once at engine construction, and N warm queries after that spawn zero —
// the counter stays flat while tasks keep flowing through the pool.
#[test]
fn warm_queries_spawn_zero_threads() {
    let rows: Vec<(u64, u64)> = (0..300).map(|i| (i % 31, (i * 5) % 31)).collect();
    let engine = Engine::new(database(&rows, &rows, &rows), 8).with_threads(4);
    let session = engine.session();
    session.run(SHAPES[0]).unwrap();
    let warm = engine.pool().stats();
    assert_eq!(warm.pool_size, 4);
    assert_eq!(
        warm.threads_spawned, 3,
        "a pool of 4 is 3 workers plus the helping caller"
    );
    for _ in 0..20 {
        session.run(SHAPES[0]).unwrap();
    }
    let after = engine.pool().stats();
    assert_eq!(
        after.threads_spawned, warm.threads_spawned,
        "20 warm queries must spawn zero threads"
    );
    assert!(
        after.tasks > warm.tasks,
        "warm queries keep scheduling onto the persistent pool"
    );
}
