//! The one-round HyperCube (HC) algorithm (Section 3.1).
//!
//! Servers are organised into a grid `[p_1] × … × [p_k]`, one dimension per
//! query variable, with `Π_i p_i ≤ p`. Independent hash functions
//! `h_i : [n] → [p_i]` are chosen per variable, and every tuple `t` of an
//! atom `S_j` is sent to its **destination subcube**: all grid points that
//! agree with `h_i(t[i])` on the variables the atom binds (Eq. 9). After the
//! single communication round each server joins the fragments it received;
//! every potential output tuple `(a_1, …, a_k)` is fully visible at the
//! server `(h_1(a_1), …, h_k(a_k))`, which makes the algorithm correct.
//!
//! On skew-free data with the share exponents of [`crate::shares`] the
//! maximum load is `O(L_upper)` with high probability (Theorem 3.4), which
//! matches the lower bound of Theorem 3.5 (Section 3.3).

use crate::shares::{self, ShareRounding};
use pq_mpc::{map_servers_parallel, Cluster, Message, RunMetrics, Server};
use pq_query::{evaluate_bound, instantiate, ConjunctiveQuery};
use pq_relation::{BucketHasher, HashFamily, MultiplyShiftHash, Relation, Value};
use std::collections::BTreeMap;

/// A configured HyperCube router: the grid layout (shares per variable), the
/// per-variable hash functions, and the block of physical servers the grid
/// is mapped onto.
///
/// The router is deliberately independent of the [`Cluster`], so skew-aware
/// and multi-round algorithms can combine several routers (e.g. one per
/// heavy hitter, each on its own server block) inside a *single*
/// communication round.
pub struct HyperCubeRouter {
    variables: Vec<String>,
    shares: Vec<usize>,
    /// `strides[d]` = Π_{d' > d} shares[d']: the weight of dimension `d` in
    /// the row-major linearisation of the grid.
    strides: Vec<usize>,
    hashers: Vec<<MultiplyShiftHash as HashFamily>::Hasher>,
    server_offset: usize,
}

impl HyperCubeRouter {
    /// Build a router for the query's variables with the given integer
    /// shares, mapping grid point `(0,…,0)` to physical server
    /// `server_offset`. `seed` and `hash_index_base` select the hash
    /// functions: routers that must be independent (e.g. per heavy hitter)
    /// should use different bases.
    pub fn new(
        query: &ConjunctiveQuery,
        shares: &BTreeMap<String, usize>,
        seed: u64,
        hash_index_base: usize,
        server_offset: usize,
    ) -> Self {
        let variables = query.variables();
        let family = MultiplyShiftHash::new(seed);
        let share_vec: Vec<usize> = variables
            .iter()
            .map(|v| shares.get(v).copied().unwrap_or(1).max(1))
            .collect();
        let hashers = variables
            .iter()
            .enumerate()
            .map(|(i, _)| family.hasher(hash_index_base + i, share_vec[i]))
            .collect();
        let mut strides = vec![1usize; share_vec.len()];
        for d in (0..share_vec.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * share_vec[d + 1];
        }
        HyperCubeRouter {
            variables,
            shares: share_vec,
            strides,
            hashers,
            server_offset,
        }
    }

    /// Number of grid points (`Π_i p_i`), i.e. physical servers used.
    pub fn grid_size(&self) -> usize {
        self.shares.iter().product()
    }

    /// The variables of the grid, in dimension order.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The integer shares, in dimension order.
    pub fn shares(&self) -> &[usize] {
        &self.shares
    }

    /// Physical server of a full variable assignment (the unique server that
    /// sees an output tuple with these values).
    pub fn server_of_assignment(&self, values: &BTreeMap<String, u64>) -> usize {
        let idx: usize = self
            .variables
            .iter()
            .enumerate()
            .map(|(i, v)| {
                values
                    .get(v)
                    .map(|&val| self.hashers[i].bucket(val))
                    .unwrap_or(0)
                    * self.strides[i]
            })
            .sum();
        self.server_offset + idx
    }

    /// Resolve a bound relation's schema against the grid once: which grid
    /// dimension each schema position pins (`bound`), and the linear-index
    /// offsets of every combination of the remaining free dimensions
    /// (`free_offsets`). Per-row routing is then one hash and one add per
    /// bound dimension plus one add per destination — no string comparison,
    /// no recursion, no allocation.
    fn route_plan(&self, bound_schema_vars: &[String]) -> (Vec<(usize, usize)>, Vec<usize>) {
        let mut bound: Vec<(usize, usize)> = Vec::new();
        let mut dim_is_bound = vec![false; self.variables.len()];
        for (pos, var) in bound_schema_vars.iter().enumerate() {
            if let Some(dim) = self.variables.iter().position(|v| v == var) {
                bound.push((dim, pos));
                dim_is_bound[dim] = true;
            }
        }
        let mut free_offsets = vec![0usize];
        for dim in (0..self.variables.len()).rev() {
            if dim_is_bound[dim] {
                continue;
            }
            let mut next = Vec::with_capacity(free_offsets.len() * self.shares[dim]);
            for c in 0..self.shares[dim] {
                let base = c * self.strides[dim];
                next.extend(free_offsets.iter().map(|&o| base + o));
            }
            free_offsets = next;
        }
        (bound, free_offsets)
    }

    /// The destination subcube of a row of the given bound relation
    /// (schema attributes = query variables): every physical server whose
    /// grid coordinates agree with the hashes of the row's values.
    pub fn destinations(&self, bound_schema_vars: &[String], row: &[Value]) -> Vec<usize> {
        let (bound, free_offsets) = self.route_plan(bound_schema_vars);
        let base = self.server_offset + self.base_index(&bound, row);
        free_offsets.iter().map(|&o| base + o).collect()
    }

    #[inline]
    fn base_index(&self, bound: &[(usize, usize)], row: &[Value]) -> usize {
        bound
            .iter()
            .map(|&(dim, pos)| self.hashers[dim].bucket(row[pos]) * self.strides[dim])
            .sum()
    }

    /// Route one bound relation (schema attributes = query variables):
    /// copies every row view into pre-sized per-destination fragments and
    /// returns one message per non-empty fragment. The per-row work is
    /// allocation-free — rows land in the flat fragment buffers by
    /// `extend_from_slice`.
    ///
    /// Like the join kernels, a large relation routes morsel-parallel when
    /// the calling thread has a `pq-exec` pool installed: each morsel fills
    /// its own per-destination fragment set and the sets are merged in
    /// morsel order, so every fragment keeps its rows in input order at any
    /// pool size.
    pub fn route_relation(&self, relation: &Relation) -> Vec<Message> {
        let (bound, free_offsets) = self.route_plan(relation.schema().attributes());
        let grid = self.grid_size();
        let n = relation.len();
        // Expected fragment size under balanced hashing: every row goes to
        // |free_offsets| of the `grid` destinations.
        let route_morsel = |lo: usize, hi: usize| -> Vec<Relation> {
            let per_dest = (hi - lo) * free_offsets.len() / grid.max(1) + 1;
            let mut fragments: Vec<Relation> = (0..grid)
                .map(|_| Relation::with_capacity(relation.schema().clone(), per_dest))
                .collect();
            for r in lo..hi {
                let row = relation.row(r);
                let base = self.base_index(&bound, row);
                for &off in &free_offsets {
                    fragments[base + off].push_row(row);
                }
            }
            fragments
        };
        let pool = pq_exec::current().filter(|p| p.threads() > 1);
        let fragments: Vec<Relation> = match pool {
            Some(pool) if n >= 2 * pq_relation::MORSEL_ROWS => {
                let ranges: Vec<(usize, usize)> = (0..n)
                    .step_by(pq_relation::MORSEL_ROWS)
                    .map(|lo| (lo, (lo + pq_relation::MORSEL_ROWS).min(n)))
                    .collect();
                let mut parts = pool
                    .map_indexed(&ranges, |_, &(lo, hi)| route_morsel(lo, hi))
                    .into_iter();
                let mut merged = parts.next().unwrap_or_default();
                for part in parts {
                    for (dest, fragment) in merged.iter_mut().zip(&part) {
                        dest.append(fragment);
                    }
                }
                merged
            }
            _ => route_morsel(0, n),
        };
        fragments
            .into_iter()
            .enumerate()
            .filter(|(_, fragment)| !fragment.is_empty())
            .map(|(idx, fragment)| Message::tuples(self.server_offset + idx, fragment))
            .collect()
    }

    /// Route a set of bound relations (one per atom, attributes named by
    /// query variables): returns one message per (destination server,
    /// relation) pair carrying that server's fragment.
    pub fn route_bound(&self, bound: &[Relation]) -> Vec<Message> {
        bound
            .iter()
            .flat_map(|relation| self.route_relation(relation))
            .collect()
    }
}

/// The result of a HyperCube run.
#[derive(Debug, Clone)]
pub struct HyperCubeRun {
    /// The query answer (set semantics), columns in query-variable order.
    pub output: Relation,
    /// Communication metrics (one round).
    pub metrics: RunMetrics,
    /// The integer shares used, keyed by variable.
    pub shares: BTreeMap<String, usize>,
}

/// Evaluate the query locally at one server over the fragments it received.
/// Missing fragments mean the server cannot produce any answers.
pub fn local_join(query: &ConjunctiveQuery, server: &Server) -> Relation {
    let mut bound = Vec::with_capacity(query.num_atoms());
    for atom in query.atoms() {
        match server.fragment(atom.relation()) {
            Some(fragment) => bound.push(fragment.clone()),
            None => {
                return Relation::empty(pq_relation::Schema::new(
                    query.name(),
                    query.variables(),
                ))
            }
        }
    }
    evaluate_bound(query, &bound)
}

/// Run the HyperCube algorithm with explicitly provided integer shares.
pub fn run_hypercube_with_shares(
    query: &ConjunctiveQuery,
    database: &pq_relation::Database,
    p: usize,
    shares: &BTreeMap<String, usize>,
    seed: u64,
) -> HyperCubeRun {
    let bound = instantiate(query, database);
    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());

    let router = HyperCubeRouter::new(query, shares, seed, 0, 0);
    assert!(
        router.grid_size() <= p,
        "share grid of size {} does not fit on {p} servers",
        router.grid_size()
    );
    let messages = router.route_bound(&bound);
    cluster.communicate(messages);

    let outputs = map_servers_parallel(cluster.servers(), |_, server| local_join(query, server));
    let mut output = Relation::empty(pq_relation::Schema::new(query.name(), query.variables()));
    for o in &outputs {
        output.append(o);
    }
    output.dedup();

    HyperCubeRun {
        output,
        metrics: cluster.into_metrics(),
        shares: shares.clone(),
    }
}

/// Run the full one-round HyperCube algorithm: optimise the shares for the
/// database's relation sizes (Eq. 10), route, and join locally.
pub fn run_hypercube(
    query: &ConjunctiveQuery,
    database: &pq_relation::Database,
    p: usize,
    seed: u64,
) -> HyperCubeRun {
    let exps = shares::optimal_share_exponents(query, &database.sizes_bits(), p);
    let shares = shares::integer_shares(&exps, ShareRounding::GreedyFill);
    run_hypercube_with_shares(query, database, p, &shares, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::evaluate_sequential;
    use pq_relation::{DataGenerator, Database, Schema};

    fn matching_db(query: &ConjunctiveQuery, m: usize, seed: u64) -> Database {
        let mut gen = DataGenerator::new(seed, (m as u64 * 100).max(1000));
        let specs: Vec<(Schema, usize)> = query
            .atoms()
            .iter()
            .map(|a| {
                let attrs: Vec<&str> = (0..a.arity()).map(|_| "").collect();
                // Positional column names; binding renames them.
                let names: Vec<String> = (0..attrs.len()).map(|i| format!("c{i}")).collect();
                (
                    Schema::new(a.relation(), names),
                    m,
                )
            })
            .collect();
        gen.matching_database(&specs)
    }

    fn identity_db(query: &ConjunctiveQuery, m: usize) -> Database {
        // Identity matchings give exactly m answers for chains/cycles.
        let mut db = Database::new((m as u64).max(2));
        for a in query.atoms() {
            let names: Vec<String> = (0..a.arity()).map(|i| format!("c{i}")).collect();
            let rows = (0..m as u64).map(|i| vec![i; a.arity()]).collect();
            db.insert(Relation::from_rows(Schema::new(a.relation(), names), rows));
        }
        db
    }

    #[test]
    fn router_grid_and_destinations() {
        let q = ConjunctiveQuery::triangle();
        let shares: BTreeMap<String, usize> =
            [("x1", 2usize), ("x2", 2), ("x3", 2)].iter().map(|(v, s)| (v.to_string(), *s)).collect();
        let router = HyperCubeRouter::new(&q, &shares, 1, 0, 0);
        assert_eq!(router.grid_size(), 8);
        // A binary atom fixes two of three dimensions: |destinations| = 2.
        let dests = router.destinations(&["x1".to_string(), "x2".to_string()], &[5, 9]);
        assert_eq!(dests.len(), 2);
        for d in &dests {
            assert!(*d < 8);
        }
        // Unary binding fixes one dimension: 4 destinations.
        let dests = router.destinations(&["x2".to_string()], &[9]);
        assert_eq!(dests.len(), 4);
    }

    #[test]
    fn router_with_offset_shifts_servers() {
        let q = ConjunctiveQuery::simple_join();
        let shares: BTreeMap<String, usize> =
            [("z", 4usize)].iter().map(|(v, s)| (v.to_string(), *s)).collect();
        let router = HyperCubeRouter::new(&q, &shares, 1, 0, 10);
        let dests = router.destinations(&["z".to_string(), "x1".to_string()], &[3, 7]);
        assert_eq!(dests.len(), 1);
        assert!(dests[0] >= 10 && dests[0] < 14);
    }

    #[test]
    fn output_tuple_server_sees_all_its_parts() {
        // The defining property of HC: for any potential output tuple, the
        // server indexed by the hashes of its values receives all matching
        // atom tuples.
        let q = ConjunctiveQuery::triangle();
        let shares: BTreeMap<String, usize> =
            [("x1", 3usize), ("x2", 3), ("x3", 3)].iter().map(|(v, s)| (v.to_string(), *s)).collect();
        let router = HyperCubeRouter::new(&q, &shares, 9, 0, 0);
        let assignment: BTreeMap<String, u64> =
            [("x1", 11u64), ("x2", 22), ("x3", 33)].iter().map(|(v, s)| (v.to_string(), *s)).collect();
        let target = router.server_of_assignment(&assignment);
        // Each atom's projection of the assignment must route through target.
        for (vars, row) in [
            (vec!["x1".to_string(), "x2".to_string()], [11u64, 22]),
            (vec!["x2".to_string(), "x3".to_string()], [22, 33]),
            (vec!["x3".to_string(), "x1".to_string()], [33, 11]),
        ] {
            let dests = router.destinations(&vars, &row);
            assert!(dests.contains(&target));
        }
    }

    #[test]
    fn triangle_matches_sequential_oracle() {
        let q = ConjunctiveQuery::triangle();
        let db = identity_db(&q, 200); // every i forms a triangle (i,i,i)
        let run = run_hypercube(&q, &db, 8, 3);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert_eq!(run.output.len(), 200);
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn triangle_on_random_matchings_matches_oracle() {
        let q = ConjunctiveQuery::triangle();
        let db = matching_db(&q, 400, 5);
        let run = run_hypercube(&q, &db, 27, 11);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn chain_query_matches_oracle() {
        let q = ConjunctiveQuery::chain(3);
        let db = identity_db(&q, 300);
        let run = run_hypercube(&q, &db, 16, 7);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert_eq!(run.output.len(), 300);
    }

    #[test]
    fn star_query_matches_oracle() {
        let q = ConjunctiveQuery::star(3);
        let db = matching_db(&q, 500, 17);
        let run = run_hypercube(&q, &db, 16, 23);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn load_is_near_m_over_p_two_thirds_for_triangle() {
        // Theorem 3.4: with equal sizes the triangle load is O(M / p^{2/3}).
        let q = ConjunctiveQuery::triangle();
        let m = 3000;
        let db = matching_db(&q, m, 29);
        let p = 64;
        let run = run_hypercube(&q, &db, p, 31);
        let m_bits = db.relation_size_bits("S1") as f64;
        let predicted = m_bits / (p as f64).powf(2.0 / 3.0);
        let measured = run.metrics.max_load() as f64;
        assert!(
            measured < 6.0 * predicted,
            "measured {measured} too far above predicted {predicted}"
        );
        // And not absurdly small either (sanity of the accounting).
        assert!(measured > 0.2 * predicted);
    }

    #[test]
    fn every_server_receives_roughly_balanced_load() {
        let q = ConjunctiveQuery::simple_join();
        let db = matching_db(&q, 4000, 41);
        let run = run_hypercube(&q, &db, 16, 43);
        let round = &run.metrics.rounds[0];
        let mean = round.mean_load();
        assert!(round.max_load() as f64 <= 3.0 * mean + 64.0);
    }

    #[test]
    fn broadcast_relation_when_share_is_one() {
        // Simple join: x1, x2 get share 1, so S1 tuples go to exactly one
        // server each (hash on z): total bits across servers equals |S1|+|S2|.
        let q = ConjunctiveQuery::simple_join();
        let db = identity_db(&q, 100);
        let run = run_hypercube(&q, &db, 8, 3);
        assert_eq!(run.metrics.total_bits(), db.total_size_bits());
    }

    #[test]
    fn local_join_with_missing_fragment_is_empty() {
        let q = ConjunctiveQuery::triangle();
        let server = Server::new(0);
        let out = local_join(&q, &server);
        assert!(out.is_empty());
        assert_eq!(out.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_grid_panics() {
        let q = ConjunctiveQuery::triangle();
        let db = identity_db(&q, 10);
        let shares: BTreeMap<String, usize> =
            [("x1", 4usize), ("x2", 4), ("x3", 4)].iter().map(|(v, s)| (v.to_string(), *s)).collect();
        run_hypercube_with_shares(&q, &db, 8, &shares, 1);
    }
}
