//! Handling data skew in one communication round (Section 4).
//!
//! * [`oblivious`] — the skew-oblivious setting of §4.1: the HyperCube
//!   algorithm knows only the relation cardinalities, and the worst-case
//!   load over all data distributions is minimised by the LP of Eq. 18.
//! * [`heavy`] — heavy-hitter detection: the values whose frequency exceeds
//!   `m_j/p`, of which there can be at most `p` per relation, together with
//!   their (approximate) frequencies — the statistics §4.2 assumes every
//!   input server knows.
//! * [`star`] — the skew-aware one-round algorithm for star queries
//!   (§4.2.1), which runs vanilla HC on the light tuples and allocates
//!   server blocks to each heavy hitter's residual Cartesian product in
//!   proportion to its cost; it matches the lower bound of Eq. 20.
//! * [`triangle`] — the skew-aware one-round triangle algorithm (§4.2.2),
//!   which splits the output into the no-heavy-value part (vanilla HC at
//!   shares `p^{1/3}`), the two-heavy-values part (Case 1: broadcast the
//!   heavy-heavy tuples, hash the rest on the remaining variable) and the
//!   one-heavy-value part (Case 2: per-heavy-hitter residual joins).

pub mod heavy;
pub mod oblivious;
pub mod star;
pub mod triangle;
