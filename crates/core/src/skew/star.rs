//! The skew-aware one-round algorithm for star queries (Section 4.2.1).
//!
//! For `T_k = S_1(z, x_1), …, S_k(z, x_k)` with known `z`-statistics:
//!
//! * **light tuples** (`z` not a heavy hitter) are handled by the vanilla
//!   HyperCube with shares `p_z = p`, `p_{x_j} = 1` — i.e. a plain hash
//!   partition on `z`, whose load is `O(max_j M_j / p)` w.h.p. because no
//!   light value exceeds frequency `m_j/p`;
//! * **heavy hitters** `h` are each given a block of `p_h` servers sized in
//!   proportion to the cost of their residual query (the Cartesian product
//!   of the `σ_{z=h}` selections), aggregated over the 0/1 edge packings of
//!   the residual query exactly as in the paper's allocation `p_{h,u}`; the
//!   residual product is computed by HyperCube on that block.
//!
//! Everything happens in a *single* communication round; the measured load
//! matches the heavy-hitter bound of Eq. 20 up to constants, which
//! Theorem 4.4 shows is unavoidable.

use crate::hypercube::{local_join, HyperCubeRouter};
use crate::shares;
use crate::skew::heavy::{heavy_hitters_of_variable, VariableHeavyHitters};
use pq_mpc::{map_servers_parallel, Cluster, Message, RunMetrics};
use pq_query::{instantiate, residual::residual_query, ConjunctiveQuery};
use pq_relation::{Database, Relation, Schema, Value};
use std::collections::BTreeMap;

/// Result of a skew-aware run.
#[derive(Debug, Clone)]
pub struct SkewAwareRun {
    /// The query answer.
    pub output: Relation,
    /// Communication metrics (a single round plus the statistics broadcast
    /// accounted inside it).
    pub metrics: RunMetrics,
    /// The detected heavy hitters of the join variable.
    pub heavy_hitters: Vec<Value>,
}

/// Identify the centre variable of a star query: the unique variable that
/// appears in every atom.
///
/// # Panics
/// Panics when the query is not a star (no variable is shared by all atoms,
/// or some atom is not binary over the centre and a private variable).
pub fn star_center(query: &ConjunctiveQuery) -> String {
    let candidates: Vec<String> = query
        .variables()
        .into_iter()
        .filter(|v| query.atoms().iter().all(|a| a.contains(v)))
        .collect();
    assert!(
        !candidates.is_empty(),
        "query `{}` is not a star: no variable occurs in every atom",
        query.name()
    );
    for atom in query.atoms() {
        assert!(
            atom.arity() == 2 && atom.distinct_variables().len() == 2,
            "star algorithm expects binary atoms, got `{atom}`"
        );
    }
    candidates[0].clone()
}

/// Run the skew-aware star-query algorithm on `p` servers.
pub fn run_star_skew_aware(
    query: &ConjunctiveQuery,
    database: &Database,
    p: usize,
    seed: u64,
) -> SkewAwareRun {
    let z = star_center(query);
    let bound = instantiate(query, database);
    let hitters = heavy_hitters_of_variable(query, database, &z, p as f64);

    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());
    let mut messages: Vec<Message> = Vec::new();

    // Broadcast the heavy-hitter statistics (O(p) values) to every server.
    let stats_bits = hitters
        .frequencies
        .values()
        .map(|m| m.len() as u64 * 2 * database.bits_per_value())
        .sum::<u64>();
    if stats_bits > 0 {
        for s in 0..p {
            messages.push(Message::raw(s, "heavy-hitter-statistics", stats_bits));
        }
    }

    // ---- Light part: hash partition on z over all p servers. ----
    let mut light_shares = BTreeMap::new();
    light_shares.insert(z.clone(), p);
    let light_router = HyperCubeRouter::new(query, &light_shares, seed, 0, 0);
    let z_positions: Vec<usize> = bound
        .iter()
        .map(|r| r.schema().position(&z).expect("star relation binds z"))
        .collect();
    let light: Vec<Relation> = bound
        .iter()
        .zip(z_positions.iter())
        .map(|(r, &pos)| r.filter(|t| !hitters.is_heavy(t[pos])))
        .collect();
    messages.extend(light_router.route_bound(&light));

    // ---- Heavy part: per-hitter residual Cartesian products. ----
    let residual = residual_query(query, std::slice::from_ref(&z));
    let heavy_values: Vec<Value> = hitters.values.iter().copied().collect();
    let allocations = heavy_allocations(query, &hitters, &heavy_values, database, p);
    let mut next_offset = 0usize;
    for (idx, &h) in heavy_values.iter().enumerate() {
        let p_h = allocations[idx].min(p).max(1);
        // Residual relation sizes M_j(h) in bits.
        let residual_sizes: BTreeMap<String, u64> = query
            .atoms()
            .iter()
            .map(|a| {
                let freq = hitters.frequency(a.relation(), h) as u64;
                (
                    a.relation().to_string(),
                    (freq * a.arity() as u64 * database.bits_per_value()).max(1),
                )
            })
            .collect();
        // Shares over the residual (non-z) variables.
        let mut block_shares = if p_h >= 2 {
            shares::shares_for_query(&residual, &residual_sizes, p_h)
        } else {
            BTreeMap::new()
        };
        block_shares.insert(z.clone(), 1);
        let router = HyperCubeRouter::new(query, &block_shares, seed, 10 + idx * 31, 0);
        let selected: Vec<Relation> = bound
            .iter()
            .zip(z_positions.iter())
            .map(|(r, &pos)| r.filter(|t| t[pos] == h))
            .collect();
        let offset = next_offset;
        next_offset = (next_offset + p_h) % p;
        for mut msg in router.route_bound(&selected) {
            msg.to = (offset + msg.to) % p;
            messages.push(msg);
        }
    }

    cluster.communicate(messages);

    let outputs = map_servers_parallel(cluster.servers(), |_, server| local_join(query, server));
    let mut output = Relation::empty(Schema::new(query.name(), query.variables()));
    for o in &outputs {
        output.append(o);
    }
    output.dedup();

    SkewAwareRun {
        output,
        metrics: cluster.into_metrics(),
        heavy_hitters: heavy_values,
    }
}

/// The paper's per-hitter server allocation: for every 0/1 packing `u` of
/// the residual Cartesian product (every non-empty subset of atoms),
/// `p_{h,u} = ⌈p · Π_{j∈u} M_j(h) / Σ_{h'} Π_{j∈u} M_j(h')⌉`, and
/// `p_h = Σ_u p_{h,u}`.
fn heavy_allocations(
    query: &ConjunctiveQuery,
    hitters: &VariableHeavyHitters,
    heavy_values: &[Value],
    database: &Database,
    p: usize,
) -> Vec<usize> {
    let l = query.num_atoms();
    let bits = database.bits_per_value();
    let size = |relation: &str, h: Value| -> f64 {
        hitters.frequency(relation, h) as f64 * 2.0 * bits as f64
    };
    let mut allocations = vec![0usize; heavy_values.len()];
    for mask in 1u64..(1u64 << l) {
        let members: Vec<&str> = query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(j, _)| mask & (1 << j) != 0)
            .map(|(_, a)| a.relation())
            .collect();
        let scores: Vec<f64> = heavy_values
            .iter()
            .map(|&h| members.iter().map(|r| size(r, h)).product())
            .collect();
        let total: f64 = scores.iter().sum();
        if total <= 0.0 {
            continue;
        }
        for (i, &score) in scores.iter().enumerate() {
            allocations[i] += (p as f64 * score / total).ceil() as usize;
        }
    }
    for a in allocations.iter_mut() {
        *a = (*a).max(1);
    }
    allocations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::shuffle_hash_join;
    use crate::bounds::skew_bounds::star_heavy_hitter_bound;
    use pq_query::evaluate_sequential;
    use pq_relation::DataGenerator;

    /// A star database where value 0 of z carries `heavy` tuples in every
    /// relation, and the remaining tuples form matchings.
    fn skewed_star_db(k: usize, m: usize, heavy: usize, seed: u64) -> Database {
        let mut gen = DataGenerator::new(seed, 1 << 22);
        let mut db = Database::new(1 << 22);
        for j in 1..=k {
            let light = gen.matching_relation(
                Schema::from_strs(&format!("S{j}"), &["a", "b"]),
                m - heavy,
            );
            let mut rel = light;
            for i in 0..heavy {
                rel.push(pq_relation::Tuple::from([
                    0,
                    (1 << 21) as u64 + (j * m + i) as u64,
                ]));
            }
            db.insert(rel);
        }
        db
    }

    #[test]
    fn star_center_detection() {
        assert_eq!(star_center(&ConjunctiveQuery::star(3)), "z");
        assert_eq!(star_center(&ConjunctiveQuery::simple_join()), "z");
    }

    #[test]
    #[should_panic(expected = "not a star")]
    fn non_star_query_is_rejected() {
        star_center(&ConjunctiveQuery::chain(3));
    }

    #[test]
    fn matches_oracle_on_skewed_simple_join() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_star_db(2, 600, 60, 3);
        let run = run_star_skew_aware(&q, &db, 16, 7);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert!(run.heavy_hitters.contains(&0));
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn matches_oracle_on_skewed_three_way_star() {
        let q = ConjunctiveQuery::star(3);
        let db = skewed_star_db(3, 300, 45, 11);
        let run = run_star_skew_aware(&q, &db, 12, 13);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
    }

    #[test]
    fn matches_oracle_without_skew() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_star_db(2, 500, 1, 17);
        let run = run_star_skew_aware(&q, &db, 8, 19);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert!(run.heavy_hitters.is_empty());
    }

    #[test]
    fn beats_the_standard_hash_join_under_heavy_skew() {
        // Example 4.1: the standard hash join piles the heavy hitter onto a
        // single server (load ~ M); the skew-aware algorithm splits the
        // residual product across a block.
        let q = ConjunctiveQuery::simple_join();
        let m = 2000;
        let db = skewed_star_db(2, m, m / 2, 23);
        let p = 16;
        let skew_aware = run_star_skew_aware(&q, &db, p, 29);
        let hash_join = shuffle_hash_join(&q, &db, p, 29);
        assert_eq!(
            skew_aware.output.canonicalized(),
            hash_join.output.canonicalized()
        );
        assert!(
            skew_aware.metrics.max_load() * 2 < hash_join.metrics.max_load(),
            "skew-aware {} not clearly better than hash join {}",
            skew_aware.metrics.max_load(),
            hash_join.metrics.max_load()
        );
    }

    #[test]
    fn load_tracks_the_eq_20_bound() {
        let q = ConjunctiveQuery::simple_join();
        let m = 3000;
        let heavy = 1200;
        let db = skewed_star_db(2, m, heavy, 31);
        let p = 16;
        let run = run_star_skew_aware(&q, &db, p, 37);
        // Heavy-hitter bound of Eq. 20 plus the light-part term max_j M_j/p.
        let bits = db.bits_per_value() as f64;
        let maps = [
            BTreeMap::from([(0u64, heavy as f64 * 2.0 * bits)]),
            BTreeMap::from([(0u64, heavy as f64 * 2.0 * bits)]),
        ];
        let bound = star_heavy_hitter_bound(&maps, p)
            .max(db.relation_size_bits("S1") as f64 / p as f64);
        let measured = run.metrics.max_load() as f64;
        assert!(
            measured <= 8.0 * bound,
            "measured {measured} far above bound {bound}"
        );
        assert!(measured >= 0.2 * bound, "measured {measured} suspiciously small vs {bound}");
    }
}
