//! Heavy-hitter detection (the statistics assumed by Section 4.2).
//!
//! A value `h` of variable `x` is a *heavy hitter* of relation `S_j` when
//! its frequency `m_j(h)` exceeds `m_j / p`. At most `p` values per relation
//! can be heavy, so the complete list (with frequencies) is `O(p)` numbers —
//! small enough to assume every server knows it, as the paper does.

use pq_query::{bind_atom, ConjunctiveQuery};
use pq_relation::{Database, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The heavy hitters of one query variable: the set of heavy values and,
/// per relation containing the variable, each heavy value's frequency.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VariableHeavyHitters {
    /// The variable.
    pub variable: String,
    /// Heavy values (union over all relations containing the variable).
    pub values: BTreeSet<Value>,
    /// `frequencies[relation][value]` = number of tuples of `relation` whose
    /// `variable` column equals `value` (recorded for heavy values only).
    pub frequencies: BTreeMap<String, BTreeMap<Value, usize>>,
}

impl VariableHeavyHitters {
    /// Frequency of a heavy value in a relation (0 when not recorded).
    pub fn frequency(&self, relation: &str, value: Value) -> usize {
        self.frequencies
            .get(relation)
            .and_then(|m| m.get(&value))
            .copied()
            .unwrap_or(0)
    }

    /// Is the value heavy (in any relation containing the variable)?
    pub fn is_heavy(&self, value: Value) -> bool {
        self.values.contains(&value)
    }
}

/// Detect the heavy hitters of `variable` across all atoms of the query that
/// contain it, with threshold `m_j / threshold_divisor` per relation.
/// The paper's default divisor is `p`; the triangle algorithm also uses
/// `p^{1/3}` (§4.2.2).
pub fn heavy_hitters_of_variable(
    query: &ConjunctiveQuery,
    database: &Database,
    variable: &str,
    threshold_divisor: f64,
) -> VariableHeavyHitters {
    assert!(threshold_divisor > 0.0, "threshold divisor must be positive");
    let mut out = VariableHeavyHitters {
        variable: variable.to_string(),
        ..Default::default()
    };
    for atom in query.atoms() {
        if !atom.contains(variable) {
            continue;
        }
        let bound = bind_atom(atom, database.expect_relation(atom.relation()));
        let m = bound.len() as f64;
        let threshold = m / threshold_divisor;
        let degrees = bound.degree_map(std::slice::from_ref(&variable.to_string()));
        let mut rel_freqs = BTreeMap::new();
        for (key, count) in degrees {
            if (count as f64) > threshold {
                let value = key.get(0);
                out.values.insert(value);
                rel_freqs.insert(value, count);
            }
        }
        if !rel_freqs.is_empty() {
            out.frequencies.insert(atom.relation().to_string(), rel_freqs);
        }
    }
    // Record exact frequencies of every heavy value in *every* relation that
    // contains the variable (a value heavy in one relation may be light in
    // another; its frequency there is still needed by the algorithms).
    let values: Vec<Value> = out.values.iter().copied().collect();
    for atom in query.atoms() {
        if !atom.contains(variable) {
            continue;
        }
        let bound = bind_atom(atom, database.expect_relation(atom.relation()));
        let degrees = bound.degree_map(std::slice::from_ref(&variable.to_string()));
        let entry = out
            .frequencies
            .entry(atom.relation().to_string())
            .or_default();
        for &v in &values {
            let count = degrees
                .get(&pq_relation::Tuple::from([v]))
                .copied()
                .unwrap_or(0);
            entry.insert(v, count);
        }
    }
    out
}

/// Heavy hitters for every variable of the query, with divisor `p`.
pub fn all_heavy_hitters(
    query: &ConjunctiveQuery,
    database: &Database,
    p: usize,
) -> BTreeMap<String, VariableHeavyHitters> {
    query
        .variables()
        .into_iter()
        .map(|v| {
            (
                v.clone(),
                heavy_hitters_of_variable(query, database, &v, p as f64),
            )
        })
        .collect()
}

/// The number of bits a broadcast of all heavy-hitter statistics costs: one
/// `(value, frequency)` pair per heavy hitter per relation, at
/// `2 · bits_per_value` bits each. The paper argues this is `O(p)` values.
pub fn statistics_broadcast_bits(
    hitters: &BTreeMap<String, VariableHeavyHitters>,
    bits_per_value: u64,
) -> u64 {
    hitters
        .values()
        .map(|vh| {
            vh.frequencies
                .values()
                .map(|m| m.len() as u64 * 2 * bits_per_value)
                .sum::<u64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Relation, Schema};

    fn skewed_join_db(m: usize, heavy: usize) -> Database {
        let mut db = Database::new(1 << 20);
        for (j, name) in ["S1", "S2"].iter().enumerate() {
            let mut rows = Vec::new();
            for i in 0..heavy {
                rows.push(vec![42, (j * 100_000 + i) as u64 + 1]);
            }
            for i in heavy..m {
                rows.push(vec![1000 + i as u64, (j * 100_000 + i) as u64 + 1]);
            }
            db.insert(Relation::from_rows(Schema::from_strs(name, &["a", "b"]), rows));
        }
        db
    }

    #[test]
    fn detects_the_planted_heavy_hitter() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_join_db(1000, 200);
        let hh = heavy_hitters_of_variable(&q, &db, "z", 16.0);
        assert!(hh.is_heavy(42));
        assert_eq!(hh.values.len(), 1);
        assert_eq!(hh.frequency("S1", 42), 200);
        assert_eq!(hh.frequency("S2", 42), 200);
        assert_eq!(hh.frequency("S1", 1000), 0);
    }

    #[test]
    fn no_heavy_hitters_in_matching_data() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_join_db(1000, 1);
        let hh = heavy_hitters_of_variable(&q, &db, "z", 16.0);
        assert!(hh.values.is_empty());
        // x1 / x2 columns are all distinct: never heavy.
        let hh = heavy_hitters_of_variable(&q, &db, "x1", 16.0);
        assert!(hh.values.is_empty());
    }

    #[test]
    fn at_most_p_heavy_hitters_per_relation() {
        // Construct maximal skew: every value appears exactly m/p times.
        let p = 8usize;
        let m = 800usize;
        let mut rows = Vec::new();
        for v in 0..(2 * p) as u64 {
            for i in 0..(m / (2 * p)) {
                rows.push(vec![v, (v * 1000 + i as u64) + 1]);
            }
        }
        let mut db = Database::new(1 << 20);
        db.insert(Relation::from_rows(Schema::from_strs("S1", &["a", "b"]), rows.clone()));
        db.insert(Relation::from_rows(Schema::from_strs("S2", &["a", "b"]), rows));
        let q = ConjunctiveQuery::simple_join();
        let hh = heavy_hitters_of_variable(&q, &db, "z", p as f64);
        // Frequencies are exactly m/(2p) = m/p / 2 < m/p: nothing is heavy.
        assert!(hh.values.is_empty());
        // With divisor 4p the same values become heavy, and there are 2p of
        // them — still at most 4p.
        let hh = heavy_hitters_of_variable(&q, &db, "z", 4.0 * p as f64);
        assert!(hh.values.len() <= 4 * p);
        assert_eq!(hh.values.len(), 2 * p);
    }

    #[test]
    fn all_heavy_hitters_covers_every_variable() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_join_db(1000, 300);
        let all = all_heavy_hitters(&q, &db, 8);
        assert_eq!(all.len(), 3); // z, x1, x2
        assert!(all["z"].is_heavy(42));
        assert!(all["x1"].values.is_empty());
    }

    #[test]
    fn broadcast_cost_is_small() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_join_db(1000, 300);
        let all = all_heavy_hitters(&q, &db, 8);
        let bits = statistics_broadcast_bits(&all, db.bits_per_value());
        // One heavy value recorded in two relations: 2 pairs of 2 values.
        assert_eq!(bits, 2 * 2 * db.bits_per_value());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_divisor_panics() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_join_db(10, 1);
        heavy_hitters_of_variable(&q, &db, "z", 0.0);
    }
}
