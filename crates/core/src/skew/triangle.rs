//! The skew-aware one-round triangle algorithm (Section 4.2.2).
//!
//! For `C_3 = S_1(x_1,x_2), S_2(x_2,x_3), S_3(x_3,x_1)` with equal-ish sizes
//! `m`, the output triangles are split by where their values sit in the
//! frequency spectrum:
//!
//! * **all values light** (frequency `< m/p^{1/3}` in both adjacent
//!   relations): vanilla HyperCube with shares `(p^{1/3}, p^{1/3}, p^{1/3})`
//!   over the tuples whose endpoints are both light — load
//!   `Õ(M/p^{2/3})`;
//! * **Case 1 — two values of frequency `≥ m/p`**: for each variable pair,
//!   broadcast the (at most `p²`) tuples of their shared relation whose
//!   endpoints are both `m/p`-heavy, and hash-partition the two remaining
//!   relations (restricted to those heavy values) on the third variable —
//!   load `Õ(M/p + p²)`;
//! * **Case 2 — exactly one value of frequency `≥ m/p^{1/3}`, the rest
//!   `< m/p`**: for each such heavy value `h` of a variable, compute the
//!   residual query `R'(y), S(y,z), T'(z)` on a block of `p_h` servers
//!   allocated in proportion to `M_{R'}(h)·M_{T'}(h)`, giving overall load
//!   `Õ(max(M/p, √(Σ_h M_R(h) M_T(h) / p)))`.
//!
//! All three parts are routed within a single communication round; local
//! joins at each server produce the triangles, which are deduplicated.

use crate::hypercube::{local_join, HyperCubeRouter};
use crate::shares;
use crate::skew::heavy::heavy_hitters_of_variable;
use crate::skew::star::SkewAwareRun;
use pq_mpc::{broadcast_relation, map_servers_parallel, Cluster, Message};
use pq_query::{instantiate, ConjunctiveQuery};
use pq_relation::{Database, Relation, Schema, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Run the skew-aware triangle algorithm on `p` servers. The database must
/// contain binary relations `S1`, `S2`, `S3` matching
/// [`ConjunctiveQuery::triangle`].
pub fn run_triangle_skew_aware(database: &Database, p: usize, seed: u64) -> SkewAwareRun {
    let query = ConjunctiveQuery::triangle();
    let bound = instantiate(&query, database);
    let variables = query.variables(); // x1, x2, x3

    // Heavy-hitter sets at the two thresholds of §4.2.2.
    let cube_divisor = (p as f64).powf(1.0 / 3.0);
    let mut heavy_p: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    let mut heavy_cube: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    let mut cube_freqs: BTreeMap<String, BTreeMap<String, BTreeMap<Value, usize>>> = BTreeMap::new();
    for v in &variables {
        let hp = heavy_hitters_of_variable(&query, database, v, p as f64);
        let hc = heavy_hitters_of_variable(&query, database, v, cube_divisor);
        heavy_p.insert(v.clone(), hp.values.clone());
        heavy_cube.insert(v.clone(), hc.values.clone());
        cube_freqs.insert(v.clone(), hc.frequencies.clone());
    }

    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());
    let mut messages: Vec<Message> = Vec::new();

    // Broadcast the heavy-hitter statistics.
    let stats_values: u64 = heavy_p.values().map(|s| s.len() as u64).sum::<u64>()
        + heavy_cube.values().map(|s| s.len() as u64).sum::<u64>();
    if stats_values > 0 {
        let bits = stats_values * 2 * database.bits_per_value();
        for s in 0..p {
            messages.push(Message::raw(s, "heavy-hitter-statistics", bits));
        }
    }

    let var_positions = |rel: &Relation| -> Vec<(String, usize)> {
        rel.schema()
            .attributes()
            .iter()
            .map(|a| (a.clone(), rel.schema().position(a).expect("attr")))
            .collect()
    };
    let is_heavy = |map: &BTreeMap<String, BTreeSet<Value>>, var: &str, value: Value| -> bool {
        map.get(var).map(|s| s.contains(&value)).unwrap_or(false)
    };

    // ---- Part A: all endpoints light at the p^{1/3} level. ----
    {
        // Integer cube root of p (the largest c with c^3 <= p), computed
        // exactly to avoid the floating-point pitfall 64^(1/3) = 3.999…
        let cube = (1..=p).take_while(|c| c * c * c <= p).last().unwrap_or(1);
        let mut shares_a = BTreeMap::new();
        for v in &variables {
            shares_a.insert(v.clone(), cube);
        }
        let router = HyperCubeRouter::new(&query, &shares_a, seed, 0, 0);
        let light: Vec<Relation> = bound
            .iter()
            .map(|r| {
                let positions = var_positions(r);
                r.filter(|t| {
                    positions
                        .iter()
                        .all(|(var, pos)| !is_heavy(&heavy_cube, var, t[*pos]))
                })
            })
            .collect();
        messages.extend(router.route_bound(&light));
    }

    // ---- Part B (Case 1): pairs of m/p-heavy values. ----
    // Pair (x1, x2) shares S1, remaining variable x3; and cyclic shifts.
    let pair_specs = [
        ("x1", "x2", 0usize, 1usize, 2usize, "x3"),
        ("x2", "x3", 1, 2, 0, "x1"),
        ("x3", "x1", 2, 0, 1, "x2"),
    ];
    for (spec_idx, &(va, vb, shared_idx, rel_b_idx, rel_a_idx, join_var)) in
        pair_specs.iter().enumerate()
    {
        // Tuples of the shared relation with both endpoints m/p-heavy.
        let shared = &bound[shared_idx];
        let positions = var_positions(shared);
        let heavy_heavy = shared.filter(|t| {
            positions.iter().all(|(var, pos)| {
                let endpoint = var == va || var == vb;
                !endpoint || is_heavy(&heavy_p, var, t[*pos])
            })
        });
        if heavy_heavy.is_empty() {
            continue;
        }
        messages.extend(broadcast_relation(&heavy_heavy, p));

        // The other two relations, restricted to the heavy value of the pair
        // variable they contain, hashed on the third variable.
        let mut join_shares = BTreeMap::new();
        join_shares.insert(join_var.to_string(), p);
        let router = HyperCubeRouter::new(&query, &join_shares, seed, 40 + spec_idx * 7, 0);
        for &(rel_idx, pair_var) in &[(rel_b_idx, vb), (rel_a_idx, va)] {
            let rel = &bound[rel_idx];
            let pos = rel
                .schema()
                .position(pair_var)
                .expect("relation contains its pair variable");
            let restricted = rel.filter(|t| is_heavy(&heavy_p, pair_var, t[pos]));
            // One pre-sized fragment per destination instead of one
            // single-tuple message per (row, destination) pair.
            messages.extend(router.route_relation(&restricted));
        }
    }

    // ---- Part C (Case 2): one p^{1/3}-heavy value, other endpoints light
    // at the m/p level. ----
    // For variable x1: residual S1'(x2), S2(x2,x3), S3'(x3); cyclic shifts.
    let case2_specs = [
        ("x1", 0usize, 2usize, 1usize, "x2", "x3"),
        ("x2", 1, 0, 2, "x3", "x1"),
        ("x3", 2, 1, 0, "x1", "x2"),
    ];
    let mut next_offset = 0usize;
    for (spec_idx, &(hv, rel_r_idx, rel_t_idx, rel_s_idx, var_y, var_z)) in
        case2_specs.iter().enumerate()
    {
        let hitters: Vec<Value> = heavy_cube
            .get(hv)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        if hitters.is_empty() {
            continue;
        }
        // Per-hitter products M_R(h)·M_T(h) for the allocation.
        let freq_of = |rel_idx: usize, h: Value| -> f64 {
            let rel_name = bound[rel_idx].name();
            cube_freqs
                .get(hv)
                .and_then(|per_rel| per_rel.get(rel_name))
                .and_then(|m| m.get(&h))
                .copied()
                .unwrap_or(0) as f64
        };
        let products: Vec<f64> = hitters
            .iter()
            .map(|&h| (freq_of(rel_r_idx, h) * freq_of(rel_t_idx, h)).max(1.0))
            .collect();
        let total_product: f64 = products.iter().sum();

        for (hi, &h) in hitters.iter().enumerate() {
            let p_h = ((p as f64 / hitters.len() as f64).ceil() as usize
                + (p as f64 * products[hi] / total_product).ceil() as usize)
                .clamp(1, p);
            // Restrict: R' and T' to the hitter and a light other endpoint;
            // S to both endpoints light at the m/p level.
            let restrict_light = |rel_idx: usize, exclude_var: &str| -> Relation {
                let rel = &bound[rel_idx];
                let positions = var_positions(rel);
                rel.filter(|t| {
                    positions.iter().all(|(var, pos)| {
                        if var == hv {
                            t[*pos] == h
                        } else if var == exclude_var || var == var_y || var == var_z {
                            !is_heavy(&heavy_p, var, t[*pos])
                        } else {
                            true
                        }
                    })
                })
            };
            let r_prime = restrict_light(rel_r_idx, var_y);
            let t_prime = restrict_light(rel_t_idx, var_z);
            if r_prime.is_empty() || t_prime.is_empty() {
                continue;
            }
            let s_rel = {
                let rel = &bound[rel_s_idx];
                let positions = var_positions(rel);
                rel.filter(|t| {
                    positions
                        .iter()
                        .all(|(var, pos)| !is_heavy(&heavy_p, var, t[*pos]))
                })
            };

            // Residual query over (var_y, var_z): share LP over its sizes.
            let bits = database.bits_per_value();
            let residual_sizes: BTreeMap<String, u64> = [
                (r_prime.name().to_string(), r_prime.size_bits(bits).max(1)),
                (s_rel.name().to_string(), s_rel.size_bits(bits).max(1)),
                (t_prime.name().to_string(), t_prime.size_bits(bits).max(1)),
            ]
            .into_iter()
            .collect();
            let residual = pq_query::residual_query(&query, std::slice::from_ref(&hv.to_string()));
            let mut block_shares = if p_h >= 2 {
                shares::shares_for_query(&residual, &residual_sizes, p_h)
            } else {
                BTreeMap::new()
            };
            block_shares.insert(hv.to_string(), 1);
            let router = HyperCubeRouter::new(
                &query,
                &block_shares,
                seed,
                200 + spec_idx * 61 + hi * 3,
                0,
            );
            let offset = next_offset;
            next_offset = (next_offset + p_h) % p;
            for mut msg in router.route_bound(&[r_prime, s_rel, t_prime]) {
                msg.to = (offset + msg.to) % p;
                messages.push(msg);
            }
        }
    }

    cluster.communicate(messages);

    let outputs = map_servers_parallel(cluster.servers(), |_, server| local_join(&query, server));
    let mut output = Relation::empty(Schema::new(query.name(), query.variables()));
    for o in &outputs {
        output.append(o);
    }
    output.dedup();

    let mut all_heavy: Vec<Value> = heavy_cube.values().flat_map(|s| s.iter().copied()).collect();
    all_heavy.sort_unstable();
    all_heavy.dedup();
    SkewAwareRun {
        output,
        metrics: cluster.into_metrics(),
        heavy_hitters: all_heavy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::run_hypercube;
    use pq_query::evaluate_sequential;
    use pq_relation::{DataGenerator, Tuple};

    /// A triangle database where vertex 0 is a hub: it participates in
    /// `hub` edges of S1 (as x1) and `hub` edges of S3 (as the x1 side),
    /// and S2 connects the hub's neighbours so that `hub` triangles exist
    /// through the hub; the rest is a matching.
    fn hub_triangle_db(m: usize, hub: usize, seed: u64) -> Database {
        let mut gen = DataGenerator::new(seed, 1 << 22);
        let mut db = Database::new(1 << 22);
        let base = 1u64 << 20;
        // S1(x1, x2): hub edges (0, base+i) plus matching.
        let mut s1 = gen.matching_relation(Schema::from_strs("S1", &["a", "b"]), m - hub);
        for i in 0..hub as u64 {
            s1.push(Tuple::from([0, base + i]));
        }
        db.insert(s1);
        // S2(x2, x3): connect base+i to 2*base+i (so each hub neighbour has
        // exactly one continuation) plus matching.
        let mut s2 = gen.matching_relation(Schema::from_strs("S2", &["a", "b"]), m - hub);
        for i in 0..hub as u64 {
            s2.push(Tuple::from([base + i, 2 * base + i]));
        }
        db.insert(s2);
        // S3(x3, x1): close the triangle back to the hub.
        let mut s3 = gen.matching_relation(Schema::from_strs("S3", &["a", "b"]), m - hub);
        for i in 0..hub as u64 {
            s3.push(Tuple::from([2 * base + i, 0]));
        }
        db.insert(s3);
        db
    }

    #[test]
    fn matches_oracle_on_hub_skew() {
        let db = hub_triangle_db(400, 200, 3);
        let run = run_triangle_skew_aware(&db, 27, 7);
        let q = ConjunctiveQuery::triangle();
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert!(run.output.len() >= 200);
        assert!(run.heavy_hitters.contains(&0));
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn matches_oracle_without_skew() {
        let mut gen = DataGenerator::new(5, 1 << 20);
        let db = gen.matching_database(&[
            (Schema::from_strs("S1", &["a", "b"]), 300),
            (Schema::from_strs("S2", &["a", "b"]), 300),
            (Schema::from_strs("S3", &["a", "b"]), 300),
        ]);
        let run = run_triangle_skew_aware(&db, 8, 11);
        let q = ConjunctiveQuery::triangle();
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert!(run.heavy_hitters.is_empty());
    }

    #[test]
    fn matches_oracle_with_two_heavy_endpoints() {
        // Force Case 1: a pair of hub vertices adjacent in S1.
        let mut gen = DataGenerator::new(9, 1 << 22);
        let mut db = Database::new(1 << 22);
        let m = 300usize;
        let hub = 60u64;
        let base = 1u64 << 20;
        // S1 contains the single heavy-heavy edge (0, 1).
        let mut s1 = gen.matching_relation(Schema::from_strs("S1", &["a", "b"]), m);
        s1.push(Tuple::from([0, 1]));
        db.insert(s1);
        // S2(x2=1, x3=base+i): vertex 1 is heavy in S2.
        let mut s2 = gen.matching_relation(Schema::from_strs("S2", &["a", "b"]), m);
        for i in 0..hub {
            s2.push(Tuple::from([1, base + i]));
        }
        db.insert(s2);
        // S3(x3=base+i, x1=0): vertex 0 is heavy in S3.
        let mut s3 = gen.matching_relation(Schema::from_strs("S3", &["a", "b"]), m);
        for i in 0..hub {
            s3.push(Tuple::from([base + i, 0]));
        }
        db.insert(s3);
        let run = run_triangle_skew_aware(&db, 16, 13);
        let q = ConjunctiveQuery::triangle();
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert!(run.output.len() >= hub as usize);
    }

    #[test]
    fn improves_on_vanilla_hypercube_under_extreme_skew() {
        // A single hub with most of the data: vanilla HC must pile the hub's
        // tuples onto a p^{1/3}-slice of the cube, the skew-aware algorithm
        // spreads the residual join over a whole block.
        let m = 3000;
        let db = hub_triangle_db(m, m / 2, 17);
        let p = 64;
        let q = ConjunctiveQuery::triangle();
        let vanilla = run_hypercube(&q, &db, p, 19);
        let aware = run_triangle_skew_aware(&db, p, 19);
        assert_eq!(
            vanilla.output.canonicalized(),
            aware.output.canonicalized()
        );
        assert!(
            (aware.metrics.max_load() as f64) < 0.8 * vanilla.metrics.max_load() as f64,
            "skew-aware {} not better than vanilla {}",
            aware.metrics.max_load(),
            vanilla.metrics.max_load()
        );
    }
}
