//! The skew-oblivious HyperCube (Section 4.1).
//!
//! When nothing is known about the data beyond cardinalities, the HyperCube
//! algorithm cannot treat heavy hitters specially; its worst-case load over
//! all data distributions is `max_j M_j / min_{i ∈ S_j} p_i`
//! (Corollary 4.3 — hashing cannot beat the single smallest dimension of an
//! atom's subcube when all the skew piles onto the other attributes). The
//! shares minimising this worst case solve the LP of Eq. 18:
//!
//! ```text
//!   minimise λ
//!   s.t.  Σ_i e_i ≤ 1
//!         h_j + λ ≥ µ_j                 for every atom j
//!         e_i − h_j ≥ 0                 for every atom j and i ∈ S_j
//!         e, h, λ ≥ 0
//! ```

use crate::shares::ShareExponents;
use pq_lp::{ConstraintOp, LinearProgram, Objective};
use pq_query::ConjunctiveQuery;
use std::collections::BTreeMap;

/// Solve the skew-oblivious share LP (Eq. 18) and return the share
/// exponents together with the worst-case load exponent λ.
pub fn oblivious_share_exponents(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> ShareExponents {
    assert!(p >= 2, "share optimisation needs at least 2 servers");
    let ln_p = (p as f64).ln();
    let variables = query.variables();

    let mut lp = LinearProgram::new(Objective::Minimize);
    let lambda = lp.add_variable("lambda");
    lp.set_objective_coefficient(lambda, 1.0);
    let e_vars: Vec<_> = variables
        .iter()
        .map(|v| lp.add_variable(format!("e_{v}")))
        .collect();
    let h_vars: Vec<_> = query
        .atoms()
        .iter()
        .map(|a| lp.add_variable(format!("h_{}", a.relation())))
        .collect();

    lp.add_constraint(
        e_vars.iter().map(|&v| (v, 1.0)).collect(),
        ConstraintOp::Le,
        1.0,
    );
    for (j, atom) in query.atoms().iter().enumerate() {
        let m = *sizes_bits
            .get(atom.relation())
            .unwrap_or_else(|| panic!("no size for relation `{}`", atom.relation()));
        let mu = ((m.max(p as u64)) as f64).ln() / ln_p;
        lp.add_constraint(
            vec![(h_vars[j], 1.0), (lambda, 1.0)],
            ConstraintOp::Ge,
            mu,
        );
        for (i, var) in variables.iter().enumerate() {
            if atom.contains(var) {
                lp.add_constraint(
                    vec![(e_vars[i], 1.0), (h_vars[j], -1.0)],
                    ConstraintOp::Ge,
                    0.0,
                );
            }
        }
    }

    let sol = lp.solve().expect("skew-oblivious share LP is feasible and bounded");
    let exponents = variables
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), sol.value(e_vars[i]).max(0.0)))
        .collect();
    ShareExponents {
        exponents,
        lambda: sol.objective.max(0.0),
        p,
    }
}

/// The worst-case load of a given integer share assignment over *all* data
/// distributions (Corollary 4.3): `max_j M_j / min_{i ∈ S_j} p_i`.
pub fn oblivious_worst_case_load(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    shares: &BTreeMap<String, usize>,
) -> f64 {
    query
        .atoms()
        .iter()
        .map(|atom| {
            let m = *sizes_bits
                .get(atom.relation())
                .unwrap_or_else(|| panic!("no size for relation `{}`", atom.relation()))
                as f64;
            let min_share = atom
                .distinct_variables()
                .iter()
                .map(|v| shares.get(v).copied().unwrap_or(1))
                .min()
                .unwrap_or(1)
                .max(1);
            m / min_share as f64
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shares::{integer_shares, optimal_share_exponents, ShareRounding};

    fn equal_sizes(query: &ConjunctiveQuery, m: u64) -> BTreeMap<String, u64> {
        query.relation_names().into_iter().map(|r| (r, m)).collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() / b.abs().max(1.0) < 1e-6
    }

    #[test]
    fn simple_join_oblivious_optimum_is_cube_root_p() {
        // For the simple join S1(z,x1), S2(z,x2), the skew-free optimum puts
        // everything on z (load M/p), but under worst-case skew that share
        // assignment degrades to load M (Example 4.1). The oblivious LP
        // hedges: the worst case is M / min_{i∈S_j} p_i per atom, and with
        // Σe ≤ 1 the best achievable is e_z = e_x1 = e_x2 = 1/3, i.e. load
        // M / p^{1/3}.
        let q = ConjunctiveQuery::simple_join();
        let m = 1u64 << 20;
        let p = 512;
        let e = oblivious_share_exponents(&q, &equal_sizes(&q, m), p);
        let load = e.upper_bound_load();
        let expected = m as f64 / (p as f64).powf(1.0 / 3.0);
        assert!(close(load, expected), "load {load} vs {expected}");
    }

    #[test]
    fn oblivious_load_is_never_better_than_skew_free_load() {
        for q in [
            ConjunctiveQuery::simple_join(),
            ConjunctiveQuery::triangle(),
            ConjunctiveQuery::chain(3),
            ConjunctiveQuery::star(3),
        ] {
            let sizes = equal_sizes(&q, 1 << 22);
            for p in [16usize, 64, 256] {
                let oblivious = oblivious_share_exponents(&q, &sizes, p).upper_bound_load();
                let skew_free = optimal_share_exponents(&q, &sizes, p).upper_bound_load();
                assert!(
                    oblivious >= skew_free * 0.999,
                    "{} p={p}: oblivious {oblivious} < skew-free {skew_free}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn triangle_oblivious_optimum_is_cube_root_p() {
        // The symmetric shares p^{1/3} are also the oblivious optimum for
        // the triangle, but the worst-case guarantee they give is only
        // M / p^{1/3} (one dimension per atom), compared to the skew-free
        // load M / p^{2/3}.
        let q = ConjunctiveQuery::triangle();
        let m = 1u64 << 21;
        let sizes = equal_sizes(&q, m);
        let p = 512;
        let oblivious = oblivious_share_exponents(&q, &sizes, p).upper_bound_load();
        let skew_free = optimal_share_exponents(&q, &sizes, p).upper_bound_load();
        assert!(close(oblivious, m as f64 / (p as f64).powf(1.0 / 3.0)));
        assert!(close(skew_free, m as f64 / (p as f64).powf(2.0 / 3.0)));
        assert!(oblivious > skew_free);
    }

    #[test]
    fn worst_case_load_formula() {
        let q = ConjunctiveQuery::simple_join();
        let sizes = equal_sizes(&q, 1 << 20);
        // Standard join shares: all on z.
        let mut shares = BTreeMap::new();
        shares.insert("z".to_string(), 64usize);
        shares.insert("x1".to_string(), 1usize);
        shares.insert("x2".to_string(), 1usize);
        // Worst case: M / min(p_z, p_x1) = M / 1 = M.
        let worst = oblivious_worst_case_load(&q, &sizes, &shares);
        assert!(close(worst, (1u64 << 20) as f64));
        // Oblivious shares balance the dimensions and improve the worst case.
        let e = oblivious_share_exponents(&q, &sizes, 64);
        let ishares = integer_shares(&e, ShareRounding::GreedyFill);
        let worst_oblivious = oblivious_worst_case_load(&q, &sizes, &ishares);
        assert!(worst_oblivious < worst);
    }

    #[test]
    #[should_panic(expected = "no size for relation")]
    fn missing_size_panics() {
        let q = ConjunctiveQuery::simple_join();
        oblivious_share_exponents(&q, &BTreeMap::new(), 8);
    }
}
