//! Baseline algorithms the paper compares against (implicitly or
//! explicitly): single-server evaluation, broadcast joins and the standard
//! shuffle (hash-partition) join executed as a left-deep sequence of binary
//! joins.
//!
//! * `single_server_join` — the degenerate `L = M` case of Section 2.1: ship
//!   everything to one server. Correct, no parallelism.
//! * `broadcast_join` — broadcast every relation except the largest, which
//!   is partitioned; one round, load `≈ M_max/p + Σ_{j≠max} M_j`. Good when
//!   all but one relation are tiny (cf. Lemma 3.18's broadcast regime).
//! * `sequential_plan_join` — the classic parallel hash join: binary joins
//!   executed one per round, both sides hash-partitioned on their shared
//!   variables. This is the algorithm whose load degrades to `O(M)` under
//!   skew in Example 4.1, and the multi-round strawman against which the
//!   bushy plans of Section 5 are compared.

use crate::hypercube::local_join;
use pq_mpc::{broadcast_relation, map_servers_parallel, Cluster, Message, RunMetrics};
use pq_query::{evaluate_bound, instantiate, ConjunctiveQuery};
use pq_relation::{
    natural_join, BucketHasher, Database, HashFamily, MultiplyShiftHash, Relation, Schema,
};

/// Result of a baseline run: the answer plus communication metrics.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Query answer with set semantics, columns in query-variable order.
    pub output: Relation,
    /// Communication metrics.
    pub metrics: RunMetrics,
}

/// Ship the entire database to server 0 and evaluate there: one round, load
/// `|I|`, no parallelism (the degenerate case the MPC model excludes by
/// requiring `L < M`).
pub fn single_server_join(query: &ConjunctiveQuery, database: &Database, p: usize) -> BaselineRun {
    let bound = instantiate(query, database);
    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());
    let messages = bound
        .iter()
        .map(|rel| Message::tuples(0, rel.clone()))
        .collect();
    cluster.communicate(messages);
    let output = local_join(query, cluster.server(0));
    BaselineRun {
        output,
        metrics: cluster.into_metrics(),
    }
}

/// Broadcast every relation except the largest, partition the largest one
/// round-robin. One round; load `≈ M_max/p + Σ_{j≠max} M_j`.
pub fn broadcast_join(query: &ConjunctiveQuery, database: &Database, p: usize) -> BaselineRun {
    let bound = instantiate(query, database);
    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());

    let largest = bound
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.size_bits(database.bits_per_value()))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let mut messages = Vec::new();
    for (j, rel) in bound.iter().enumerate() {
        if j == largest {
            for (s, part) in pq_mpc::partition_round_robin(rel, p).into_iter().enumerate() {
                if !part.is_empty() {
                    messages.push(Message::tuples(s, part));
                }
            }
        } else {
            messages.extend(broadcast_relation(rel, p));
        }
    }
    cluster.communicate(messages);

    let outputs = map_servers_parallel(cluster.servers(), |_, s| local_join(query, s));
    let mut output = Relation::empty(Schema::new(query.name(), query.variables()));
    for o in &outputs {
        output.append(o);
    }
    output.dedup();
    BaselineRun {
        output,
        metrics: cluster.into_metrics(),
    }
}

/// The standard parallel (shuffle) hash join, run as a left-deep sequence of
/// binary joins, one communication round per join. Each binary join hashes
/// both inputs on their shared attributes; inputs with no shared attribute
/// fall back to broadcasting the smaller side.
pub fn sequential_plan_join(
    query: &ConjunctiveQuery,
    database: &Database,
    p: usize,
    seed: u64,
) -> BaselineRun {
    let bound = instantiate(query, database);
    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());
    let family = MultiplyShiftHash::new(seed);

    // Left-deep order: start with the first atom, greedily pick a connected
    // next relation.
    let mut remaining: Vec<Relation> = bound;
    let mut acc = remaining.remove(0);
    let mut round = 0usize;
    while !remaining.is_empty() {
        let next_idx = remaining
            .iter()
            .position(|r| !acc.schema().common_attributes(r.schema()).is_empty())
            .unwrap_or(0);
        let right = remaining.remove(next_idx);
        acc = shuffle_binary_join(&mut cluster, &acc, &right, &family, round, query);
        round += 1;
    }

    let head = query.variables();
    let mut output = acc.project(&head, query.name());
    output.dedup();
    BaselineRun {
        output,
        metrics: cluster.into_metrics(),
    }
}

/// One shuffle binary join on the cluster: hash-partition both sides on the
/// shared attributes (or broadcast the smaller side when disjoint), join
/// locally, and return the union of the per-server results.
fn shuffle_binary_join(
    cluster: &mut Cluster,
    left: &Relation,
    right: &Relation,
    family: &MultiplyShiftHash,
    round: usize,
    query: &ConjunctiveQuery,
) -> Relation {
    let p = cluster.p();
    let common = left.schema().common_attributes(right.schema());
    let mut messages = Vec::new();

    // Unique-per-round relation names so fragments from different rounds
    // don't merge on the servers.
    let lname = format!("__L{round}_{}", left.name());
    let rname = format!("__R{round}_{}", right.name());
    let left_tagged = left.renamed(&lname);
    let right_tagged = right.renamed(&rname);

    if common.is_empty() {
        // Broadcast the smaller side, partition the bigger one.
        let (small, big) = if left.len() <= right.len() {
            (&left_tagged, &right_tagged)
        } else {
            (&right_tagged, &left_tagged)
        };
        messages.extend(broadcast_relation(small, p));
        for (s, part) in pq_mpc::partition_round_robin(big, p).into_iter().enumerate() {
            if !part.is_empty() {
                messages.push(Message::tuples(s, part));
            }
        }
    } else {
        let hasher = family.hasher(round, p);
        for (tagged, original) in [(&left_tagged, left), (&right_tagged, right)] {
            let positions: Vec<usize> = common
                .iter()
                .map(|a| original.schema().position(a).expect("common attribute"))
                .collect();
            let per_part = original.len() / p + 1;
            let mut parts: Vec<Relation> = (0..p)
                .map(|_| Relation::with_capacity(tagged.schema().clone(), per_part))
                .collect();
            for t in original.iter() {
                // Hash the concatenation of the join-key values.
                let mut key = 0u64;
                for &pos in &positions {
                    key = key.wrapping_mul(0x100000001B3).wrapping_add(t[pos]);
                }
                parts[hasher.bucket(key)].push_row(t);
            }
            for (s, part) in parts.into_iter().enumerate() {
                if !part.is_empty() {
                    messages.push(Message::tuples(s, part));
                }
            }
        }
    }
    cluster.communicate(messages);

    let _ = query; // the per-round joins are binary; the head projection happens at the end
    let outputs = map_servers_parallel(cluster.servers(), |_, server| {
        match (server.fragment(&lname), server.fragment(&rname)) {
            (Some(l), Some(r)) => natural_join(&l.renamed(left.name()), &r.renamed(right.name())),
            _ => Relation::empty(natural_join(
                &Relation::empty(left.schema().clone()),
                &Relation::empty(right.schema().clone()),
            )
            .schema()
            .clone()),
        }
    });
    let mut acc = Relation::empty(outputs[0].schema().clone());
    for o in &outputs {
        acc.append(o);
    }
    acc.dedup();
    acc
}

/// A direct two-relation shuffle hash join (the algorithm of Example 4.1),
/// exposed for the skew experiments: both relations are hash-partitioned on
/// their shared variables across `p` servers in a single round.
pub fn shuffle_hash_join(
    query: &ConjunctiveQuery,
    database: &Database,
    p: usize,
    seed: u64,
) -> BaselineRun {
    assert_eq!(
        query.num_atoms(),
        2,
        "shuffle_hash_join expects a binary join query"
    );
    let bound = instantiate(query, database);
    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());
    let family = MultiplyShiftHash::new(seed);
    let joined =
        shuffle_binary_join(&mut cluster, &bound[0], &bound[1], &family, 0, query);
    let mut output = joined.project(&query.variables(), query.name());
    output.dedup();
    BaselineRun {
        output,
        metrics: cluster.into_metrics(),
    }
}

/// Convenience oracle wrapper so experiment code can compare against the
/// sequential answer with the same return type.
pub fn oracle(query: &ConjunctiveQuery, database: &Database) -> Relation {
    let bound = instantiate(query, database);
    evaluate_bound(query, &bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::evaluate_sequential;
    use pq_relation::DataGenerator;

    fn triangle_db(m: usize, seed: u64) -> Database {
        let mut gen = DataGenerator::new(seed, (m * 50) as u64);
        gen.matching_database(&[
            (Schema::from_strs("S1", &["a", "b"]), m),
            (Schema::from_strs("S2", &["a", "b"]), m),
            (Schema::from_strs("S3", &["a", "b"]), m),
        ])
    }

    fn identity_join_db(m: usize) -> Database {
        let mut db = Database::new((m as u64).max(2));
        for name in ["S1", "S2"] {
            db.insert(Relation::from_rows(
                Schema::from_strs(name, &["a", "b"]),
                (0..m as u64).map(|i| vec![i % (m as u64 / 4).max(1), i]).collect(),
            ));
        }
        db
    }

    #[test]
    fn single_server_is_correct_and_loads_everything() {
        let q = ConjunctiveQuery::triangle();
        let db = triangle_db(100, 1);
        let run = single_server_join(&q, &db, 4);
        assert_eq!(
            run.output.canonicalized(),
            evaluate_sequential(&q, &db).canonicalized()
        );
        assert_eq!(run.metrics.max_load(), db.total_size_bits());
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn broadcast_join_is_correct() {
        let q = ConjunctiveQuery::triangle();
        let db = triangle_db(150, 2);
        let run = broadcast_join(&q, &db, 8);
        assert_eq!(
            run.output.canonicalized(),
            evaluate_sequential(&q, &db).canonicalized()
        );
        assert_eq!(run.metrics.num_rounds(), 1);
        // Load is at least the two broadcast relations' size.
        assert!(run.metrics.max_load() >= 2 * db.relation_size_bits("S1") / 2);
    }

    #[test]
    fn sequential_plan_join_triangle_correct() {
        let q = ConjunctiveQuery::triangle();
        let db = triangle_db(200, 3);
        let run = sequential_plan_join(&q, &db, 8, 5);
        assert_eq!(
            run.output.canonicalized(),
            evaluate_sequential(&q, &db).canonicalized()
        );
        // Left-deep plan over 3 atoms = 2 rounds.
        assert_eq!(run.metrics.num_rounds(), 2);
    }

    #[test]
    fn sequential_plan_join_chain_correct() {
        let q = ConjunctiveQuery::chain(4);
        let mut gen = DataGenerator::new(9, 100_000);
        let db = gen.matching_database(&[
            (Schema::from_strs("S1", &["a", "b"]), 300),
            (Schema::from_strs("S2", &["a", "b"]), 300),
            (Schema::from_strs("S3", &["a", "b"]), 300),
            (Schema::from_strs("S4", &["a", "b"]), 300),
        ]);
        let run = sequential_plan_join(&q, &db, 8, 5);
        assert_eq!(
            run.output.canonicalized(),
            evaluate_sequential(&q, &db).canonicalized()
        );
        assert_eq!(run.metrics.num_rounds(), 3);
    }

    #[test]
    fn shuffle_hash_join_on_simple_join_is_correct() {
        let q = ConjunctiveQuery::simple_join();
        let db = identity_join_db(400);
        let run = shuffle_hash_join(&q, &db, 8, 11);
        assert_eq!(
            run.output.canonicalized(),
            evaluate_sequential(&q, &db).canonicalized()
        );
        assert_eq!(run.metrics.num_rounds(), 1);
    }

    #[test]
    fn shuffle_hash_join_degrades_under_skew() {
        // Example 4.1: all tuples share one join key -> one server gets
        // (almost) everything.
        let q = ConjunctiveQuery::simple_join();
        let mut db = Database::new(100_000);
        let m = 500u64;
        db.insert(Relation::from_rows(
            Schema::from_strs("S1", &["a", "b"]),
            (0..m).map(|i| vec![7, i]).collect(),
        ));
        db.insert(Relation::from_rows(
            Schema::from_strs("S2", &["a", "b"]),
            (0..m).map(|i| vec![7, 10_000 + i]).collect(),
        ));
        let run = shuffle_hash_join(&q, &db, 16, 13);
        assert_eq!(run.output.len(), (m * m) as usize);
        // The maximum load is the entire input, not |I|/p.
        assert_eq!(run.metrics.max_load(), db.total_size_bits());
    }

    #[test]
    #[should_panic(expected = "binary join")]
    fn shuffle_hash_join_rejects_non_binary_queries() {
        let q = ConjunctiveQuery::triangle();
        let db = triangle_db(10, 1);
        shuffle_hash_join(&q, &db, 4, 1);
    }

    #[test]
    fn oracle_matches_evaluate_sequential() {
        let q = ConjunctiveQuery::star(2);
        let db = identity_join_db(100);
        assert_eq!(
            oracle(&q, &db).canonicalized(),
            evaluate_sequential(&q, &db).canonicalized()
        );
    }
}
