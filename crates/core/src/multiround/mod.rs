//! Multi-round algorithms (Section 5.1).
//!
//! A query outside `Γ¹_ε` cannot be computed in one round at load
//! `O(M/p^{1−ε})`, but it can be computed by a *query plan* whose operators
//! are each one-round HyperCube computations: bushy plans for chain queries
//! (Example 5.2), two-round plans for `SP_k` (Example 5.3), and radius-based
//! plans for general tree-like queries (Lemma 5.4). The plan machinery and
//! its executor on the simulator live in [`plan`]; the connected-components
//! algorithm whose round complexity Theorem 5.20 lower-bounds lives in
//! [`connected`].

pub mod connected;
pub mod plan;
