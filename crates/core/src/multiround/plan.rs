//! Multi-round query plans and their executor.
//!
//! A plan is a tree whose leaves are the query's atoms and whose internal
//! nodes are *one-round joins*: each internal node is evaluated by the
//! HyperCube algorithm over its children's results, and all nodes at the
//! same depth run in the same communication round on disjoint blocks of
//! servers (Proposition 5.1). The depth of the plan is therefore the number
//! of rounds.
//!
//! Example 5.2's plan for `L_16` at ε = 1/2 has two levels: four `L_4`
//! operators in round one, then an `L_4` over the four views in round two.

use crate::hypercube::HyperCubeRouter;
use crate::shares;
use pq_mpc::{map_servers_parallel, Cluster, Message, RunMetrics};
use pq_query::{evaluate_bound, instantiate, Atom, ConjunctiveQuery};
use pq_relation::{Database, Relation, Schema};
use std::collections::BTreeMap;

/// A node of a multi-round query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// A leaf: one of the query's atoms, identified by its relation name.
    Base(String),
    /// An internal node: a one-round join of its children's results,
    /// materialised as a view with the given (unique) name.
    Join {
        /// Name of the materialised view.
        name: String,
        /// Child nodes joined by this operator.
        children: Vec<PlanNode>,
    },
}

impl PlanNode {
    /// Leaf constructor.
    pub fn base(relation: impl Into<String>) -> Self {
        PlanNode::Base(relation.into())
    }

    /// Join constructor.
    pub fn join(name: impl Into<String>, children: Vec<PlanNode>) -> Self {
        PlanNode::Join {
            name: name.into(),
            children,
        }
    }

    /// The depth of the plan: number of communication rounds needed
    /// (leaves are depth 0).
    pub fn depth(&self) -> usize {
        match self {
            PlanNode::Base(_) => 0,
            PlanNode::Join { children, .. } => {
                1 + children.iter().map(PlanNode::depth).max().unwrap_or(0)
            }
        }
    }

    /// Names of all base relations referenced by the plan.
    pub fn base_relations(&self) -> Vec<String> {
        match self {
            PlanNode::Base(name) => vec![name.clone()],
            PlanNode::Join { children, .. } => {
                children.iter().flat_map(PlanNode::base_relations).collect()
            }
        }
    }

    /// The view/relation name this node produces.
    pub fn output_name(&self) -> &str {
        match self {
            PlanNode::Base(name) => name,
            PlanNode::Join { name, .. } => name,
        }
    }

    /// The output attributes of this node for the given query: the union of
    /// its atoms' variables, in query-variable order.
    pub fn output_variables(&self, query: &ConjunctiveQuery) -> Vec<String> {
        let bases = self.base_relations();
        let mut vars = Vec::new();
        for v in query.variables() {
            let used = query
                .atoms()
                .iter()
                .any(|a| bases.contains(&a.relation().to_string()) && a.contains(&v));
            if used {
                vars.push(v);
            }
        }
        vars
    }
}

/// Build the canonical bushy plan for the chain query `L_k`, grouping
/// `fan_in` consecutive sub-chains per round (Example 5.2 uses `fan_in = 2`
/// for ε = 0 and `fan_in = 4` for ε = 1/2).
pub fn bushy_chain_plan(k: usize, fan_in: usize) -> PlanNode {
    assert!(k >= 1 && fan_in >= 2, "need k >= 1 and fan_in >= 2");
    let mut level: Vec<PlanNode> = (1..=k).map(|j| PlanNode::base(format!("S{j}"))).collect();
    let mut view = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for chunk in level.chunks(fan_in) {
            if chunk.len() == 1 {
                next.push(chunk[0].clone());
            } else {
                view += 1;
                next.push(PlanNode::join(format!("V{view}"), chunk.to_vec()));
            }
        }
        level = next;
    }
    level.pop().expect("non-empty plan")
}

/// Build the two-round plan for `SP_k` of Example 5.3: round one computes
/// each path `R_i(z, x_i) ⋈ S_i(x_i, y_i)`, round two joins the `k` paths on
/// `z`.
pub fn star_of_paths_plan(k: usize) -> PlanNode {
    assert!(k >= 1);
    let paths: Vec<PlanNode> = (1..=k)
        .map(|i| {
            PlanNode::join(
                format!("P{i}"),
                vec![PlanNode::base(format!("R{i}")), PlanNode::base(format!("S{i}"))],
            )
        })
        .collect();
    if paths.len() == 1 {
        paths.into_iter().next().expect("one path")
    } else {
        PlanNode::join("SP", paths)
    }
}

/// A left-deep plan (one binary join per round) for any query — the
/// strawman baseline with `ℓ − 1` rounds.
pub fn left_deep_plan(query: &ConjunctiveQuery) -> PlanNode {
    let mut iter = query.atoms().iter();
    let first = iter.next().expect("query has at least one atom");
    let mut acc = PlanNode::base(first.relation());
    for (i, atom) in iter.enumerate() {
        acc = PlanNode::join(format!("LD{}", i + 1), vec![acc, PlanNode::base(atom.relation())]);
    }
    acc
}

/// Result of executing a plan.
#[derive(Debug, Clone)]
pub struct PlanRun {
    /// The query answer.
    pub output: Relation,
    /// Communication metrics; `metrics.num_rounds()` equals the plan depth.
    pub metrics: RunMetrics,
    /// Per-round names of the views computed in that round.
    pub round_views: Vec<Vec<String>>,
}

/// Execute a plan for `query` over `database` on `p` servers.
///
/// Every node at depth `d` is evaluated in round `d` by the HyperCube
/// algorithm for its induced join, on its own block of servers
/// (`p / #nodes-at-that-depth` servers each).
///
/// # Panics
/// Panics when the plan does not reference every atom of the query exactly
/// once, or `p` is smaller than the number of operators in some round.
pub fn execute_plan(
    plan: &PlanNode,
    query: &ConjunctiveQuery,
    database: &Database,
    p: usize,
    seed: u64,
) -> PlanRun {
    // Validate atom coverage.
    let mut bases = plan.base_relations();
    bases.sort();
    let mut expected = query.relation_names();
    expected.sort();
    assert_eq!(
        bases, expected,
        "plan must reference every atom of the query exactly once"
    );

    let mut cluster = Cluster::new(p, database.bits_per_value());
    cluster.set_input_bits(database.total_size_bits());

    // Materialised node outputs by view name; base relations are bound atom
    // instances.
    let mut views: BTreeMap<String, Relation> = BTreeMap::new();
    for (atom, bound) in query.atoms().iter().zip(instantiate(query, database)) {
        views.insert(atom.relation().to_string(), bound);
    }

    let depth = plan.depth();
    let mut round_views = Vec::with_capacity(depth);
    for round in 1..=depth {
        let nodes = nodes_at_depth(plan, round);
        assert!(
            !nodes.is_empty(),
            "internal error: no plan nodes at depth {round}"
        );
        assert!(
            p >= nodes.len(),
            "round {round} has {} operators but only {p} servers",
            nodes.len()
        );
        let block = p / nodes.len();
        let mut all_messages: Vec<Message> = Vec::new();
        let mut node_queries = Vec::new();
        for (idx, node) in nodes.iter().enumerate() {
            let (induced, inputs) = induced_query(node, query, &views);
            let sizes: BTreeMap<String, u64> = inputs
                .iter()
                .map(|r| (r.name().to_string(), r.size_bits(database.bits_per_value())))
                .collect();
            let share_p = block.max(2);
            let exps = shares::optimal_share_exponents(&induced, &sizes, share_p);
            let mut node_shares = shares::integer_shares(&exps, shares::ShareRounding::GreedyFill);
            // Clamp to the block size (the share LP already guarantees the
            // product fits, but stay defensive when block == 1).
            if block == 1 {
                for v in node_shares.values_mut() {
                    *v = 1;
                }
            }
            let offset = idx * block;
            let router =
                HyperCubeRouter::new(&induced, &node_shares, seed, round * 97 + idx * 13, offset);
            all_messages.extend(router.route_bound(&inputs));
            node_queries.push((node.output_name().to_string(), induced, offset, block));
        }
        cluster.communicate(all_messages);

        // Local evaluation per node block, in parallel over servers.
        let mut produced = Vec::new();
        for (view_name, induced, offset, block) in node_queries {
            let servers = &cluster.servers()[offset..offset + block];
            let outputs = map_servers_parallel(servers, |_, server| {
                let mut bound = Vec::new();
                for atom in induced.atoms() {
                    match server.fragment(atom.relation()) {
                        Some(f) => bound.push(f.clone()),
                        None => {
                            return Relation::empty(Schema::new(
                                induced.name(),
                                induced.variables(),
                            ))
                        }
                    }
                }
                evaluate_bound(&induced, &bound)
            });
            let mut view = Relation::empty(Schema::new(view_name.clone(), induced.variables()));
            for o in &outputs {
                view.append(o);
            }
            view.dedup();
            views.insert(view_name.clone(), view);
            produced.push(view_name);
        }
        round_views.push(produced);
    }

    let root = views
        .get(plan.output_name())
        .expect("root view materialised")
        .clone();
    let mut output = root.project(&query.variables(), query.name());
    output.dedup();
    PlanRun {
        output,
        metrics: cluster.into_metrics(),
        round_views,
    }
}

/// The join nodes whose depth equals `depth` (1-based rounds) — the
/// operators [`execute_plan`] schedules in round `depth`. Public so cost
/// models (e.g. `pq-engine`'s planner) can price exactly these rounds.
pub fn nodes_at_depth(plan: &PlanNode, depth: usize) -> Vec<&PlanNode> {
    let mut out = Vec::new();
    collect_at_depth(plan, depth, &mut out);
    out
}

fn collect_at_depth<'a>(node: &'a PlanNode, depth: usize, out: &mut Vec<&'a PlanNode>) {
    if let PlanNode::Join { children, .. } = node {
        if node.depth() == depth {
            out.push(node);
        }
        for c in children {
            collect_at_depth(c, depth, out);
        }
    }
}

/// The one-round query induced by a join node: one atom per child, named by
/// the child's output view, over the child's output variables. Also returns
/// the child input relations in the same order.
fn induced_query(
    node: &PlanNode,
    query: &ConjunctiveQuery,
    views: &BTreeMap<String, Relation>,
) -> (ConjunctiveQuery, Vec<Relation>) {
    let PlanNode::Join { name, children } = node else {
        panic!("induced_query called on a leaf");
    };
    let mut atoms = Vec::new();
    let mut inputs = Vec::new();
    for child in children {
        let vars = child.output_variables(query);
        atoms.push(Atom::new(child.output_name(), vars));
        let rel = views
            .get(child.output_name())
            .unwrap_or_else(|| panic!("view `{}` not yet materialised", child.output_name()))
            .clone();
        inputs.push(rel);
    }
    (ConjunctiveQuery::new(name.clone(), atoms), inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::evaluate_sequential;
    use pq_relation::DataGenerator;

    fn chain_db(k: usize, m: usize, seed: u64) -> Database {
        let mut gen = DataGenerator::new(seed, (m * 40) as u64);
        let specs: Vec<(Schema, usize)> = (1..=k)
            .map(|j| (Schema::from_strs(&format!("S{j}"), &["a", "b"]), m))
            .collect();
        gen.matching_database(&specs)
    }

    fn identity_chain_db(k: usize, m: usize) -> Database {
        let mut db = Database::new((m as u64).max(2));
        for j in 1..=k {
            db.insert(Relation::from_rows(
                Schema::from_strs(&format!("S{j}"), &["a", "b"]),
                (0..m as u64).map(|i| vec![i, i]).collect(),
            ));
        }
        db
    }

    #[test]
    fn plan_structure_helpers() {
        let plan = bushy_chain_plan(8, 2);
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.base_relations().len(), 8);
        let plan = bushy_chain_plan(16, 4);
        assert_eq!(plan.depth(), 2);
        let plan = bushy_chain_plan(16, 2);
        assert_eq!(plan.depth(), 4);
        let sp = star_of_paths_plan(3);
        assert_eq!(sp.depth(), 2);
        assert_eq!(sp.base_relations().len(), 6);
        let ld = left_deep_plan(&ConjunctiveQuery::chain(5));
        assert_eq!(ld.depth(), 4);
    }

    #[test]
    fn output_variables_follow_query_order() {
        let q = ConjunctiveQuery::chain(4);
        let plan = bushy_chain_plan(4, 2);
        let PlanNode::Join { children, .. } = &plan else { panic!() };
        let left = &children[0];
        assert_eq!(left.output_variables(&q), vec!["x0", "x1", "x2"]);
        assert_eq!(plan.output_variables(&q), q.variables());
    }

    #[test]
    fn bushy_plan_computes_l4_correctly() {
        let q = ConjunctiveQuery::chain(4);
        let db = identity_chain_db(4, 200);
        let plan = bushy_chain_plan(4, 2);
        let run = execute_plan(&plan, &q, &db, 8, 3);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert_eq!(run.metrics.num_rounds(), 2);
        assert_eq!(run.round_views.len(), 2);
        assert_eq!(run.round_views[0].len(), 2);
        assert_eq!(run.round_views[1].len(), 1);
    }

    #[test]
    fn bushy_plan_computes_l8_on_random_matchings() {
        let q = ConjunctiveQuery::chain(8);
        let db = chain_db(8, 300, 5);
        let plan = bushy_chain_plan(8, 2);
        let run = execute_plan(&plan, &q, &db, 16, 7);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert_eq!(run.metrics.num_rounds(), 3);
    }

    #[test]
    fn four_way_plan_uses_fewer_rounds() {
        let q = ConjunctiveQuery::chain(8);
        let db = identity_chain_db(8, 100);
        let run2 = execute_plan(&bushy_chain_plan(8, 2), &q, &db, 16, 7);
        let run4 = execute_plan(&bushy_chain_plan(8, 4), &q, &db, 16, 7);
        assert_eq!(run2.output.canonicalized(), run4.output.canonicalized());
        assert_eq!(run2.metrics.num_rounds(), 3);
        assert_eq!(run4.metrics.num_rounds(), 2);
    }

    #[test]
    fn star_of_paths_plan_is_two_rounds_and_correct() {
        let q = ConjunctiveQuery::star_of_paths(3);
        let mut gen = DataGenerator::new(11, 20_000);
        let mut specs = Vec::new();
        for i in 1..=3 {
            specs.push((Schema::from_strs(&format!("R{i}"), &["a", "b"]), 200));
            specs.push((Schema::from_strs(&format!("S{i}"), &["a", "b"]), 200));
        }
        let db = gen.matching_database(&specs);
        let run = execute_plan(&star_of_paths_plan(3), &q, &db, 12, 13);
        let oracle = evaluate_sequential(&q, &db);
        assert_eq!(run.output.canonicalized(), oracle.canonicalized());
        assert_eq!(run.metrics.num_rounds(), 2);
    }

    #[test]
    fn left_deep_plan_matches_bushy_output() {
        let q = ConjunctiveQuery::chain(5);
        let db = identity_chain_db(5, 120);
        let bushy = execute_plan(&bushy_chain_plan(5, 2), &q, &db, 8, 3);
        let left = execute_plan(&left_deep_plan(&q), &q, &db, 8, 3);
        assert_eq!(bushy.output.canonicalized(), left.output.canonicalized());
        assert_eq!(left.metrics.num_rounds(), 4);
        assert_eq!(bushy.metrics.num_rounds(), 3);
    }

    #[test]
    fn per_round_load_stays_near_m_over_p() {
        // Proposition 5.1: every round's load is O(M/p^{1-eps}); for the
        // bushy binary plan over matchings the load should stay within a
        // small factor of M/p per round.
        let q = ConjunctiveQuery::chain(8);
        let m = 2000;
        let db = chain_db(8, m, 17);
        let p = 16;
        let run = execute_plan(&bushy_chain_plan(8, 2), &q, &db, p, 19);
        let m_bits = db.relation_size_bits("S1") as f64;
        for (round, load) in run.metrics.per_round_max_loads().iter().enumerate() {
            assert!(
                (*load as f64) <= 8.0 * m_bits * 2.0 / (p / 4) as f64,
                "round {round} load {load} too high"
            );
        }
    }

    #[test]
    #[should_panic(expected = "every atom")]
    fn incomplete_plan_is_rejected() {
        let q = ConjunctiveQuery::chain(3);
        let db = identity_chain_db(3, 10);
        let plan = PlanNode::join(
            "V",
            vec![PlanNode::base("S1"), PlanNode::base("S2")],
        );
        execute_plan(&plan, &q, &db, 4, 1);
    }
}
