//! Connected components in the tuple-based MPC model.
//!
//! Theorem 5.20 shows that any tuple-based MPC algorithm computing connected
//! components with load `O(M/p^{1−ε})` needs `Ω(log p)` rounds. This module
//! implements two concrete algorithms whose measured round counts bracket
//! that bound on the paper's hard instances (graphs whose components are
//! long paths of matchings):
//!
//! * **label propagation** — every vertex repeatedly adopts the minimum
//!   label in its neighbourhood; `Θ(diameter)` iterations;
//! * **label propagation + pointer jumping** — after each propagation step
//!   every vertex also jumps to its label's label (`lab(v) ← lab(lab(v))`),
//!   which converges in `Θ(log diameter)` iterations — for the
//!   `k = p^δ`-layer instances of Theorem 5.20 this is `Θ(log p)` rounds,
//!   matching the lower bound's shape.
//!
//! Each iteration is executed as genuine MPC rounds (hash-partitioned
//! shuffles of the edge and label relations), so the simulator's metrics
//! report both the round count and the per-round load (`O(M/p)` w.h.p.).

use pq_mpc::{map_servers_parallel, Cluster, Message, RunMetrics};
use pq_relation::{BucketHasher, HashFamily, MultiplyShiftHash, Relation, Schema, Value};
use std::collections::BTreeMap;

/// Result of a connected-components run.
#[derive(Debug, Clone)]
pub struct ConnectedComponentsRun {
    /// The labelling: one `(vertex, label)` tuple per vertex, where two
    /// vertices share a label iff they are connected.
    pub labels: Relation,
    /// Communication metrics; `metrics.num_rounds()` is the number of
    /// synchronisation barriers used.
    pub metrics: RunMetrics,
    /// Number of propagate/jump iterations until the fixpoint.
    pub iterations: usize,
}

/// Strategy for the connected-components computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcStrategy {
    /// Pure min-label propagation: `Θ(diameter)` iterations.
    Propagation,
    /// Propagation plus pointer jumping: `Θ(log diameter)` iterations.
    PointerJumping,
}

/// Compute connected components of an undirected graph given as an edge
/// relation with two columns, on `p` simulated servers.
///
/// The label of each component is the minimum vertex id it contains.
pub fn connected_components(
    edges: &Relation,
    p: usize,
    seed: u64,
    strategy: CcStrategy,
) -> ConnectedComponentsRun {
    assert_eq!(edges.arity(), 2, "edge relation must be binary");
    let family = MultiplyShiftHash::new(seed);
    // Domain: max vertex id + 1.
    let max_vertex = edges.values().iter().copied().max().unwrap_or(0);
    let bits = pq_relation::bits_per_value(max_vertex + 2);
    let mut cluster = Cluster::new(p, bits);
    cluster.set_input_bits(edges.size_bits(bits));

    // Symmetrise the edges.
    let mut sym = Vec::with_capacity(edges.len() * 2);
    for t in edges.iter() {
        sym.push((t[0], t[1]));
        sym.push((t[1], t[0]));
    }
    // Initial labels: every vertex labels itself.
    let mut labels: BTreeMap<Value, Value> = BTreeMap::new();
    for &(u, v) in &sym {
        labels.entry(u).or_insert(u);
        labels.entry(v).or_insert(v);
    }

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let before = labels.clone();
        propagate_round(&mut cluster, &sym, &mut labels, &family, iterations);
        if strategy == CcStrategy::PointerJumping {
            jump_round(&mut cluster, &mut labels, &family, iterations);
        }
        if labels == before || iterations > 10 * (p + 64) {
            break;
        }
    }

    let label_rel = Relation::from_rows(
        Schema::from_strs("CC", &["vertex", "label"]),
        labels.iter().map(|(&v, &l)| vec![v, l]).collect(),
    );
    ConnectedComponentsRun {
        labels: label_rel,
        metrics: cluster.into_metrics(),
        iterations,
    }
}

/// One propagation iteration = two MPC rounds:
/// 1. co-locate each edge `(u, v)` with `lab(u)` (hash by `u`) and emit the
///    candidate `(v, lab(u))`;
/// 2. co-locate the candidates with `lab(v)` (hash by `v`) and take the
///    minimum.
fn propagate_round(
    cluster: &mut Cluster,
    sym_edges: &[(Value, Value)],
    labels: &mut BTreeMap<Value, Value>,
    family: &MultiplyShiftHash,
    iteration: usize,
) {
    let p = cluster.p();
    let h = family.hasher(iteration, p);
    let edge_schema = Schema::from_strs("E", &["u", "v"]);
    let lab_schema = Schema::from_strs("LabU", &["u", "lab"]);

    // Round A: partition edges and labels by u.
    let mut edge_parts: Vec<Relation> = (0..p).map(|_| Relation::empty(edge_schema.clone())).collect();
    for &(u, v) in sym_edges {
        edge_parts[h.bucket(u)].push_row(&[u, v]);
    }
    let mut lab_parts: Vec<Relation> = (0..p).map(|_| Relation::empty(lab_schema.clone())).collect();
    for (&v, &l) in labels.iter() {
        lab_parts[h.bucket(v)].push_row(&[v, l]);
    }
    let mut messages = Vec::new();
    for (s, part) in edge_parts.into_iter().enumerate() {
        if !part.is_empty() {
            messages.push(Message::tuples(s, part.renamed(format!("E_{iteration}"))));
        }
    }
    for (s, part) in lab_parts.into_iter().enumerate() {
        if !part.is_empty() {
            messages.push(Message::tuples(s, part.renamed(format!("LabU_{iteration}"))));
        }
    }
    cluster.communicate(messages);

    // Local: candidates (v, lab(u)) for each edge (u, v).
    let ename = format!("E_{iteration}");
    let lname = format!("LabU_{iteration}");
    let candidate_lists = map_servers_parallel(cluster.servers(), |_, server| {
        let mut out: Vec<(Value, Value)> = Vec::new();
        let (Some(e), Some(lab)) = (server.fragment(&ename), server.fragment(&lname)) else {
            return out;
        };
        let mut local: BTreeMap<Value, Value> = BTreeMap::new();
        for t in lab.iter() {
            local.insert(t[0], t[1]);
        }
        for t in e.iter() {
            if let Some(&lu) = local.get(&t[0]) {
                out.push((t[1], lu));
            }
        }
        out
    });

    // Round B: partition candidates and labels by the target vertex v.
    let cand_schema = Schema::from_strs("Cand", &["v", "lab"]);
    let labv_schema = Schema::from_strs("LabV", &["v", "lab"]);
    let mut cand_parts: Vec<Relation> = (0..p).map(|_| Relation::empty(cand_schema.clone())).collect();
    for list in candidate_lists {
        for (v, l) in list {
            cand_parts[h.bucket(v)].push_row(&[v, l]);
        }
    }
    let mut labv_parts: Vec<Relation> = (0..p).map(|_| Relation::empty(labv_schema.clone())).collect();
    for (&v, &l) in labels.iter() {
        labv_parts[h.bucket(v)].push_row(&[v, l]);
    }
    let mut messages = Vec::new();
    for (s, part) in cand_parts.into_iter().enumerate() {
        if !part.is_empty() {
            messages.push(Message::tuples(s, part.renamed(format!("Cand_{iteration}"))));
        }
    }
    for (s, part) in labv_parts.into_iter().enumerate() {
        if !part.is_empty() {
            messages.push(Message::tuples(s, part.renamed(format!("LabV_{iteration}"))));
        }
    }
    cluster.communicate(messages);

    // Local: new label(v) = min(lab(v), min candidates).
    let cname = format!("Cand_{iteration}");
    let vname = format!("LabV_{iteration}");
    let updates = map_servers_parallel(cluster.servers(), |_, server| {
        let mut mins: BTreeMap<Value, Value> = BTreeMap::new();
        if let Some(lab) = server.fragment(&vname) {
            for t in lab.iter() {
                mins.insert(t[0], t[1]);
            }
        }
        if let Some(cand) = server.fragment(&cname) {
            for t in cand.iter() {
                let entry = mins.entry(t[0]).or_insert(t[1]);
                *entry = (*entry).min(t[1]);
            }
        }
        mins
    });
    for server_mins in updates {
        for (v, l) in server_mins {
            let entry = labels.entry(v).or_insert(l);
            *entry = (*entry).min(l);
        }
    }
}

/// One pointer-jumping iteration = one MPC round: co-locate `Lab(v, l)`
/// (hashed by `l`) with `Lab(l, l2)` (hashed by its vertex) and set
/// `lab(v) ← min(lab(v), l2)`.
fn jump_round(
    cluster: &mut Cluster,
    labels: &mut BTreeMap<Value, Value>,
    family: &MultiplyShiftHash,
    iteration: usize,
) {
    let p = cluster.p();
    let h = family.hasher(1000 + iteration, p);
    let by_label_schema = Schema::from_strs("ByLab", &["v", "lab"]);
    let by_vertex_schema = Schema::from_strs("ByVer", &["v", "lab"]);

    let mut by_label: Vec<Relation> = (0..p).map(|_| Relation::empty(by_label_schema.clone())).collect();
    let mut by_vertex: Vec<Relation> = (0..p).map(|_| Relation::empty(by_vertex_schema.clone())).collect();
    for (&v, &l) in labels.iter() {
        by_label[h.bucket(l)].push_row(&[v, l]);
        by_vertex[h.bucket(v)].push_row(&[v, l]);
    }
    let mut messages = Vec::new();
    for (s, part) in by_label.into_iter().enumerate() {
        if !part.is_empty() {
            messages.push(Message::tuples(s, part.renamed(format!("ByLab_{iteration}"))));
        }
    }
    for (s, part) in by_vertex.into_iter().enumerate() {
        if !part.is_empty() {
            messages.push(Message::tuples(s, part.renamed(format!("ByVer_{iteration}"))));
        }
    }
    cluster.communicate(messages);

    let lname = format!("ByLab_{iteration}");
    let vname = format!("ByVer_{iteration}");
    let updates = map_servers_parallel(cluster.servers(), |_, server| {
        let mut out: Vec<(Value, Value)> = Vec::new();
        let (Some(by_lab), Some(by_ver)) = (server.fragment(&lname), server.fragment(&vname)) else {
            return out;
        };
        // label -> its own label (lab(l) = l2), from the by-vertex copy.
        let mut lab_of: BTreeMap<Value, Value> = BTreeMap::new();
        for t in by_ver.iter() {
            lab_of.insert(t[0], t[1]);
        }
        for t in by_lab.iter() {
            if let Some(&l2) = lab_of.get(&t[1]) {
                out.push((t[0], l2));
            }
        }
        out
    });
    for list in updates {
        for (v, l2) in list {
            let entry = labels.get_mut(&v).expect("vertex exists");
            *entry = (*entry).min(l2);
        }
    }
}

/// Sequential union-find oracle for correctness checks.
pub fn connected_components_oracle(edges: &Relation) -> BTreeMap<Value, Value> {
    assert_eq!(edges.arity(), 2);
    let mut parent: BTreeMap<Value, Value> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<Value, Value>, v: Value) -> Value {
        let p = *parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = find(parent, p);
        parent.insert(v, root);
        root
    }
    for t in edges.iter() {
        let (u, v) = (t[0], t[1]);
        parent.entry(u).or_insert(u);
        parent.entry(v).or_insert(v);
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent.insert(hi, lo);
        }
    }
    let vertices: Vec<Value> = parent.keys().copied().collect();
    vertices
        .into_iter()
        .map(|v| {
            let root = find(&mut parent, v);
            (v, root)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::DataGenerator;

    fn labels_as_map(rel: &Relation) -> BTreeMap<Value, Value> {
        rel.iter().map(|t| (t[0], t[1])).collect()
    }

    fn same_partition(a: &BTreeMap<Value, Value>, b: &BTreeMap<Value, Value>) -> bool {
        // Two labellings describe the same partition iff they induce the
        // same equivalence classes.
        if a.len() != b.len() {
            return false;
        }
        let mut pairs: BTreeMap<Value, Value> = BTreeMap::new();
        for (v, la) in a {
            let lb = match b.get(v) {
                Some(l) => *l,
                None => return false,
            };
            match pairs.get(la) {
                Some(&expected) if expected != lb => return false,
                Some(_) => {}
                None => {
                    pairs.insert(*la, lb);
                }
            }
        }
        true
    }

    #[test]
    fn small_graph_components() {
        // Two components: {1,2,3} and {10,11}.
        let edges = Relation::from_rows(
            Schema::from_strs("E", &["src", "dst"]),
            vec![vec![1, 2], vec![2, 3], vec![10, 11]],
        );
        for strategy in [CcStrategy::Propagation, CcStrategy::PointerJumping] {
            let run = connected_components(&edges, 4, 7, strategy);
            let got = labels_as_map(&run.labels);
            let oracle = connected_components_oracle(&edges);
            assert!(same_partition(&got, &oracle), "{strategy:?}");
            assert_eq!(got[&1], got[&3]);
            assert_ne!(got[&1], got[&10]);
        }
    }

    #[test]
    fn layered_graph_matches_oracle() {
        let mut gen = DataGenerator::new(3, 1 << 20);
        let edges = gen.layered_matching_graph(40, 6);
        let oracle = connected_components_oracle(&edges);
        for strategy in [CcStrategy::Propagation, CcStrategy::PointerJumping] {
            let run = connected_components(&edges, 8, 5, strategy);
            assert!(same_partition(&labels_as_map(&run.labels), &oracle), "{strategy:?}");
        }
    }

    #[test]
    fn pointer_jumping_uses_fewer_iterations_on_long_paths() {
        let mut gen = DataGenerator::new(9, 1 << 20);
        let edges = gen.layered_matching_graph(20, 32);
        let prop = connected_components(&edges, 8, 5, CcStrategy::Propagation);
        let jump = connected_components(&edges, 8, 5, CcStrategy::PointerJumping);
        assert!(
            jump.iterations < prop.iterations,
            "jumping {} !< propagation {}",
            jump.iterations,
            prop.iterations
        );
        // Propagation needs ~diameter iterations; jumping ~log(diameter).
        assert!(prop.iterations >= 30);
        assert!(jump.iterations <= 10);
    }

    #[test]
    fn per_round_load_is_balanced() {
        let mut gen = DataGenerator::new(13, 1 << 20);
        let edges = gen.layered_matching_graph(200, 8);
        let p = 16;
        let run = connected_components(&edges, p, 5, CcStrategy::PointerJumping);
        let input_bits = edges.size_bits(pq_relation::bits_per_value(1 << 20)) as f64;
        for load in run.metrics.per_round_max_loads() {
            // Each round ships O(|E| + |V|) tuples; with p = 16 every
            // server should stay well below half the input.
            assert!((load as f64) < 0.5 * input_bits + 1024.0);
        }
    }

    #[test]
    fn singleton_and_empty_graphs() {
        let empty = Relation::empty(Schema::from_strs("E", &["src", "dst"]));
        let run = connected_components(&empty, 4, 1, CcStrategy::Propagation);
        assert!(run.labels.is_empty());
        let single = Relation::from_rows(
            Schema::from_strs("E", &["src", "dst"]),
            vec![vec![5, 5]],
        );
        let run = connected_components(&single, 4, 1, CcStrategy::PointerJumping);
        assert_eq!(labels_as_map(&run.labels)[&5], 5);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_edges_are_rejected() {
        let bad = Relation::from_rows(Schema::from_strs("E", &["a"]), vec![vec![1]]);
        connected_components(&bad, 2, 1, CcStrategy::Propagation);
    }
}
