//! Lower and upper bound formulas in the presence of skew (Section 4).
//!
//! With `x`-statistics — the exact frequency `m_j(h)` of every assignment
//! `h` of a variable set `x` — Theorem 4.4 lower-bounds the load of any
//! one-round algorithm by
//!
//! ```text
//!   L ≥ min_j (a_j − d_j)/(4 a_j) · ( Σ_h Π_j M_j(h_j)^{u_j} / p )^{1/Σ_j u_j}
//! ```
//!
//! for every fractional edge packing `u` of `q` that *saturates* `x`.
//! For the star query with `z`-statistics the saturating packings are
//! exactly the 0/1 vectors with at least one 1, which yields the
//! specialised bound (Eq. 20) that the §4.2.1 algorithm matches. The
//! triangle algorithm of §4.2.2 has the upper-bound formula implemented in
//! [`triangle_skew_upper_bound`].

use pq_query::{packing, residual::fixed_arities, saturates, ConjunctiveQuery};
use pq_relation::statistics::GroupStatistics;
use std::collections::BTreeMap;

/// Per-relation `x`-statistics in **bits**: for every group tuple `h_j` over
/// `x ∩ vars(S_j)`, the size `M_j(h_j) = a_j · m_j(h_j) · log n`.
#[derive(Debug, Clone)]
pub struct SkewStatistics {
    /// The fixed variable set `x`.
    pub fixed: Vec<String>,
    /// For each relation: its grouped statistics (frequencies in tuples).
    pub groups: BTreeMap<String, GroupStatistics>,
    /// Bits per value (`log n`).
    pub bits_per_value: u64,
    /// Arity of each relation, keyed by name.
    pub arities: BTreeMap<String, usize>,
}

impl SkewStatistics {
    /// Compute `x`-statistics for every relation of the query from a
    /// database instance.
    pub fn compute(
        query: &ConjunctiveQuery,
        database: &pq_relation::Database,
        fixed: &[String],
    ) -> Self {
        let mut groups = BTreeMap::new();
        let mut arities = BTreeMap::new();
        for atom in query.atoms() {
            let bound = pq_query::bind_atom(atom, database.expect_relation(atom.relation()));
            let attrs: Vec<String> = atom
                .distinct_variables()
                .into_iter()
                .filter(|v| fixed.contains(v))
                .collect();
            groups.insert(
                atom.relation().to_string(),
                GroupStatistics::compute(&bound, &attrs),
            );
            arities.insert(atom.relation().to_string(), atom.arity());
        }
        SkewStatistics {
            fixed: fixed.to_vec(),
            groups,
            bits_per_value: database.bits_per_value(),
            arities,
        }
    }

    /// Bits of the `h`-group of relation `rel`: `a_j · m_j(h) · log n`.
    fn group_bits(&self, rel: &str, group: &pq_relation::Tuple) -> f64 {
        let arity = *self.arities.get(rel).unwrap_or(&1) as f64;
        arity * self.groups[rel].frequency(group) as f64 * self.bits_per_value as f64
    }
}

/// Evaluate the Theorem 4.4 quantity `L_x(u, M, p)` (Eq. 21) for a packing
/// `u` over the *shared* heavy-hitter groups. The statistics must all be
/// grouped by the same single-variable (or identically-ordered) key so that
/// groups align; this is the case for star and triangle queries where
/// `x = {z}` or `x = {x_i}`.
pub fn skewed_load_for_packing(
    query: &ConjunctiveQuery,
    stats: &SkewStatistics,
    u: &[f64],
    p: usize,
) -> f64 {
    let sum_u: f64 = u.iter().sum();
    if sum_u <= 1e-12 {
        return 0.0;
    }
    // Collect the union of group keys across relations that have a
    // non-trivial grouping (relations whose x-intersection is empty
    // contribute their full size for every group).
    let mut keys: Vec<pq_relation::Tuple> = Vec::new();
    for atom in query.atoms() {
        let g = &stats.groups[atom.relation()];
        if !g.attributes.is_empty() {
            for key in g.frequencies.keys() {
                if !keys.contains(key) {
                    keys.push(key.clone());
                }
            }
        }
    }
    if keys.is_empty() {
        keys.push(pq_relation::Tuple::new(vec![]));
    }
    let mut total = 0.0f64;
    for key in &keys {
        let mut product = 1.0f64;
        for (atom, &uj) in query.atoms().iter().zip(u.iter()) {
            if uj <= 1e-12 {
                continue;
            }
            let g = &stats.groups[atom.relation()];
            let bits = if g.attributes.is_empty() {
                // Relation not restricted by x: its whole size counts.
                let arity = *stats.arities.get(atom.relation()).unwrap_or(&1) as f64;
                arity * g.total() as f64 * stats.bits_per_value as f64
            } else {
                stats.group_bits(atom.relation(), key)
            };
            product *= bits.powf(uj);
        }
        total += product;
    }
    (total / p as f64).powf(1.0 / sum_u)
}

/// The Theorem 4.4 lower bound: maximise over the vertices of the packing
/// polytope of the **residual** query `q_x` (the packing need only respect
/// the constraints at the non-fixed variables; cf. the definition preceding
/// Theorem 4.4) that saturate `x`, including the
/// `min_j (a_j − d_j)/(4 a_j)` constant. Returns 0 when no vertex saturates
/// `x` (the theorem then gives nothing).
pub fn skewed_lower_bound(
    query: &ConjunctiveQuery,
    stats: &SkewStatistics,
    p: usize,
) -> f64 {
    let d = fixed_arities(query, &stats.fixed);
    let constant = query
        .atoms()
        .iter()
        .zip(d.iter())
        .map(|(a, &dj)| {
            let aj = a.arity() as f64;
            (aj - dj as f64) / (4.0 * aj)
        })
        .fold(f64::INFINITY, f64::min)
        .max(0.0);
    let residual = pq_query::residual_query(query, &stats.fixed);
    let mut best = 0.0f64;
    for u in packing::fractional_edge_packing_vertices(&residual) {
        if !saturates(query, &u, &stats.fixed, 1e-7) {
            continue;
        }
        best = best.max(skewed_load_for_packing(query, stats, &u, p));
    }
    constant * best
}

/// The star-query bound of Eq. 20 (and the matching lower bound after
/// Theorem 4.4): `max over non-empty I ⊆ [ℓ]` of
/// `( Σ_h Π_{j∈I} M_j(h) / p )^{1/|I|}`, where `h` ranges over the known
/// heavy hitters of `z` (or all `z` values for the exact-statistics lower
/// bound). `per_relation_bits[j]` maps each heavy hitter to `M_j(h)`.
pub fn star_heavy_hitter_bound(per_relation_bits: &[BTreeMap<u64, f64>], p: usize) -> f64 {
    let l = per_relation_bits.len();
    if l == 0 {
        return 0.0;
    }
    // Union of heavy-hitter values.
    let mut hitters: Vec<u64> = Vec::new();
    for rel in per_relation_bits {
        for &h in rel.keys() {
            if !hitters.contains(&h) {
                hitters.push(h);
            }
        }
    }
    let mut best = 0.0f64;
    for mask in 1u64..(1 << l) {
        let members: Vec<usize> = (0..l).filter(|j| mask & (1 << j) != 0).collect();
        let total: f64 = hitters
            .iter()
            .map(|h| {
                members
                    .iter()
                    .map(|&j| per_relation_bits[j].get(h).copied().unwrap_or(0.0))
                    .product::<f64>()
            })
            .sum();
        if total > 0.0 {
            best = best.max((total / p as f64).powf(1.0 / members.len() as f64));
        }
    }
    best
}

/// The upper-bound formula for the skew-aware triangle algorithm of
/// §4.2.2 (up to the polylog factor):
/// `max( M/p^{2/3}, √(Σ_h M_R(h)·M_T(h))/p, … )` over the three relation
/// pairs, where the sums range over heavy hitters of the shared variable.
pub fn triangle_skew_upper_bound(
    size_bits: f64,
    pair_products: &[f64; 3],
    p: usize,
) -> f64 {
    let base = size_bits / (p as f64).powf(2.0 / 3.0);
    let heavy = pair_products
        .iter()
        .map(|&s| (s / p as f64).sqrt())
        .fold(0.0, f64::max);
    base.max(heavy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::{Database, Relation, Schema};

    /// A star-query database (T_2, the simple join) where value `0` of `z`
    /// is a heavy hitter of frequency `heavy` in both relations and the
    /// remaining tuples are a matching.
    fn skewed_star_db(m: usize, heavy: usize) -> Database {
        let mut db = Database::new(1 << 20);
        for (j, name) in ["S1", "S2"].iter().enumerate() {
            let mut rows = Vec::new();
            for i in 0..heavy {
                rows.push(vec![0, (j * 1_000_000 + i + 1) as u64]);
            }
            for i in heavy..m {
                rows.push(vec![(i + 1) as u64, (j * 1_000_000 + i + 1) as u64]);
            }
            db.insert(Relation::from_rows(Schema::from_strs(name, &["a", "b"]), rows));
        }
        db
    }

    #[test]
    fn skew_statistics_capture_frequencies() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_star_db(1000, 100);
        let stats = SkewStatistics::compute(&q, &db, &["z".to_string()]);
        let g = &stats.groups["S1"];
        assert_eq!(g.frequency(&pq_relation::Tuple::from([0])), 100);
        assert_eq!(g.total(), 1000);
        assert_eq!(stats.arities["S1"], 2);
    }

    #[test]
    fn skewed_lower_bound_exceeds_skew_free_bound_under_heavy_skew() {
        // Theorem 4.4 beats the skew-free bound once the heavy hitter's
        // residual product dominates: with half the tuples on one z value
        // the bound behaves like sqrt(M_1(h)·M_2(h)/p) ~ M/(2·sqrt(p)),
        // which exceeds M/p (even after the 1/8 constant) for large p.
        let q = ConjunctiveQuery::simple_join();
        let p = 1024;
        let m = 4000;
        let db_skew = skewed_star_db(m, m / 2);
        let stats = SkewStatistics::compute(&q, &db_skew, &["z".to_string()]);
        let skewed = skewed_lower_bound(&q, &stats, p);
        // Skew-free bound: M/p.
        let skew_free = db_skew.relation_size_bits("S1") as f64 / p as f64;
        assert!(
            skewed > skew_free,
            "skewed bound {skewed} should exceed skew-free bound {skew_free}"
        );
    }

    #[test]
    fn skewed_lower_bound_close_to_skew_free_without_skew() {
        let q = ConjunctiveQuery::simple_join();
        let p = 16;
        let db = skewed_star_db(2000, 1); // essentially a matching
        let stats = SkewStatistics::compute(&q, &db, &["z".to_string()]);
        let skewed = skewed_lower_bound(&q, &stats, p);
        let m_bits = db.relation_size_bits("S1") as f64;
        // Lower bound never exceeds ~M (sanity) and is within a constant of
        // M/p for matching data (the sum over h of M1(h)·M2(h) ≈ m·(bits per
        // tuple)^2 which after the square root is ~M/sqrt(m·p) — small).
        assert!(skewed <= m_bits);
        assert!(skewed >= 0.0);
    }

    #[test]
    fn star_bound_single_dominant_hitter() {
        // One heavy hitter with all of both relations: bound ≈ sqrt(M1*M2/p),
        // matching the extreme case discussed after Eq. 20.
        let m_bits = 1e6;
        let p = 64;
        let maps = [
            BTreeMap::from([(0u64, m_bits)]),
            BTreeMap::from([(0u64, m_bits)]),
        ];
        let b = star_heavy_hitter_bound(&maps, p);
        let expected = (m_bits * m_bits / p as f64).sqrt();
        assert!((b - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn star_bound_takes_max_over_subsets() {
        // Relation 1 has a big heavy hitter, relation 2 a tiny one: the
        // singleton subset {1} can dominate the pair.
        let p = 100;
        let maps = [
            BTreeMap::from([(0u64, 1e8)]),
            BTreeMap::from([(0u64, 1.0)]),
        ];
        let b = star_heavy_hitter_bound(&maps, p);
        let singleton = 1e8 / p as f64;
        let pair = (1e8 * 1.0 / p as f64).sqrt();
        assert!((b - singleton.max(pair)).abs() < 1e-6);
        assert!(b >= singleton);
    }

    #[test]
    fn star_bound_empty_is_zero() {
        assert_eq!(star_heavy_hitter_bound(&[], 10), 0.0);
        let maps = [BTreeMap::new(), BTreeMap::new()];
        assert_eq!(star_heavy_hitter_bound(&maps, 10), 0.0);
    }

    #[test]
    fn triangle_upper_bound_picks_the_larger_term() {
        let m = 1e6;
        let p = 64;
        // Without heavy pairs the vanilla term dominates.
        let b = triangle_skew_upper_bound(m, &[0.0, 0.0, 0.0], p);
        assert!((b - m / (p as f64).powf(2.0 / 3.0)).abs() < 1e-6);
        // With an enormous heavy-pair product the sqrt term dominates.
        let b = triangle_skew_upper_bound(m, &[1e14, 0.0, 0.0], p);
        assert!((b - (1e14 / p as f64).sqrt()).abs() < 1e-3);
    }

    #[test]
    fn skewed_load_zero_packing_is_zero() {
        let q = ConjunctiveQuery::simple_join();
        let db = skewed_star_db(100, 10);
        let stats = SkewStatistics::compute(&q, &db, &["z".to_string()]);
        assert_eq!(skewed_load_for_packing(&q, &stats, &[0.0, 0.0], 8), 0.0);
    }
}
