//! Every bound stated in the paper, as executable formulas.
//!
//! * [`one_round`] — the one-round, skew-free story: `L(u, M, p)`, the lower
//!   bound `L_lower = max_{u ∈ pk(q)} L(u, M, p)` (Theorem 3.5), the
//!   matching upper bound from the share LP (Theorem 3.4/3.15), space and
//!   speedup exponents (Section 3.4).
//! * [`skew_bounds`] — the heavy-hitter lower bound over `x`-statistics
//!   (Theorem 4.4), its specialisation to star queries (Eq. after Thm 4.4 /
//!   Eq. 20) and the triangle upper-bound formula of Section 4.2.2.
//! * [`replication`] — the replication-rate / load tradeoff
//!   (Corollary 3.19, Example 3.20).
//! * [`multiround`] — round lower bounds for chains, tree-like queries and
//!   cycles (Corollaries 5.15/5.17, Lemma 5.18), the matching upper bound of
//!   Lemma 5.4, and the (ε,r)-plan constructions of Lemmas 5.6/5.7.
//! * [`balls`] — the weighted balls-in-bins tail bounds of Appendix A used
//!   in the HyperCube load analysis.
//! * [`entropy`] — the entropy accounting of Section 3.2.1 (Eq. 12,
//!   Lemma 3.9, Proposition 3.14) relating the naive encoding size to the
//!   information-theoretic size of random matchings.

pub mod balls;
pub mod entropy;
pub mod multiround;
pub mod one_round;
pub mod replication;
pub mod skew_bounds;
