//! The replication-rate / load tradeoff (Corollary 3.19, Example 3.20).
//!
//! The replication rate of an algorithm is `r = Σ_s L_s / |I|`: how many
//! times each input bit is communicated on average. Corollary 3.19 shows
//! that any one-round algorithm with maximum load `L ≤ min_j M_j` must have
//!
//! ```text
//!   r ≥ c · L / Σ_j M_j · max_u Π_j (M_j / L)^{u_j}
//! ```
//!
//! where `u` ranges over fractional edge packings and
//! `c = max_u (Σ_j u_j / 4)^{Σ_j u_j}`. With equal sizes this becomes
//! `r = Ω((M/L)^{τ* − 1})` — for the triangle, `Ω(√(M/L))` (Example 3.20).

use pq_query::{packing, ConjunctiveQuery};
use std::collections::BTreeMap;

/// The replication-rate lower bound of Corollary 3.19, in "copies of each
/// input bit". Returns 0 when `L` exceeds every `M_j` (in which case whole
/// relations can be shipped for free in the corollary's sense).
pub fn replication_rate_lower_bound(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    load_bits: f64,
) -> f64 {
    let sizes: Vec<f64> = query
        .atoms()
        .iter()
        .map(|a| {
            *sizes_bits
                .get(a.relation())
                .unwrap_or_else(|| panic!("no size for relation `{}`", a.relation()))
                as f64
        })
        .collect();
    if sizes.iter().all(|&m| load_bits > m) {
        return 0.0;
    }
    let total: f64 = sizes.iter().sum();
    let vertices = packing::fractional_edge_packing_vertices(query);
    let mut best = 0.0f64;
    for u in &vertices {
        let sum_u: f64 = u.iter().sum();
        if sum_u <= 1e-12 {
            continue;
        }
        let c = (sum_u / 4.0).powf(sum_u);
        let product: f64 = u
            .iter()
            .zip(sizes.iter())
            .map(|(&uj, &mj)| (mj / load_bits).powf(uj))
            .product();
        let bound = c * load_bits / total * product;
        best = best.max(bound);
    }
    best
}

/// The asymptotic equal-size form `(M/L)^{τ* − 1}` (Example 3.20 without the
/// constant), convenient for plotting the tradeoff shape.
pub fn replication_rate_shape(query: &ConjunctiveQuery, size_bits: f64, load_bits: f64) -> f64 {
    let tau = packing::vertex_cover_number(query);
    (size_bits / load_bits).powf(tau - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal_sizes(query: &ConjunctiveQuery, m: u64) -> BTreeMap<String, u64> {
        query.relation_names().into_iter().map(|r| (r, m)).collect()
    }

    #[test]
    fn triangle_bound_scales_like_sqrt_m_over_l() {
        // Example 3.20: r = Ω(sqrt(M/L)).
        let q = ConjunctiveQuery::triangle();
        let m = (1u64 << 24) as f64;
        let sizes = equal_sizes(&q, 1 << 24);
        let r1 = replication_rate_lower_bound(&q, &sizes, m / 64.0);
        let r2 = replication_rate_lower_bound(&q, &sizes, m / 256.0);
        // Quadrupling M/L should roughly double the bound.
        let ratio = r2 / r1;
        assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
        assert!(r1 > 0.0);
    }

    #[test]
    fn bound_is_zero_when_load_exceeds_all_relations() {
        let q = ConjunctiveQuery::triangle();
        let sizes = equal_sizes(&q, 1000);
        assert_eq!(replication_rate_lower_bound(&q, &sizes, 2000.0), 0.0);
    }

    #[test]
    fn star_query_admits_constant_replication() {
        // τ*(T_k) = 1, so the shape bound is (M/L)^0 = 1: replication O(1)
        // is achievable — consistent with the "ideal case" remark after
        // Corollary 3.19.
        let q = ConjunctiveQuery::star(3);
        assert!((replication_rate_shape(&q, 1e9, 1e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shape_for_triangle_is_sqrt() {
        let q = ConjunctiveQuery::triangle();
        let shape = replication_rate_shape(&q, 1e8, 1e4);
        assert!((shape - 1e2).abs() / 1e2 < 1e-6);
    }

    #[test]
    fn bound_increases_with_smaller_load() {
        let q = ConjunctiveQuery::cycle(4);
        let sizes = equal_sizes(&q, 1 << 20);
        let big_l = replication_rate_lower_bound(&q, &sizes, (1u64 << 18) as f64);
        let small_l = replication_rate_lower_bound(&q, &sizes, (1u64 << 12) as f64);
        assert!(small_l > big_l);
    }
}
