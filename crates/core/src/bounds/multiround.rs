//! Multi-round bounds (Section 5): how many rounds are needed to reach a
//! target load `L = O(M/p^{1−ε})`.
//!
//! * Upper bound (Lemma 5.4): a connected query can be computed in
//!   `⌈log_{kε}(rad q)⌉ + 1` rounds if tree-like, `⌊log_{kε}(rad q)⌋ + 2`
//!   otherwise, where `kε = 2·⌊1/(1−ε)⌋`.
//! * Lower bounds in the tuple-based MPC model: chains need
//!   `⌈log_{kε} k⌉` rounds (Cor. 5.15), tree-like queries
//!   `⌈log_{kε}(diam q)⌉` (Cor. 5.17), cycles
//!   `⌊log_{kε}(k/(mε+1))⌋ + 2` with `mε = ⌊2/(1−ε)⌋` (Lemma 5.18).
//! * The `(ε, r)`-plan constructions of Lemmas 5.6/5.7 are provided for
//!   chains and cycles so the lower-bound machinery can be inspected.

use pq_query::{characteristic, packing, ConjunctiveQuery, Hypergraph};

/// `kε = 2·⌊1/(1−ε)⌋`: the longest chain computable in one round with space
/// exponent ε (Section 5.1).
pub fn k_epsilon(epsilon: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&epsilon),
        "space exponent must lie in [0, 1)"
    );
    // A small slack absorbs floating-point error for exact thresholds such
    // as ε = 2/3 (where 1/(1−ε) evaluates to 2.999…).
    2 * ((1.0 / (1.0 - epsilon) + 1e-9).floor() as usize)
}

/// `mε = ⌊2/(1−ε)⌋` from Lemma 5.7.
pub fn m_epsilon(epsilon: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&epsilon),
        "space exponent must lie in [0, 1)"
    );
    (2.0 / (1.0 - epsilon) + 1e-9).floor() as usize
}

/// Is the query in `Γ¹_ε`, i.e. computable in one round with load
/// `O(M/p^{1−ε})`? By Section 5.1 this is `τ*(q) ≤ 1/(1−ε)`.
pub fn in_gamma_one(query: &ConjunctiveQuery, epsilon: f64) -> bool {
    packing::vertex_cover_number(query) <= 1.0 / (1.0 - epsilon) + 1e-9
}

/// Integer `⌈log_b(x)⌉` for `b ≥ 2`, `x ≥ 1`, computed without floating
/// point drift.
fn ceil_log(base: usize, x: usize) -> usize {
    assert!(base >= 2 && x >= 1);
    let mut rounds = 0usize;
    let mut reach = 1usize;
    while reach < x {
        reach = reach.saturating_mul(base);
        rounds += 1;
    }
    rounds
}

/// Integer `⌊log_b(x)⌋` for `b ≥ 2`, `x ≥ 1`.
fn floor_log(base: usize, x: usize) -> usize {
    assert!(base >= 2 && x >= 1);
    let mut rounds = 0usize;
    let mut reach = base;
    while reach <= x {
        reach = reach.saturating_mul(base);
        rounds += 1;
    }
    rounds
}

/// The round upper bound of Lemma 5.4 for a connected query at space
/// exponent ε. Queries already in `Γ¹_ε` need exactly one round.
///
/// # Panics
/// Panics when the query is disconnected.
pub fn rounds_upper_bound(query: &ConjunctiveQuery, epsilon: f64) -> usize {
    let h = Hypergraph::of(query);
    let rad = h.radius().expect("rounds_upper_bound requires a connected query");
    if in_gamma_one(query, epsilon) {
        return 1;
    }
    let ke = k_epsilon(epsilon).max(2);
    if characteristic::is_tree_like(query) {
        ceil_log(ke, rad.max(1)) + 1
    } else {
        floor_log(ke, rad.max(1)) + 2
    }
}

/// The chain lower bound of Corollary 5.15: computing `L_k` with load
/// `O(M/p^{1−ε})` needs at least `⌈log_{kε} k⌉` rounds.
pub fn chain_rounds_lower_bound(k: usize, epsilon: f64) -> usize {
    assert!(k >= 1);
    ceil_log(k_epsilon(epsilon).max(2), k)
}

/// The tree-like lower bound of Corollary 5.17: at least
/// `⌈log_{kε}(diam q)⌉` rounds.
///
/// # Panics
/// Panics when the query is disconnected.
pub fn treelike_rounds_lower_bound(query: &ConjunctiveQuery, epsilon: f64) -> usize {
    let diam = Hypergraph::of(query)
        .diameter()
        .expect("lower bound requires a connected query");
    if diam == 0 {
        return 1;
    }
    ceil_log(k_epsilon(epsilon).max(2), diam).max(1)
}

/// The cycle lower bound of Lemma 5.18: computing `C_k` with load
/// `O(M/p^{1−ε})` needs at least `⌊log_{kε}(k/(mε+1))⌋ + 2` rounds
/// (for `k > mε`).
pub fn cycle_rounds_lower_bound(k: usize, epsilon: f64) -> usize {
    let me = m_epsilon(epsilon);
    if k <= me {
        return 1;
    }
    let ke = k_epsilon(epsilon).max(2);
    floor_log(ke, (k / (me + 1)).max(1)) + 2
}

/// One step of the `(ε, r)`-plan of Lemma 5.6 for the chain `L_k`: the
/// ε-good set `M` containing every `kε`-th atom starting from `S_1`
/// (atom indices, 0-based), such that `L_k / M ≅ L_{⌈k/kε⌉}`.
pub fn chain_good_set(k: usize, epsilon: f64) -> Vec<usize> {
    let ke = k_epsilon(epsilon).max(2);
    (0..k).step_by(ke).collect()
}

/// The full `(ε, r)`-plan for `L_k` (Lemma 5.6): the sequence of contracted
/// queries `q = q_0, q_1, …, q_r` where each step contracts the ε-good set,
/// stopping when the remaining chain is no longer in `Γ¹_ε` but one more
/// contraction would make it so. Returns the chain lengths after each step.
pub fn chain_plan_lengths(k: usize, epsilon: f64) -> Vec<usize> {
    let ke = k_epsilon(epsilon).max(2);
    let mut lengths = vec![k];
    let mut current = k;
    // Stop while the contracted query is still outside Γ¹_ε
    // (τ*(L_j) = ⌈j/2⌉ ≤ 1/(1−ε) iff j ≤ kε).
    while current > ke {
        current = current.div_ceil(ke);
        lengths.push(current);
    }
    lengths
}

/// Verify that a candidate atom set `M` is ε-good for a query
/// (Definition 5.5): `χ(M) = 0` and no connected subquery in `Γ¹_ε`
/// contains two atoms of `M`. Exponential in the number of atoms; intended
/// for the small queries of the experiments.
pub fn is_epsilon_good(query: &ConjunctiveQuery, m: &[usize], epsilon: f64) -> bool {
    if characteristic::characteristic_of_atoms(query, m) != 0 {
        return false;
    }
    for sub in query.connected_subqueries() {
        let subquery = query.subquery(&sub, "sub");
        if in_gamma_one(&subquery, epsilon) {
            let count = sub.iter().filter(|i| m.contains(i)).count();
            if count > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_epsilon_values() {
        assert_eq!(k_epsilon(0.0), 2);
        assert_eq!(k_epsilon(0.5), 4);
        assert_eq!(k_epsilon(2.0 / 3.0), 6);
        assert_eq!(m_epsilon(0.0), 2);
        assert_eq!(m_epsilon(0.5), 4);
    }

    #[test]
    #[should_panic(expected = "space exponent")]
    fn k_epsilon_rejects_one() {
        k_epsilon(1.0);
    }

    #[test]
    fn gamma_one_membership() {
        // ε = 0: queries with τ* ≤ 1 (star queries) are one-round.
        assert!(in_gamma_one(&ConjunctiveQuery::star(4), 0.0));
        assert!(!in_gamma_one(&ConjunctiveQuery::chain(3), 0.0));
        // ε = 1/2: chains up to length 4 (τ* = 2) are one-round.
        assert!(in_gamma_one(&ConjunctiveQuery::chain(4), 0.5));
        assert!(!in_gamma_one(&ConjunctiveQuery::chain(5), 0.5));
        // The triangle (τ* = 3/2) is in Γ¹ for ε = 1/3.
        assert!(in_gamma_one(&ConjunctiveQuery::triangle(), 1.0 / 3.0));
        assert!(!in_gamma_one(&ConjunctiveQuery::triangle(), 0.0));
    }

    #[test]
    fn table_3_round_counts() {
        // Table 3: rounds to achieve load O(M/p) (ε = 0):
        // C_k and L_k need ~ceil(log2 k); T_k needs 1; SP_k needs 2.
        for k in [4usize, 8, 16] {
            assert_eq!(
                rounds_upper_bound(&ConjunctiveQuery::chain(k), 0.0),
                ceil_log(2, k),
                "L_{k}"
            );
        }
        assert_eq!(rounds_upper_bound(&ConjunctiveQuery::star(5), 0.0), 1);
        assert_eq!(rounds_upper_bound(&ConjunctiveQuery::star_of_paths(4), 0.0), 2);
        // Cycle C_6 at ε = 0: floor(log2 rad=3) + 2 = 3.
        assert_eq!(rounds_upper_bound(&ConjunctiveQuery::cycle(6), 0.0), 3);
    }

    #[test]
    fn example_5_2_l16_plans() {
        // L_16 at ε = 1/2: depth-2 plan (log_4 16 = 2).
        assert_eq!(rounds_upper_bound(&ConjunctiveQuery::chain(16), 0.5), 2 + 1);
        // The paper's plan of Example 5.2 uses exactly 2 rounds because the
        // radius decomposition is pessimistic by one round; the lower bound
        // is log_4 16 = 2.
        assert_eq!(chain_rounds_lower_bound(16, 0.5), 2);
        // At ε = 0 the bushy binary plan needs log2 16 = 4 rounds.
        assert_eq!(chain_rounds_lower_bound(16, 0.0), 4);
    }

    #[test]
    fn upper_and_lower_bounds_within_one_round_for_chains() {
        for epsilon in [0.0, 0.5] {
            for k in 2..=20 {
                let lower = chain_rounds_lower_bound(k, epsilon);
                let upper = rounds_upper_bound(&ConjunctiveQuery::chain(k), epsilon);
                assert!(upper >= lower, "L_{k} eps={epsilon}");
                assert!(upper <= lower + 1, "L_{k} eps={epsilon}: {upper} > {lower}+1");
            }
        }
    }

    #[test]
    fn treelike_lower_bound_uses_diameter() {
        // diam(L_k) = k, so the bound matches the chain bound.
        for k in 2..=10 {
            assert_eq!(
                treelike_rounds_lower_bound(&ConjunctiveQuery::chain(k), 0.0),
                chain_rounds_lower_bound(k, 0.0)
            );
        }
        // SP_3 has diameter 4: lower bound 2 rounds at ε = 0, matching the
        // 2-round plan of Example 5.3.
        assert_eq!(
            treelike_rounds_lower_bound(&ConjunctiveQuery::star_of_paths(3), 0.0),
            2
        );
    }

    #[test]
    fn example_5_19_cycle_bounds() {
        // ε = 0: C6 lower bound = floor(log2(6/3)) + 2 = 3 and the upper
        // bound is also 3 (tight). C5 lower bound = 2, upper bound 3.
        assert_eq!(cycle_rounds_lower_bound(6, 0.0), 3);
        assert_eq!(rounds_upper_bound(&ConjunctiveQuery::cycle(6), 0.0), 3);
        assert_eq!(cycle_rounds_lower_bound(5, 0.0), 2);
        assert_eq!(rounds_upper_bound(&ConjunctiveQuery::cycle(5), 0.0), 3);
    }

    #[test]
    fn chain_plan_lengths_shrink_geometrically() {
        // ε = 0 (kε = 2): 16 -> 8 -> 4 -> 2.
        assert_eq!(chain_plan_lengths(16, 0.0), vec![16, 8, 4, 2]);
        // ε = 1/2 (kε = 4): 16 -> 4.
        assert_eq!(chain_plan_lengths(16, 0.5), vec![16, 4]);
        // Already in Γ¹: no contraction.
        assert_eq!(chain_plan_lengths(3, 0.5), vec![3]);
    }

    #[test]
    fn chain_good_set_is_epsilon_good() {
        // Lemma 5.6's construction produces ε-good sets.
        for (k, epsilon) in [(8usize, 0.0), (9, 0.0), (12, 0.5)] {
            let q = ConjunctiveQuery::chain(k);
            let m = chain_good_set(k, epsilon);
            assert!(is_epsilon_good(&q, &m, epsilon), "L_{k} eps={epsilon}: {m:?}");
        }
    }

    #[test]
    fn non_good_sets_are_rejected() {
        // Two adjacent atoms of L_4 lie in a common Γ¹_0 subquery (a path of
        // length 2 has τ* = 1), so {0, 1} is not 0-good.
        let q = ConjunctiveQuery::chain(4);
        assert!(!is_epsilon_good(&q, &[0, 1], 0.0));
        // A triangle atom set has χ(M) = 1 ≠ 0 inside K4.
        let k4 = ConjunctiveQuery::k4();
        assert!(!is_epsilon_good(&k4, &[0, 1, 2], 0.0));
    }

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log(2, 1), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(2, 5), 3);
        assert_eq!(ceil_log(4, 16), 2);
        assert_eq!(ceil_log(4, 17), 3);
        assert_eq!(floor_log(2, 1), 0);
        assert_eq!(floor_log(2, 7), 2);
        assert_eq!(floor_log(2, 8), 3);
        assert_eq!(floor_log(3, 9), 2);
    }

    #[test]
    fn cycle_lower_bound_small_k_is_one_round() {
        // k <= mε: computable in one round.
        assert_eq!(cycle_rounds_lower_bound(2, 0.0), 1);
        assert_eq!(cycle_rounds_lower_bound(4, 0.5), 1);
    }
}
