//! Weighted balls-in-bins tail bounds (Appendix A).
//!
//! The HyperCube load analysis reduces to the following question: hashing a
//! set of weighted balls (tuples, or groups of tuples sharing a join-key
//! value) into `K` bins, how far above the mean `m/K` can the heaviest bin
//! get? Theorem A.1 gives the tail bound
//!
//! ```text
//!   Pr[max bin ≥ (1+δ) m/K] ≤ K · e^{−h(δ)/β}      where h(x) = (1+x)ln(1+x) − x
//! ```
//!
//! provided every ball weighs at most `β·m/K`. The stronger form replaces
//! `h(δ)` by `K·D((1+δ)/K ‖ 1/K)` (relative entropy). This module provides
//! both bounds and an empirical `max_bin_load` helper used by experiment
//! E11 to check them against simulation.

use pq_relation::{BucketHasher, HashFamily};

/// `h(x) = (1+x)·ln(1+x) − x`, the exponent of the Bennett-style bound.
pub fn bennett_h(x: f64) -> f64 {
    assert!(x >= 0.0, "h(x) is used for x >= 0");
    (1.0 + x) * (1.0 + x).ln() - x
}

/// Binary relative entropy `D(q' ‖ q)` for Bernoulli parameters.
pub fn relative_entropy(q_prime: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q_prime) && (0.0..=1.0).contains(&q));
    let term = |a: f64, b: f64| if a <= 0.0 { 0.0 } else { a * (a / b).ln() };
    term(q_prime, q) + term(1.0 - q_prime, 1.0 - q)
}

/// The tail bound of Theorem A.1: the probability that hashing balls of
/// total weight `m` and maximum ball weight `β·m/K` into `K` bins produces a
/// bin heavier than `(1+δ)·m/K`. Values above 1 mean the bound is vacuous.
pub fn weighted_balls_tail_bound(k_bins: usize, beta: f64, delta: f64) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    (k_bins as f64 * (-bennett_h(delta) / beta).exp()).min(1.0)
}

/// The sharper tail bound using the relative-entropy exponent
/// `K·D((1+δ)/K ‖ 1/K)` (Theorem A.2 + union bound); requires
/// `(1+δ)/K ≤ 1`.
pub fn weighted_balls_tail_bound_kl(k_bins: usize, beta: f64, delta: f64) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    let k = k_bins as f64;
    let q_prime = ((1.0 + delta) / k).min(1.0);
    let exponent = k * relative_entropy(q_prime, 1.0 / k);
    (k * (-exponent / beta).exp()).min(1.0)
}

/// The smallest `δ` for which the Theorem A.1 bound drops below
/// `failure_probability` — i.e. the predicted load multiplier
/// `(1+δ)` at that confidence. Solved by monotone bisection.
pub fn load_multiplier_for_confidence(k_bins: usize, beta: f64, failure_probability: f64) -> f64 {
    assert!(failure_probability > 0.0 && failure_probability < 1.0);
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while weighted_balls_tail_bound(k_bins, beta, hi) > failure_probability {
        hi *= 2.0;
        if hi > 1e9 {
            break;
        }
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if weighted_balls_tail_bound(k_bins, beta, mid) > failure_probability {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    1.0 + hi
}

/// Empirically hash weighted balls (by index) into `k_bins` with the given
/// hash family and return the maximum bin weight. Ball `i` is identified by
/// `ids[i]` and carries `weights[i]`.
pub fn max_bin_load<F: HashFamily>(
    ids: &[u64],
    weights: &[f64],
    k_bins: usize,
    family: &F,
    hash_index: usize,
) -> f64 {
    assert_eq!(ids.len(), weights.len(), "one weight per ball id");
    let hasher = family.hasher(hash_index, k_bins);
    let mut bins = vec![0.0f64; k_bins];
    for (&id, &w) in ids.iter().zip(weights.iter()) {
        bins[hasher.bucket(id)] += w;
    }
    bins.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_relation::MultiplyShiftHash;

    #[test]
    fn h_is_zero_at_zero_and_convex_increasing() {
        assert!(bennett_h(0.0).abs() < 1e-12);
        assert!(bennett_h(0.5) > 0.0);
        assert!(bennett_h(2.0) > bennett_h(1.0));
        // h(1) = 2 ln 2 − 1.
        assert!((bennett_h(1.0) - (2.0 * 2f64.ln() - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn relative_entropy_properties() {
        assert!(relative_entropy(0.5, 0.5).abs() < 1e-12);
        assert!(relative_entropy(0.9, 0.1) > 0.0);
        assert!(relative_entropy(0.0, 0.3) > 0.0);
    }

    #[test]
    fn tail_bound_decreases_in_delta_and_increases_in_beta() {
        let b1 = weighted_balls_tail_bound(64, 0.01, 0.5);
        let b2 = weighted_balls_tail_bound(64, 0.01, 1.0);
        assert!(b2 < b1);
        let b3 = weighted_balls_tail_bound(64, 0.1, 1.0);
        assert!(b3 > b2);
        // Bound is capped at 1.
        assert!(weighted_balls_tail_bound(1_000_000, 100.0, 0.0001) <= 1.0);
    }

    #[test]
    fn kl_bound_is_at_least_as_sharp_as_h_bound() {
        // Footnote 8: K·D((1+δ)/K || 1/K) ≥ (1+δ)ln(1+δ) − δ, so the KL
        // bound is no larger.
        for &delta in &[0.1, 0.5, 1.0, 2.0] {
            for &k in &[8usize, 64, 256] {
                let h = weighted_balls_tail_bound(k, 0.05, delta);
                let kl = weighted_balls_tail_bound_kl(k, 0.05, delta);
                assert!(kl <= h + 1e-12, "kl {kl} > h {h}");
            }
        }
    }

    #[test]
    fn load_multiplier_bisection_is_consistent() {
        let k = 64;
        let beta = 0.02;
        let mult = load_multiplier_for_confidence(k, beta, 1e-6);
        assert!(mult > 1.0);
        // At the returned delta the bound is (just) below the target.
        assert!(weighted_balls_tail_bound(k, beta, mult - 1.0) <= 1e-6 * 1.01);
    }

    #[test]
    fn empirical_max_bin_respects_bound_for_light_balls() {
        // 100k unit-weight balls into 64 bins: mean 1562.5; with beta =
        // 64/100000, the 1e-9-confidence multiplier is small.
        let n = 100_000usize;
        let k = 64usize;
        let ids: Vec<u64> = (0..n as u64).collect();
        let weights = vec![1.0; n];
        let family = MultiplyShiftHash::new(77);
        let max = max_bin_load(&ids, &weights, k, &family, 0);
        let mean = n as f64 / k as f64;
        let beta = k as f64 / n as f64;
        let mult = load_multiplier_for_confidence(k, beta, 1e-9);
        assert!(
            max <= mult * mean,
            "empirical max {max} exceeded predicted {mult} x mean {mean}"
        );
    }

    #[test]
    fn one_heavy_ball_dominates_its_bin() {
        let ids = vec![1, 2, 3];
        let weights = vec![100.0, 1.0, 1.0];
        let family = MultiplyShiftHash::new(3);
        let max = max_bin_load(&ids, &weights, 8, &family, 0);
        assert!(max >= 100.0);
    }

    #[test]
    #[should_panic(expected = "one weight per ball")]
    fn mismatched_weights_panic() {
        let family = MultiplyShiftHash::new(3);
        max_bin_load(&[1, 2], &[1.0], 4, &family, 0);
    }
}
