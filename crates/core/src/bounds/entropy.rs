//! Entropy utilities (Sections 2.3 and 3.2.1).
//!
//! The one-round lower bound counts bits information-theoretically: a
//! random `a_j`-dimensional matching of cardinality `m_j` over domain `[n]`
//! has entropy
//!
//! ```text
//!   M_j = H(S_j) = a_j·log C(n, m_j) + (a_j − 1)·log(m_j!)        (Eq. 12)
//! ```
//!
//! and a server that receives only a fraction `f_j` of those bits knows, in
//! expectation, at most a `2 f_j` fraction of the tuples (Lemma 3.9).
//! Proposition 3.14 relates the entropy to the naive encoding size
//! `M_j = a_j·m_j·log n`. These are the quantities the experiments report
//! when comparing measured loads (in naive bits) against the
//! entropy-denominated bounds.

/// Shannon entropy (base 2) of a discrete distribution given as
/// probabilities. Zero-probability entries contribute nothing.
///
/// # Panics
/// Panics when probabilities are negative or do not sum to ≈ 1.
pub fn entropy(probabilities: &[f64]) -> f64 {
    let sum: f64 = probabilities.iter().sum();
    assert!(
        probabilities.iter().all(|&p| p >= -1e-12),
        "probabilities must be non-negative"
    );
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "probabilities must sum to 1 (got {sum})"
    );
    -probabilities
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.log2())
        .sum::<f64>()
}

/// Binary entropy `H(x) = −x·log2 x − (1−x)·log2(1−x)`.
pub fn binary_entropy(x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "binary entropy needs x in [0,1]");
    let term = |p: f64| if p <= 0.0 { 0.0 } else { -p * p.log2() };
    term(x) + term(1.0 - x)
}

/// `log2(m!)` via the exact sum of logarithms (adequate for the cardinalities
/// used here; no Stirling approximation error to worry about in tests).
pub fn log2_factorial(m: u64) -> f64 {
    (2..=m).map(|i| (i as f64).log2()).sum()
}

/// `log2 C(n, m)` (binomial coefficient), computed as a sum of logs.
pub fn log2_binomial(n: u64, m: u64) -> f64 {
    assert!(m <= n, "C(n, m) needs m <= n");
    let m = m.min(n - m);
    (0..m)
        .map(|i| ((n - i) as f64).log2() - ((i + 1) as f64).log2())
        .sum()
}

/// The entropy (in bits) of a uniformly random `arity`-dimensional matching
/// with `m` tuples over domain `[n]` — Eq. 12's `M_j`.
pub fn matching_entropy_bits(arity: u64, m: u64, n: u64) -> f64 {
    assert!(m <= n, "a matching cannot have more tuples than domain values");
    arity as f64 * log2_binomial(n, m) + (arity.saturating_sub(1)) as f64 * log2_factorial(m)
}

/// The naive encoding size `M_j = a_j · m_j · log2 n` used for the load
/// accounting.
pub fn naive_encoding_bits(arity: u64, m: u64, n: u64) -> f64 {
    arity as f64 * m as f64 * (n as f64).log2()
}

/// Proposition 3.14's lower bounds on the matching entropy relative to the
/// naive encoding: returns the guaranteed ratio `M_j / M_j`
/// (`≥ 1/2` when `n ≥ m²`, `≥ 1/4` when `n = m` and `a_j ≥ 2`).
pub fn entropy_to_naive_ratio_lower_bound(arity: u64, m: u64, n: u64) -> f64 {
    if n >= m.saturating_mul(m) {
        0.5
    } else if n == m && arity >= 2 {
        0.25
    } else {
        0.0
    }
}

/// Lemma 3.9: a server receiving at most `fraction · H(S_j)` bits about a
/// random matching knows, in expectation, at most this many of its `m`
/// tuples (`2·f·m` in the general case, `f·m` when `m = n`).
pub fn expected_known_tuples(fraction: f64, m: u64, n: u64) -> f64 {
    assert!(fraction >= 0.0);
    if m == n {
        (fraction * m as f64).min(m as f64)
    } else {
        (2.0 * fraction * m as f64).min(m as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn entropy_of_uniform_and_point_distributions() {
        assert!(close(entropy(&[0.5, 0.5]), 1.0, 1e-12));
        assert!(close(entropy(&[0.25; 4]), 2.0, 1e-12));
        assert!(close(entropy(&[1.0, 0.0]), 0.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn entropy_rejects_unnormalised_input() {
        entropy(&[0.5, 0.2]);
    }

    #[test]
    fn binary_entropy_properties() {
        assert!(close(binary_entropy(0.5), 1.0, 1e-12));
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        // Symmetry.
        assert!(close(binary_entropy(0.1), binary_entropy(0.9), 1e-12));
        // H(x) <= 2·(-x log x) for x <= 1/2 (used in Prop. 3.11).
        for &x in &[0.05, 0.1, 0.3, 0.5] {
            assert!(binary_entropy(x) <= 2.0 * (-x * f64::log2(x)) + 1e-12);
        }
    }

    #[test]
    fn log_factorial_and_binomial() {
        assert!(close(log2_factorial(5), 120f64.log2(), 1e-9));
        assert_eq!(log2_factorial(0), 0.0);
        assert_eq!(log2_factorial(1), 0.0);
        assert!(close(log2_binomial(10, 3), 120f64.log2(), 1e-9));
        assert!(close(log2_binomial(10, 7), 120f64.log2(), 1e-9));
        assert_eq!(log2_binomial(10, 0), 0.0);
        assert_eq!(log2_binomial(10, 10), 0.0);
    }

    #[test]
    fn matching_entropy_matches_hand_computation() {
        // Binary matching, m = 2, n = 3: C(3,2)^2 * 2! = 18 possible
        // matchings, so the entropy is log2(18).
        let h = matching_entropy_bits(2, 2, 3);
        assert!(close(h, 18f64.log2(), 1e-9));
        // Unary "matching" (a set): C(n, m) choices only.
        let h = matching_entropy_bits(1, 2, 4);
        assert!(close(h, 6f64.log2(), 1e-9));
    }

    #[test]
    fn proposition_3_14_bounds_hold_numerically() {
        // n >= m^2: entropy >= naive/2.
        let (a, m) = (2u64, 100u64);
        let n = m * m;
        let entropy = matching_entropy_bits(a, m, n);
        let naive = naive_encoding_bits(a, m, n);
        assert!(entropy >= 0.5 * naive);
        assert_eq!(entropy_to_naive_ratio_lower_bound(a, m, n), 0.5);
        // n = m, arity >= 2: entropy >= naive/4.
        let n = m;
        let entropy = matching_entropy_bits(a, m, n);
        let naive = naive_encoding_bits(a, m, n);
        assert!(entropy >= 0.25 * naive);
        assert_eq!(entropy_to_naive_ratio_lower_bound(a, m, n), 0.25);
        // Unknown regime reports 0 (no guarantee).
        assert_eq!(entropy_to_naive_ratio_lower_bound(1, 10, 20), 0.0);
    }

    #[test]
    fn lemma_3_9_knowledge_bound() {
        assert_eq!(expected_known_tuples(0.0, 1000, 1 << 20), 0.0);
        assert!(close(expected_known_tuples(0.1, 1000, 1 << 20), 200.0, 1e-12));
        // m = n: the sharper f·m bound applies.
        assert!(close(expected_known_tuples(0.1, 1000, 1000), 100.0, 1e-12));
        // Never more than all tuples.
        assert_eq!(expected_known_tuples(3.0, 1000, 1 << 20), 1000.0);
    }
}
