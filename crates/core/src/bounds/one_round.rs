//! One-round bounds for skew-free data (Sections 3.2–3.4).
//!
//! For a fractional edge packing `u` and relation bit-sizes `M`, define
//!
//! ```text
//!   L(u, M, p) = ( Π_j M_j^{u_j} / p )^{1 / Σ_j u_j}
//! ```
//!
//! Theorem 3.5 shows any one-round algorithm needs load
//! `Ω(L(u, M, p))` for every packing `u`; Theorem 3.15 shows the best such
//! bound, `L_lower = max_{u ∈ pk(q)} L(u, M, p)`, equals the HyperCube upper
//! bound `L_upper = p^{λ*}` from the share LP. With equal sizes this is
//! `M / p^{1/τ*}`.

use crate::shares::optimal_share_exponents;
use pq_query::{packing, ConjunctiveQuery};
use std::collections::BTreeMap;

/// `L(u, M, p)` of Eq. 11. Sizes are given in bits, in atom order. Returns
/// zero for the all-zero packing (consistent with the paper's convention in
/// Example 3.17).
pub fn load_for_packing(u: &[f64], sizes_bits: &[f64], p: usize) -> f64 {
    assert_eq!(u.len(), sizes_bits.len(), "packing/size length mismatch");
    let total_u: f64 = u.iter().sum();
    if total_u <= 1e-12 {
        return 0.0;
    }
    let log_product: f64 = u
        .iter()
        .zip(sizes_bits.iter())
        .map(|(&uj, &mj)| uj * mj.max(1.0).ln())
        .sum();
    ((log_product - (p as f64).ln()) / total_u).exp()
}

/// Sizes in atom order from a name-keyed map.
fn sizes_in_atom_order(query: &ConjunctiveQuery, sizes_bits: &BTreeMap<String, u64>) -> Vec<f64> {
    query
        .atoms()
        .iter()
        .map(|a| {
            *sizes_bits
                .get(a.relation())
                .unwrap_or_else(|| panic!("no size for relation `{}`", a.relation()))
                as f64
        })
        .collect()
}

/// The one-round lower bound `L_lower = max_{u ∈ pk(q)} L(u, M, p)`
/// (Theorem 3.5 + Section 3.3), in bits.
pub fn lower_bound_load(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> f64 {
    let sizes = sizes_in_atom_order(query, sizes_bits);
    packing::fractional_edge_packing_vertices(query)
        .iter()
        .map(|u| load_for_packing(u, &sizes, p))
        .fold(0.0, f64::max)
}

/// The packing vertex achieving `L_lower`, together with its load.
pub fn argmax_packing(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> (Vec<f64>, f64) {
    let sizes = sizes_in_atom_order(query, sizes_bits);
    let mut best: (Vec<f64>, f64) = (vec![0.0; query.num_atoms()], 0.0);
    for u in packing::fractional_edge_packing_vertices(query) {
        let load = load_for_packing(&u, &sizes, p);
        if load > best.1 {
            best = (u, load);
        }
    }
    best
}

/// The HyperCube upper bound `L_upper = p^{λ*}` from the share LP (Eq. 10,
/// Theorem 3.4), in bits. By Theorem 3.15, equals [`lower_bound_load`].
pub fn upper_bound_load(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> f64 {
    optimal_share_exponents(query, sizes_bits, p).upper_bound_load()
}

/// The lower bound on the space exponent for one round with equal relation
/// sizes: `ε ≥ 1 − 1/τ*(q)` (Section 3.4 and Table 2's last column).
pub fn space_exponent_lower_bound(query: &ConjunctiveQuery) -> f64 {
    let tau = packing::vertex_cover_number(query);
    if tau <= 0.0 {
        0.0
    } else {
        1.0 - 1.0 / tau
    }
}

/// The *speedup exponent* `1 / Σ_j u*_j` of Section 3.4: the load decreases
/// like `1/p^{speedup}` as `p` grows. With equal sizes this is `1/τ*`; with
/// unequal sizes it can be larger for small `p` (Lemma 3.18).
pub fn speedup_exponent(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> f64 {
    let (u, _) = argmax_packing(query, sizes_bits, p);
    let total: f64 = u.iter().sum();
    if total <= 1e-12 {
        1.0
    } else {
        1.0 / total
    }
}

/// Expected number of answers over the matching probability space
/// (Lemma 3.6): `E[|q(I)|] = n^{k−a} Π_j m_j`, where cardinalities are in
/// tuples and `n` is the domain size.
pub fn expected_answers_matching(
    query: &ConjunctiveQuery,
    cardinalities: &BTreeMap<String, usize>,
    domain_size: u64,
) -> f64 {
    let k = query.num_variables() as f64;
    let a = query.total_arity() as f64;
    let n = domain_size as f64;
    let product: f64 = query
        .atoms()
        .iter()
        .map(|atom| {
            *cardinalities
                .get(atom.relation())
                .unwrap_or_else(|| panic!("no cardinality for `{}`", atom.relation()))
                as f64
        })
        .product();
    n.powf(k - a) * product
}

/// The fraction of expected answers a one-round algorithm with load `L` can
/// report (Theorem 3.5, equal-size strengthened form): at most
/// `(L / (τ* · L(u*, M, p)))^{τ*}` summed over servers; we report the
/// per-server exponent form used in Section 3.4's discussion:
/// `p · (L / L_lower)^{τ*}` clipped to `[0, 1]`-ish (values above 1 mean the
/// bound is vacuous).
pub fn reportable_fraction(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
    load_bits: f64,
) -> f64 {
    let tau = packing::vertex_cover_number(query);
    let lower = lower_bound_load(query, sizes_bits, p);
    if lower <= 0.0 {
        return 1.0;
    }
    p as f64 * (load_bits / (tau * lower)).powf(tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal_sizes(query: &ConjunctiveQuery, m: u64) -> BTreeMap<String, u64> {
        query.relation_names().into_iter().map(|r| (r, m)).collect()
    }

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1.0)
    }

    #[test]
    fn triangle_lower_bound_is_m_over_p_two_thirds() {
        let q = ConjunctiveQuery::triangle();
        let m = 1u64 << 20;
        let p = 64;
        let lower = lower_bound_load(&q, &equal_sizes(&q, m), p);
        let expected = m as f64 / (p as f64).powf(2.0 / 3.0);
        assert!(close(lower, expected, 1e-6), "{lower} vs {expected}");
    }

    #[test]
    fn upper_equals_lower_theorem_3_15() {
        for q in [
            ConjunctiveQuery::triangle(),
            ConjunctiveQuery::chain(3),
            ConjunctiveQuery::chain(4),
            ConjunctiveQuery::star(3),
            ConjunctiveQuery::cycle(4),
            ConjunctiveQuery::k4(),
        ] {
            let sizes = equal_sizes(&q, 1 << 22);
            for p in [4usize, 16, 64, 256] {
                let lo = lower_bound_load(&q, &sizes, p);
                let hi = upper_bound_load(&q, &sizes, p);
                assert!(close(lo, hi, 1e-4), "{}: lower {lo} != upper {hi} at p={p}", q.name());
            }
        }
    }

    #[test]
    fn unequal_triangle_example_3_17() {
        // M1 < M2 = M3 = M. For p <= M/M1 the bound is M/p; beyond the
        // crossover it is (M1 M2 M3)^{1/3} / p^{2/3}.
        let q = ConjunctiveQuery::triangle();
        let m1 = 1u64 << 10;
        let m = 1u64 << 20;
        let mut sizes = BTreeMap::new();
        sizes.insert("S1".to_string(), m1);
        sizes.insert("S2".to_string(), m);
        sizes.insert("S3".to_string(), m);
        // p well below M/M1 = 1024.
        let p = 64;
        let lower = lower_bound_load(&q, &sizes, p);
        assert!(close(lower, m as f64 / p as f64, 1e-6));
        let (u, _) = argmax_packing(&q, &sizes, p);
        // Optimal packing is (0,1,0) or (0,0,1).
        assert!(u[0].abs() < 1e-6);
        // p above the crossover.
        let p = 1 << 16;
        let lower = lower_bound_load(&q, &sizes, p);
        let expected = ((m1 as f64 * m as f64 * m as f64).powf(1.0 / 3.0)) / (p as f64).powf(2.0 / 3.0);
        assert!(close(lower, expected, 1e-6));
        let (u, _) = argmax_packing(&q, &sizes, p);
        assert!(u.iter().all(|&x| (x - 0.5).abs() < 1e-6));
    }

    #[test]
    fn speedup_exponent_increases_to_one_over_tau_star() {
        // Lemma 3.18(3): the speedup exponent starts at 1 (linear) and drops
        // to 1/τ* = 2/3 for the triangle once p passes the crossover.
        let q = ConjunctiveQuery::triangle();
        let mut sizes = BTreeMap::new();
        sizes.insert("S1".to_string(), 1u64 << 10);
        sizes.insert("S2".to_string(), 1u64 << 20);
        sizes.insert("S3".to_string(), 1u64 << 20);
        assert!(close(speedup_exponent(&q, &sizes, 16), 1.0, 1e-6));
        assert!(close(speedup_exponent(&q, &sizes, 1 << 16), 2.0 / 3.0, 1e-6));
    }

    #[test]
    fn space_exponent_lower_bounds_match_table_2() {
        // Table 2: C_k -> 1 - 2/k, T_k -> 0, L_k -> 1 - 1/ceil(k/2),
        // B_{k,m} -> 1 - m/k.
        for k in 3..=6 {
            assert!(close(
                space_exponent_lower_bound(&ConjunctiveQuery::cycle(k)),
                1.0 - 2.0 / k as f64,
                1e-6
            ));
        }
        for k in 1..=4 {
            assert!(close(
                space_exponent_lower_bound(&ConjunctiveQuery::star(k)),
                0.0,
                1e-6
            ));
        }
        for k in 2..=6 {
            assert!(close(
                space_exponent_lower_bound(&ConjunctiveQuery::chain(k)),
                1.0 - 1.0 / (k as f64 / 2.0).ceil(),
                1e-6
            ));
        }
        for (k, m) in [(4usize, 2usize), (6, 2), (5, 3)] {
            assert!(close(
                space_exponent_lower_bound(&ConjunctiveQuery::b_query(k, m)),
                1.0 - m as f64 / k as f64,
                1e-6
            ));
        }
    }

    #[test]
    fn load_for_packing_edge_cases() {
        assert_eq!(load_for_packing(&[0.0, 0.0], &[100.0, 100.0], 4), 0.0);
        // Single relation with weight 1: load = M/p.
        assert!(close(load_for_packing(&[1.0], &[1000.0], 10), 100.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn load_for_packing_length_mismatch_panics() {
        load_for_packing(&[1.0], &[1.0, 2.0], 2);
    }

    #[test]
    fn expected_answers_lemma_3_6() {
        // Triangle with n = m: E = n^{3-6} * m^3 = 1 (c - chi = 1 - 1).
        let q = ConjunctiveQuery::triangle();
        let m = 1000usize;
        let card: BTreeMap<String, usize> =
            q.relation_names().into_iter().map(|r| (r, m)).collect();
        let e = expected_answers_matching(&q, &card, m as u64);
        assert!(close(e, 1.0, 1e-9));
        // Chain L2 with n = m: E = n^{3-4} * m^2 = m (tree-like, c=1, chi=0).
        let q = ConjunctiveQuery::chain(2);
        let card: BTreeMap<String, usize> =
            q.relation_names().into_iter().map(|r| (r, m)).collect();
        let e = expected_answers_matching(&q, &card, m as u64);
        assert!(close(e, m as f64, 1e-9));
    }

    #[test]
    fn reportable_fraction_shrinks_below_the_bound() {
        let q = ConjunctiveQuery::triangle();
        let sizes = equal_sizes(&q, 1 << 20);
        let p = 64;
        let lower = lower_bound_load(&q, &sizes, p);
        // With load far below the bound, the reportable fraction is < 1.
        let f = reportable_fraction(&q, &sizes, p, lower / 100.0);
        assert!(f < 1.0);
        // With load at the bound (times tau*), it is >= 1 (vacuous).
        let f = reportable_fraction(&q, &sizes, p, lower * 2.0);
        assert!(f >= 1.0);
    }
}
