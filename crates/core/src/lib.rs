//! # Communication cost in parallel query processing
//!
//! This crate implements the contribution of Beame, Koutris and Suciu,
//! *"Communication Cost in Parallel Query Processing"*: algorithms and
//! matching lower bounds for evaluating full conjunctive queries on a
//! shared-nothing cluster in the **MPC model**, where the cost of an
//! algorithm is the number of communication rounds `r` and the maximum
//! per-round, per-server load `L` in bits.
//!
//! ## Modules
//!
//! * [`shares`] — the share-exponent linear program (Eq. 10) that drives the
//!   HyperCube algorithm, its closed forms and share integerisation.
//! * [`hypercube`] — the one-round HyperCube (HC) algorithm of Section 3.1,
//!   which routes every tuple to a subcube of a `k`-dimensional grid of
//!   servers and evaluates the query locally.
//! * [`baselines`] — the comparison algorithms: single-server evaluation,
//!   broadcast joins and the standard shuffle hash join / left-deep
//!   sequential plans.
//! * [`skew`] — the skew story of Section 4: what happens to HC under heavy
//!   hitters, the skew-oblivious share LP, and the skew-aware one-round
//!   algorithms for star queries (§4.2.1) and the triangle query (§4.2.2)
//!   that use heavy-hitter statistics.
//! * [`multiround`] — Section 5: the `Γ^r_ε` classes, multi-round query
//!   plans (bushy plans for chains, radius plans for tree-like queries),
//!   their executor on the simulator, and connected components.
//! * [`bounds`] — every lower/upper bound formula in the paper:
//!   `L(u, M, p)` and `L_lower` (Theorem 3.5/3.15), space exponents,
//!   replication-rate bounds (Cor. 3.19), skewed lower bounds (Thm 4.4 and
//!   Eq. 20), multi-round round bounds (Cor. 5.15/5.17, Lemma 5.18) and the
//!   weighted balls-in-bins tail bounds of Appendix A.
//!
//! ## Quick example
//!
//! ```
//! use pq_core::prelude::*;
//!
//! // Generate a skew-free (matching) database for the triangle query.
//! let query = ConjunctiveQuery::triangle();
//! let mut gen = DataGenerator::new(42, 1 << 20);
//! let db = gen.matching_database(&[
//!     (Schema::from_strs("S1", &["a", "b"]), 2_000),
//!     (Schema::from_strs("S2", &["a", "b"]), 2_000),
//!     (Schema::from_strs("S3", &["a", "b"]), 2_000),
//! ]);
//!
//! // Run the one-round HyperCube algorithm on 64 simulated servers.
//! let run = pq_core::hypercube::run_hypercube(&query, &db, 64, 7);
//!
//! // The answer matches the sequential oracle...
//! let oracle = evaluate_sequential(&query, &db);
//! assert_eq!(run.output.canonicalized(), oracle.canonicalized());
//!
//! // ...and the measured load is within a constant factor of the paper's
//! // lower bound  L_lower = max_u L(u, M, p).
//! let lower = pq_core::bounds::one_round::lower_bound_load(&query, &db.sizes_bits(), 64);
//! assert!((run.metrics.max_load() as f64) < 16.0 * lower);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod baselines;
pub mod bounds;
pub mod hypercube;
pub mod multiround;
pub mod shares;
pub mod skew;

/// Convenience re-exports of the most frequently used items across the
/// workspace (queries, data generation, the simulator and the algorithms).
pub mod prelude {
    pub use crate::baselines::{broadcast_join, sequential_plan_join, single_server_join};
    pub use crate::bounds::one_round::{lower_bound_load, upper_bound_load};
    pub use crate::hypercube::{run_hypercube, HyperCubeRun};
    pub use crate::multiround::plan::{execute_plan, PlanNode};
    pub use crate::shares::{integer_shares, optimal_share_exponents, ShareExponents};
    pub use crate::skew::star::run_star_skew_aware;
    pub use crate::skew::triangle::run_triangle_skew_aware;
    pub use pq_mpc::{Cluster, RunMetrics};
    pub use pq_query::{evaluate_sequential, Atom, ConjunctiveQuery};
    pub use pq_relation::{
        database_fingerprint, load_database_dir, load_database_files, DataGenerator, Database,
        DatabaseStatistics, Relation, RelationStatistics, Schema, ValueDictionary,
    };
}
