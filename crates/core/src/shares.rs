//! Share exponents for the HyperCube algorithm (Section 3.1, Eq. 10).
//!
//! The HyperCube algorithm organises the `p` servers into a grid
//! `[p_1] × … × [p_k]`, one dimension per query variable, with
//! `Π_i p_i ≤ p`. Writing `p_i = p^{e_i}`, the load of the algorithm is
//! `max_j M_j / Π_{i ∈ S_j} p_i`, so the optimal *share exponents* `e_i`
//! minimise `λ = log_p L` subject to
//!
//! ```text
//!   Σ_i e_i ≤ 1
//!   Σ_{i ∈ S_j} e_i + λ ≥ µ_j      for every atom S_j   (µ_j = log_p M_j)
//!   e_i ≥ 0, λ ≥ 0
//! ```
//!
//! When all relations have the same size the optimum has a closed form:
//! `e_i = v*_i / τ*` for an optimal fractional vertex cover `v*`, giving
//! load `M / p^{1/τ*}` (Section 3.1). For unequal sizes the optimum may be
//! better — small relations get share exponent zero and are broadcast
//! (Lemma 3.18).
//!
//! Real-valued shares must be converted to integers whose product is at most
//! `p`; [`integer_shares`] offers the floor strategy and a greedy
//! redistribution strategy (the ablation of DESIGN.md).

use pq_lp::{ConstraintOp, LinearProgram, Objective};
use pq_query::{packing, ConjunctiveQuery};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of solving the share-exponent LP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareExponents {
    /// Share exponent `e_i` for each query variable.
    pub exponents: BTreeMap<String, f64>,
    /// The optimal objective `λ = log_p L`.
    pub lambda: f64,
    /// Number of servers the exponents were computed for.
    pub p: usize,
}

impl ShareExponents {
    /// The upper-bound load `L_upper = p^λ` in bits (Theorem 3.4).
    pub fn upper_bound_load(&self) -> f64 {
        (self.p as f64).powf(self.lambda)
    }

    /// Real-valued share for a variable: `p^{e_i}`.
    pub fn real_share(&self, variable: &str) -> f64 {
        (self.p as f64).powf(self.exponents.get(variable).copied().unwrap_or(0.0))
    }
}

/// Strategy for converting real shares `p^{e_i}` to integers with product at
/// most `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShareRounding {
    /// Round every share down to an integer (≥ 1). Simple, can leave a large
    /// fraction of the servers unused.
    Floor,
    /// Round down, then greedily bump the share whose real value is most
    /// under-represented while the product stays ≤ p. Uses more of the
    /// budget; the default.
    GreedyFill,
}

/// Solve the share-exponent LP (Eq. 10) for a query, bit sizes `M_j` keyed by
/// relation name, and `p` servers.
///
/// Relation sizes smaller than `p` are clamped to `p` (so `µ_j ≥ 1`), which
/// matches the paper's w.l.o.g. assumption `M_j ≥ p`; such relations end up
/// broadcast.
///
/// # Panics
/// Panics when a relation of the query has no entry in `sizes_bits`, or
/// `p < 2`.
pub fn optimal_share_exponents(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> ShareExponents {
    assert!(p >= 2, "share optimisation needs at least 2 servers");
    let ln_p = (p as f64).ln();
    let variables = query.variables();

    let mut lp = LinearProgram::new(Objective::Minimize);
    let lambda = lp.add_variable("lambda");
    lp.set_objective_coefficient(lambda, 1.0);
    let vars: Vec<_> = variables
        .iter()
        .map(|v| lp.add_variable(format!("e_{v}")))
        .collect();

    // Σ e_i <= 1
    lp.add_constraint(
        vars.iter().map(|&v| (v, 1.0)).collect(),
        ConstraintOp::Le,
        1.0,
    );
    // Per atom: Σ_{i in S_j} e_i + λ >= µ_j
    for atom in query.atoms() {
        let m = *sizes_bits
            .get(atom.relation())
            .unwrap_or_else(|| panic!("no size for relation `{}`", atom.relation()));
        let mu = ((m.max(p as u64)) as f64).ln() / ln_p;
        let mut terms: Vec<_> = variables
            .iter()
            .enumerate()
            .filter(|(_, v)| atom.contains(v))
            .map(|(i, _)| (vars[i], 1.0))
            .collect();
        terms.push((lambda, 1.0));
        lp.add_constraint(terms, ConstraintOp::Ge, mu);
    }

    let sol = lp
        .solve()
        .expect("share-exponent LP is feasible (e=0, lambda=max µ) and bounded below by 0");
    let exponents = variables
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), sol.value(vars[i]).max(0.0)))
        .collect();
    ShareExponents {
        exponents,
        lambda: sol.objective.max(0.0),
        p,
    }
}

/// The closed-form share exponents for the equal-cardinality case:
/// `e_i = v*_i / τ*` from an optimal fractional vertex cover (Section 3.1).
pub fn equal_size_share_exponents(query: &ConjunctiveQuery, p: usize) -> ShareExponents {
    let (cover, tau_star) = packing::optimal_vertex_cover(query);
    let variables = query.variables();
    let exponents = variables
        .iter()
        .zip(cover.iter())
        .map(|(v, &vi)| (v.clone(), if tau_star > 0.0 { vi / tau_star } else { 0.0 }))
        .collect();
    ShareExponents {
        exponents,
        // λ = µ − 1/τ*; with sizes unknown here we only report the exponent
        // part relative to µ = 0 (callers wanting loads should use
        // `optimal_share_exponents` with real sizes).
        lambda: if tau_star > 0.0 { 1.0 - 1.0 / tau_star } else { 0.0 },
        p,
    }
}

/// Convert share exponents into integer shares `p_i ≥ 1` with
/// `Π_i p_i ≤ p`, using the chosen rounding strategy.
pub fn integer_shares(
    exponents: &ShareExponents,
    strategy: ShareRounding,
) -> BTreeMap<String, usize> {
    let p = exponents.p;
    let mut shares: BTreeMap<String, usize> = exponents
        .exponents
        .iter()
        .map(|(v, &e)| {
            let real = (p as f64).powf(e);
            (v.clone(), (real.floor() as usize).max(1))
        })
        .collect();

    // Floor rounding can overshoot only through numerical slack; renormalise
    // defensively by shrinking the largest share until the product fits.
    loop {
        let product: u128 = shares.values().map(|&s| s as u128).product();
        if product <= p as u128 {
            break;
        }
        let (var, _) = shares
            .iter()
            .max_by_key(|(_, &s)| s)
            .map(|(v, s)| (v.clone(), *s))
            .expect("non-empty shares");
        let entry = shares.get_mut(&var).expect("exists");
        *entry = (*entry - 1).max(1);
        if *entry == 1 && shares.values().all(|&s| s == 1) {
            break;
        }
    }

    if strategy == ShareRounding::GreedyFill {
        // Greedily bump the variable whose real share is most
        // under-represented, as long as the product stays within p.
        loop {
            let product: u128 = shares.values().map(|&s| s as u128).product();
            let mut best: Option<(String, f64)> = None;
            for (v, &s) in &shares {
                let new_product = product / s as u128 * (s as u128 + 1);
                if new_product > p as u128 {
                    continue;
                }
                let real = exponents.real_share(v);
                let deficit = real / (s as f64 + 1.0);
                if best.as_ref().map_or(true, |(_, d)| deficit > *d) {
                    best = Some((v.clone(), deficit));
                }
            }
            match best {
                Some((v, _)) => *shares.get_mut(&v).expect("exists") += 1,
                None => break,
            }
        }
    }
    shares
}

/// Convenience: compute integer shares for a query directly from relation
/// bit sizes, with the default greedy strategy.
pub fn shares_for_query(
    query: &ConjunctiveQuery,
    sizes_bits: &BTreeMap<String, u64>,
    p: usize,
) -> BTreeMap<String, usize> {
    integer_shares(
        &optimal_share_exponents(query, sizes_bits, p),
        ShareRounding::GreedyFill,
    )
}

/// The number of grid points (servers actually used) implied by a share
/// assignment.
pub fn grid_size(shares: &BTreeMap<String, usize>) -> usize {
    shares.values().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal_sizes(query: &ConjunctiveQuery, m: u64) -> BTreeMap<String, u64> {
        query
            .relation_names()
            .into_iter()
            .map(|r| (r, m))
            .collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn triangle_exponents_are_one_third_each() {
        let q = ConjunctiveQuery::triangle();
        let p = 64;
        let sizes = equal_sizes(&q, 1 << 20);
        let e = optimal_share_exponents(&q, &sizes, p);
        for v in q.variables() {
            assert!(close(e.exponents[&v], 1.0 / 3.0), "e_{v} = {}", e.exponents[&v]);
        }
        // λ = µ − 1/τ* with τ* = 3/2: load = M / p^{2/3}.
        let expected_load = (1u64 << 20) as f64 / (p as f64).powf(2.0 / 3.0);
        assert!((e.upper_bound_load() - expected_load).abs() / expected_load < 1e-6);
    }

    #[test]
    fn star_query_puts_all_share_on_the_center() {
        // Table 2: T_k has share exponents (1, 0, …, 0) — all on z.
        let q = ConjunctiveQuery::star(3);
        let sizes = equal_sizes(&q, 1 << 20);
        let e = optimal_share_exponents(&q, &sizes, 64);
        assert!(close(e.exponents["z"], 1.0));
        for i in 1..=3 {
            assert!(close(e.exponents[&format!("x{i}")], 0.0));
        }
        // Load = M/p (space exponent 0).
        assert!(close(e.lambda, ((1u64 << 20) as f64).ln() / 64f64.ln() - 1.0));
    }

    #[test]
    fn chain_query_alternates_shares() {
        // Table 2: L_k uses exponents 0, 1/ceil(k/2), 0, 1/ceil(k/2), …
        let q = ConjunctiveQuery::chain(4);
        let sizes = equal_sizes(&q, 1 << 24);
        let e = optimal_share_exponents(&q, &sizes, 256);
        // λ must equal µ − 1/τ* with τ* = 2.
        let mu = ((1u64 << 24) as f64).ln() / 256f64.ln();
        assert!(close(e.lambda, mu - 0.5));
        // The load is what matters; individual optima may differ between
        // equivalent optimal solutions, but every atom's constraint must be
        // tight enough: check feasibility and objective only.
        let total: f64 = e.exponents.values().sum();
        assert!(total <= 1.0 + 1e-6);
    }

    #[test]
    fn unequal_sizes_broadcast_the_small_relation() {
        // Example 3.17 / Lemma 3.18: for the triangle with M1 << M2 = M3 and
        // small p, the optimal strategy broadcasts S1 (e share on its
        // variables may stay 0) and achieves load M/p.
        let q = ConjunctiveQuery::triangle();
        let mut sizes = BTreeMap::new();
        sizes.insert("S1".to_string(), 1u64 << 10);
        sizes.insert("S2".to_string(), 1u64 << 30);
        sizes.insert("S3".to_string(), 1u64 << 30);
        // p far below M2/M1 = 2^20: linear speedup regime.
        let p = 64;
        let e = optimal_share_exponents(&q, &sizes, p);
        let expected = (1u64 << 30) as f64 / p as f64;
        assert!(
            (e.upper_bound_load() - expected).abs() / expected < 1e-3,
            "load {} vs expected {expected}",
            e.upper_bound_load()
        );
    }

    #[test]
    fn closed_form_matches_lp_for_equal_sizes() {
        for q in [
            ConjunctiveQuery::triangle(),
            ConjunctiveQuery::star(3),
            ConjunctiveQuery::cycle(4),
            ConjunctiveQuery::b_query(4, 2),
        ] {
            let sizes = equal_sizes(&q, 1 << 20);
            let lp = optimal_share_exponents(&q, &sizes, 64);
            let closed = equal_size_share_exponents(&q, 64);
            // Loads must agree: λ_lp = µ − (1 − λ_closed).
            let mu = ((1u64 << 20) as f64).ln() / 64f64.ln();
            assert!(
                close(lp.lambda, mu - (1.0 - closed.lambda)),
                "load mismatch for {}",
                q.name()
            );
        }
    }

    #[test]
    fn integer_shares_product_never_exceeds_p() {
        for p in [2usize, 3, 5, 8, 16, 27, 64, 100, 1000] {
            for q in [
                ConjunctiveQuery::triangle(),
                ConjunctiveQuery::chain(5),
                ConjunctiveQuery::star(4),
                ConjunctiveQuery::k4(),
            ] {
                let sizes = equal_sizes(&q, 1 << 20);
                let e = optimal_share_exponents(&q, &sizes, p);
                for strategy in [ShareRounding::Floor, ShareRounding::GreedyFill] {
                    let shares = integer_shares(&e, strategy);
                    assert!(grid_size(&shares) <= p, "{} p={p} {strategy:?}", q.name());
                    assert!(shares.values().all(|&s| s >= 1));
                }
            }
        }
    }

    #[test]
    fn greedy_fill_uses_at_least_as_many_servers_as_floor() {
        let q = ConjunctiveQuery::triangle();
        let sizes = equal_sizes(&q, 1 << 20);
        for p in [8usize, 27, 50, 64, 100] {
            let e = optimal_share_exponents(&q, &sizes, p);
            let floor = grid_size(&integer_shares(&e, ShareRounding::Floor));
            let greedy = grid_size(&integer_shares(&e, ShareRounding::GreedyFill));
            assert!(greedy >= floor);
            assert!(greedy <= p);
        }
    }

    #[test]
    fn triangle_integer_shares_for_perfect_cube() {
        let q = ConjunctiveQuery::triangle();
        let sizes = equal_sizes(&q, 1 << 20);
        let e = optimal_share_exponents(&q, &sizes, 64);
        let shares = integer_shares(&e, ShareRounding::GreedyFill);
        // 64 = 4^3: each variable gets share 4.
        for v in q.variables() {
            assert_eq!(shares[&v], 4, "share of {v}");
        }
    }

    #[test]
    #[should_panic(expected = "no size for relation")]
    fn missing_size_panics() {
        let q = ConjunctiveQuery::triangle();
        optimal_share_exponents(&q, &BTreeMap::new(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 2 servers")]
    fn single_server_panics() {
        let q = ConjunctiveQuery::triangle();
        optimal_share_exponents(&q, &equal_sizes(&q, 100), 1);
    }

    #[test]
    fn shares_for_query_convenience() {
        let q = ConjunctiveQuery::simple_join();
        let sizes = equal_sizes(&q, 1 << 16);
        let shares = shares_for_query(&q, &sizes, 16);
        // Simple join: all share on z.
        assert_eq!(shares["z"], 16);
        assert_eq!(shares["x1"], 1);
        assert_eq!(shares["x2"], 1);
    }
}
