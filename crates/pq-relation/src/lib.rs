//! Relational data substrate for the parallel-query workspace.
//!
//! The paper evaluates conjunctive queries over relations whose tuples are
//! drawn from a finite domain `[n]`. This crate provides everything the
//! algorithms and the simulator need to manipulate such data:
//!
//! * [`tuple`](mod@tuple) — values and owned tuples (`u64` domain
//!   elements); since the flat-storage refactor [`Tuple`] is a boundary
//!   type only,
//! * [`schema`] / [`relation`] — named relations storing rows row-major in
//!   one flat `Vec<Value>` (arity as stride, iteration yields borrowed
//!   `&[Value]` row views), with projections, selections and degree
//!   computations `d_J(R)`,
//! * [`database`] — instances mapping relation names to relations, with the
//!   bit-size accounting (`M_j = a_j · m_j · log n`) the MPC model charges,
//! * [`csv`](mod@csv) — loading relations from delimited text files through
//!   a shared [`ValueDictionary`] (the `pqsh` ingestion path),
//! * [`statistics`] — cardinality statistics, per-value frequencies
//!   (degree sequences) and heavy-hitter detection,
//! * [`hash`] — seeded strongly-universal-style hash families used by the
//!   HyperCube partitioning,
//! * [`generator`] — synthetic data generators: matching databases (every
//!   degree exactly one, the distribution used by the lower-bound proofs),
//!   heavy-hitter injectors and Zipf-skewed relations,
//! * [`join`] — natural-join evaluation used both as the local computation
//!   performed by each simulated server and as a correctness oracle in
//!   tests; large probe sides split into morsels over the installed
//!   `pq-exec` pool with sequential-identical output.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod database;
pub mod generator;
pub mod hash;
pub mod join;
pub mod relation;
mod rowindex;
pub mod schema;
pub mod statistics;
pub mod tuple;
pub mod wire;

pub use csv::{
    load_database_dir, load_database_files, load_relation_csv, CsvError, ValueDictionary,
};
pub use database::Database;
pub use generator::{DataGenerator, SkewSpec};
pub use hash::{
    hash_key, hash_values, mix64, BucketHasher, HashFamily, MultiplyShiftHash, PrehashedBuild,
    TabulationHash,
};
pub use join::{natural_join, natural_join_all, project, MORSEL_ROWS};
pub use relation::{Relation, Rows};
pub use schema::Schema;
pub use statistics::{
    database_fingerprint, DatabaseStatistics, DegreeStatistics, HeavyHitter, RelationStatistics,
};
pub use tuple::{Tuple, Value};
pub use wire::{values_from_le_bytes, values_to_le_bytes, WireError};

/// Number of bits needed to represent one value from a domain of size `n`
/// (`ceil(log2 n)`, at least 1).
pub fn bits_per_value(domain_size: u64) -> u64 {
    if domain_size <= 2 {
        1
    } else {
        64 - (domain_size - 1).leading_zeros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_value_is_ceil_log2() {
        assert_eq!(bits_per_value(1), 1);
        assert_eq!(bits_per_value(2), 1);
        assert_eq!(bits_per_value(3), 2);
        assert_eq!(bits_per_value(4), 2);
        assert_eq!(bits_per_value(5), 3);
        assert_eq!(bits_per_value(1024), 10);
        assert_eq!(bits_per_value(1025), 11);
    }
}
