//! Synthetic data generators.
//!
//! The paper's upper bounds are analysed over databases "with a small amount
//! of skew" and its lower bounds over **matching databases** — relations in
//! which every value has degree exactly one (random `a`-dimensional
//! matchings over `[n]`). The skew sections plant **heavy hitters**: values
//! with frequency far above `m/p`. This module produces all of these
//! distributions deterministically from a seed, plus Zipf-skewed relations
//! and the path-of-matchings graphs used by the connected-components
//! experiment (Theorem 5.20).

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of planted skew for one attribute of a generated relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewSpec {
    /// Index of the attribute (column) that receives the heavy value.
    pub attribute_index: usize,
    /// The heavy value itself.
    pub value: Value,
    /// How many tuples carry the heavy value in that column.
    pub count: usize,
}

/// Deterministic, seeded generator of synthetic relations and databases.
#[derive(Debug)]
pub struct DataGenerator {
    rng: StdRng,
    domain_size: u64,
}

impl DataGenerator {
    /// Create a generator over the domain `[0, domain_size)` with a fixed
    /// seed.
    pub fn new(seed: u64, domain_size: u64) -> Self {
        DataGenerator {
            rng: StdRng::seed_from_u64(seed),
            domain_size: domain_size.max(2),
        }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// A random `arity`-dimensional matching with `m` tuples: every column
    /// is an injective map from tuple index to domain values, so every value
    /// has degree at most one in every attribute (the lower-bound input
    /// distribution of Section 3).
    ///
    /// # Panics
    /// Panics when `m` exceeds the domain size.
    pub fn matching_relation(&mut self, schema: Schema, m: usize) -> Relation {
        assert!(
            m as u64 <= self.domain_size,
            "matching of size {m} impossible over domain of size {}",
            self.domain_size
        );
        let arity = schema.arity();
        let columns: Vec<Vec<Value>> = (0..arity)
            .map(|_| self.distinct_values(m))
            .collect();
        let mut rel = Relation::with_capacity(schema, m);
        let mut row: Vec<Value> = Vec::with_capacity(arity);
        for i in 0..m {
            row.clear();
            row.extend(columns.iter().map(|c| c[i]));
            rel.push_row(&row);
        }
        rel
    }

    /// A uniformly random relation: every value of every tuple drawn
    /// independently and uniformly from the domain (duplicates removed).
    pub fn uniform_relation(&mut self, schema: Schema, m: usize) -> Relation {
        let arity = schema.arity();
        let mut rel = Relation::with_capacity(schema, m);
        let mut row: Vec<Value> = Vec::with_capacity(arity);
        for _ in 0..m {
            row.clear();
            row.extend((0..arity).map(|_| self.rng.gen_range(0..self.domain_size)));
            rel.push_row(&row);
        }
        rel.dedup();
        rel
    }

    /// A relation whose first attribute follows (approximately) a Zipf
    /// distribution with parameter `theta` over `distinct` values, and whose
    /// remaining attributes are uniform. Produces naturally skewed join
    /// keys.
    pub fn zipf_relation(
        &mut self,
        schema: Schema,
        m: usize,
        distinct: usize,
        theta: f64,
    ) -> Relation {
        assert!(distinct >= 1, "need at least one distinct value");
        // Precompute the Zipf CDF.
        let weights: Vec<f64> = (1..=distinct).map(|r| 1.0 / (r as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(distinct);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let arity = schema.arity();
        let mut rel = Relation::with_capacity(schema, m);
        let mut row: Vec<Value> = Vec::with_capacity(arity);
        for _ in 0..m {
            let u: f64 = self.rng.gen();
            let rank = cdf.partition_point(|&c| c < u).min(distinct - 1);
            row.clear();
            row.push(rank as Value);
            for _ in 1..arity {
                row.push(self.rng.gen_range(0..self.domain_size));
            }
            rel.push_row(&row);
        }
        rel
    }

    /// A matching relation with planted heavy hitters: `skews` describes, for
    /// chosen columns, values that should appear with a given frequency; the
    /// remaining columns of those tuples and all other tuples are matching
    /// (degree one). Total cardinality is `m`.
    ///
    /// # Panics
    /// Panics when the skew counts exceed `m` or the light part does not fit
    /// in the domain.
    pub fn skewed_relation(&mut self, schema: Schema, m: usize, skews: &[SkewSpec]) -> Relation {
        let arity = schema.arity();
        let heavy_total: usize = skews.iter().map(|s| s.count).sum();
        assert!(
            heavy_total <= m,
            "heavy-hitter tuples ({heavy_total}) exceed requested cardinality ({m})"
        );
        for s in skews {
            assert!(
                s.attribute_index < arity,
                "skew attribute index {} out of range for arity {arity}",
                s.attribute_index
            );
        }
        let light = m - heavy_total;
        let mut relation = self.matching_relation(schema.clone(), light);
        // Fresh values for the non-heavy columns of the heavy tuples, taken
        // from the top of the domain to avoid accidental collisions with the
        // light part.
        let mut next_fresh = self.domain_size;
        let mut row: Vec<Value> = Vec::with_capacity(arity);
        for spec in skews {
            for _ in 0..spec.count {
                row.clear();
                for col in 0..arity {
                    if col == spec.attribute_index {
                        row.push(spec.value);
                    } else {
                        next_fresh -= 1;
                        row.push(next_fresh);
                    }
                }
                relation.push_row(&row);
            }
        }
        relation
    }

    /// A full database of matching relations with the given schemas and
    /// cardinalities, all over the shared domain.
    pub fn matching_database(&mut self, specs: &[(Schema, usize)]) -> crate::Database {
        let mut db = crate::Database::new(self.domain_size);
        for (schema, m) in specs {
            let r = self.matching_relation(schema.clone(), *m);
            db.insert(r);
        }
        db
    }

    /// An undirected-graph edge relation `E(src, dst)` consisting of `layers`
    /// consecutive perfect matchings between `layers + 1` vertex groups of
    /// size `group`: the "path of matchings" family used to lower-bound the
    /// number of rounds of connected components (Theorem 5.20). Each
    /// connected component is a path crossing all layers.
    pub fn layered_matching_graph(&mut self, group: usize, layers: usize) -> Relation {
        let schema = Schema::from_strs("E", &["src", "dst"]);
        let mut rel = Relation::empty(schema);
        // Vertex id of member j of group g.
        let vid = |g: usize, j: usize| (g * group + j) as Value;
        for layer in 0..layers {
            let mut perm: Vec<usize> = (0..group).collect();
            perm.shuffle(&mut self.rng);
            for (j, &pj) in perm.iter().enumerate() {
                rel.push_row(&[vid(layer, j), vid(layer + 1, pj)]);
            }
        }
        rel
    }

    /// `m` distinct values drawn without replacement from the domain.
    fn distinct_values(&mut self, m: usize) -> Vec<Value> {
        // For small m relative to the domain, rejection sampling is fast and
        // avoids materialising the domain.
        if (m as u64) * 4 <= self.domain_size {
            let mut seen = std::collections::HashSet::with_capacity(m);
            let mut out = Vec::with_capacity(m);
            while out.len() < m {
                let v = self.rng.gen_range(0..self.domain_size);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        } else {
            let mut all: Vec<Value> = (0..self.domain_size).collect();
            all.shuffle(&mut self.rng);
            all.truncate(m);
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statistics::DegreeStatistics;

    #[test]
    fn matching_relation_has_degree_one_everywhere() {
        let mut g = DataGenerator::new(1, 10_000);
        let r = g.matching_relation(Schema::from_strs("R", &["x", "y", "z"]), 500);
        assert_eq!(r.len(), 500);
        assert!(r.is_matching());
    }

    #[test]
    #[should_panic(expected = "impossible over domain")]
    fn matching_larger_than_domain_panics() {
        let mut g = DataGenerator::new(1, 10);
        g.matching_relation(Schema::from_strs("R", &["x"]), 11);
    }

    #[test]
    fn matching_is_deterministic_per_seed() {
        let schema = Schema::from_strs("R", &["x", "y"]);
        let r1 = DataGenerator::new(7, 1000).matching_relation(schema.clone(), 100);
        let r2 = DataGenerator::new(7, 1000).matching_relation(schema.clone(), 100);
        let r3 = DataGenerator::new(8, 1000).matching_relation(schema, 100);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
    }

    #[test]
    fn skewed_relation_plants_requested_frequency() {
        let mut g = DataGenerator::new(3, 100_000);
        let spec = SkewSpec {
            attribute_index: 0,
            value: 42,
            count: 50,
        };
        let r = g.skewed_relation(Schema::from_strs("R", &["x", "y"]), 200, &[spec]);
        assert_eq!(r.len(), 200);
        let d = DegreeStatistics::compute(&r, "x");
        assert!(d.frequency(42) >= 50);
        // The y column of heavy tuples must not create a second heavy value.
        let dy = DegreeStatistics::compute(&r, "y");
        assert!(dy.max_frequency() <= 2);
    }

    #[test]
    fn skewed_relation_with_multiple_specs() {
        let mut g = DataGenerator::new(3, 100_000);
        let specs = vec![
            SkewSpec { attribute_index: 0, value: 1, count: 30 },
            SkewSpec { attribute_index: 1, value: 2, count: 20 },
        ];
        let r = g.skewed_relation(Schema::from_strs("R", &["x", "y"]), 100, &specs);
        assert_eq!(r.len(), 100);
        assert!(DegreeStatistics::compute(&r, "x").frequency(1) >= 30);
        assert!(DegreeStatistics::compute(&r, "y").frequency(2) >= 20);
    }

    #[test]
    #[should_panic(expected = "exceed requested cardinality")]
    fn skew_exceeding_cardinality_panics() {
        let mut g = DataGenerator::new(3, 1000);
        let spec = SkewSpec { attribute_index: 0, value: 1, count: 11 };
        g.skewed_relation(Schema::from_strs("R", &["x", "y"]), 10, &[spec]);
    }

    #[test]
    fn zipf_relation_is_skewed() {
        let mut g = DataGenerator::new(5, 1_000_000);
        let r = g.zipf_relation(Schema::from_strs("R", &["k", "v"]), 5000, 1000, 1.2);
        assert_eq!(r.len(), 5000);
        let d = DegreeStatistics::compute(&r, "k");
        // Rank-1 value should be much more frequent than average.
        assert!(d.frequency(0) > 5 * (5000 / 1000));
    }

    #[test]
    fn uniform_relation_respects_domain() {
        let mut g = DataGenerator::new(5, 50);
        let r = g.uniform_relation(Schema::from_strs("R", &["a", "b"]), 100);
        assert!(r.len() <= 100);
        for t in r.iter() {
            assert!(t[0] < 50 && t[1] < 50);
        }
    }

    #[test]
    fn matching_database_over_shared_domain() {
        let mut g = DataGenerator::new(11, 10_000);
        let db = g.matching_database(&[
            (Schema::from_strs("S1", &["x", "y"]), 100),
            (Schema::from_strs("S2", &["y", "z"]), 200),
        ]);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.expect_relation("S1").len(), 100);
        assert_eq!(db.expect_relation("S2").len(), 200);
        assert!(db.is_matching_database());
        assert_eq!(db.domain_size(), 10_000);
    }

    #[test]
    fn layered_graph_has_expected_edge_count_and_degrees() {
        let mut g = DataGenerator::new(13, 1 << 20);
        let e = g.layered_matching_graph(50, 4);
        assert_eq!(e.len(), 200);
        // Every vertex in an interior layer has degree exactly 2 (one edge
        // to the previous and one to the next layer), so per-column degree
        // is exactly 1 in src and 1 in dst.
        assert_eq!(e.max_degree(&["src".to_string()]), 1);
        assert_eq!(e.max_degree(&["dst".to_string()]), 1);
    }
}
