//! Values and tuples.
//!
//! Domain elements are `u64` integers (the paper's domain `[n]`). A tuple is
//! an ordered vector of values; its positions are interpreted through the
//! relation's [`crate::Schema`].
//!
//! Since the flat-storage refactor, [`Tuple`] is a **boundary type**: the
//! execution hot paths work with borrowed `&[Value]` row views into a
//! relation's flat buffer, and owned tuples appear only where an owned row
//! is genuinely needed (serde payloads, `pqd`/`pqsh` output, degree-map
//! keys, test assertions).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single domain element.
pub type Value = u64;

/// An ordered tuple of domain values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Arity (number of values).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at `position`.
    pub fn get(&self, position: usize) -> Value {
        self.0[position]
    }

    /// The underlying slice of values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project the tuple onto the given positions (in the given order).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p]).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.0.clone();
        values.extend_from_slice(&other.0);
        Tuple(values)
    }

    /// Number of bits this tuple occupies when each value takes
    /// `bits_per_value` bits.
    pub fn size_bits(&self, bits_per_value: u64) -> u64 {
        self.arity() as u64 * bits_per_value
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple(values)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple(values.to_vec())
    }
}

impl std::borrow::Borrow<[Value]> for Tuple {
    /// Borrow the tuple as a row slice, so maps keyed by `Tuple` support
    /// allocation-free lookups with `&[Value]` keys (derived `Hash`/`Eq` on
    /// `Tuple` delegate to the `Vec`, which hashes and compares exactly like
    /// the slice).
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        &self.0[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tuple::from([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), 1);
        assert_eq!(t[2], 3);
        assert_eq!(t.values(), &[1, 2, 3]);
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let t = Tuple::from([10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::from([30, 10]));
        assert_eq!(t.project(&[1, 1]), Tuple::from([20, 20]));
        assert_eq!(t.project(&[]), Tuple::from(Vec::new()));
    }

    #[test]
    fn concat_appends_values() {
        let a = Tuple::from([1, 2]);
        let b = Tuple::from([3]);
        assert_eq!(a.concat(&b), Tuple::from([1, 2, 3]));
    }

    #[test]
    fn size_in_bits_scales_with_arity() {
        let t = Tuple::from([1, 2, 3]);
        assert_eq!(t.size_bits(10), 30);
        assert_eq!(Tuple::from([]).size_bits(10), 0);
    }

    #[test]
    fn display_is_parenthesised() {
        assert_eq!(Tuple::from([1, 2]).to_string(), "(1, 2)");
        assert_eq!(Tuple::from([]).to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Tuple::from([1, 2]) < Tuple::from([1, 3]));
        assert!(Tuple::from([1, 2]) < Tuple::from([2, 0]));
    }
}
