//! Data statistics: cardinalities, degree sequences and heavy hitters.
//!
//! The paper distinguishes three knowledge regimes (Table 1): cardinality
//! statistics only (`m_j` / `M_j`), skew-oblivious computation, and
//! computation with heavy-hitter information — the identities and
//! (approximate) frequencies of every value whose frequency exceeds
//! `m_j / p` (Section 4.2). This module computes all of these from concrete
//! relation instances.

use crate::relation::Relation;
use crate::tuple::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A heavy hitter: a value of some attribute whose frequency exceeds the
/// threshold `m / p`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyHitter {
    /// The attribute (query variable) in which the value is heavy.
    pub attribute: String,
    /// The heavy value.
    pub value: Value,
    /// Its frequency in the relation (`m_j(h)`).
    pub frequency: usize,
}

/// Per-attribute degree statistics of a single relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStatistics {
    /// Relation name.
    pub relation: String,
    /// Attribute the statistics are over.
    pub attribute: String,
    /// Frequency of every distinct value of that attribute.
    pub frequencies: BTreeMap<Value, usize>,
}

impl DegreeStatistics {
    /// Compute the degree statistics of `relation` over `attribute`.
    ///
    /// # Panics
    /// Panics when the attribute is not part of the relation's schema.
    pub fn compute(relation: &Relation, attribute: &str) -> Self {
        let pos = relation
            .schema()
            .position(attribute)
            .unwrap_or_else(|| panic!("attribute `{attribute}` not in `{}`", relation.name()));
        let mut frequencies: BTreeMap<Value, usize> = BTreeMap::new();
        for row in relation.iter() {
            *frequencies.entry(row[pos]).or_insert(0) += 1;
        }
        DegreeStatistics {
            relation: relation.name().to_string(),
            attribute: attribute.to_string(),
            frequencies,
        }
    }

    /// Frequency of a specific value (zero when absent).
    pub fn frequency(&self, value: Value) -> usize {
        self.frequencies.get(&value).copied().unwrap_or(0)
    }

    /// Maximum frequency over all values.
    pub fn max_frequency(&self) -> usize {
        self.frequencies.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.frequencies.len()
    }

    /// Total number of tuples counted.
    pub fn total(&self) -> usize {
        self.frequencies.values().sum()
    }

    /// The values whose frequency is strictly above `threshold`.
    pub fn heavy_hitters(&self, threshold: usize) -> Vec<HeavyHitter> {
        self.frequencies
            .iter()
            .filter(|(_, &f)| f > threshold)
            .map(|(&value, &frequency)| HeavyHitter {
                attribute: self.attribute.clone(),
                value,
                frequency,
            })
            .collect()
    }
}

/// Full statistics of a relation: cardinality, bit size and per-attribute
/// degree statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationStatistics {
    /// Relation name.
    pub relation: String,
    /// Cardinality `m_j`.
    pub cardinality: usize,
    /// Bit size `M_j`.
    pub size_bits: u64,
    /// Degree statistics keyed by attribute name.
    pub degrees: BTreeMap<String, DegreeStatistics>,
}

impl RelationStatistics {
    /// Compute statistics for a relation given the bits needed per value.
    pub fn compute(relation: &Relation, bits_per_value: u64) -> Self {
        let degrees = relation
            .schema()
            .attributes()
            .iter()
            .map(|a| (a.clone(), DegreeStatistics::compute(relation, a)))
            .collect();
        RelationStatistics {
            relation: relation.name().to_string(),
            cardinality: relation.len(),
            size_bits: relation.size_bits(bits_per_value),
            degrees,
        }
    }

    /// Heavy hitters of this relation under the paper's threshold
    /// `m_j / p` (values with frequency strictly greater than the
    /// threshold). At most `p` values per attribute can exceed it.
    pub fn heavy_hitters(&self, p: usize) -> Vec<HeavyHitter> {
        let threshold = self
            .cardinality
            .checked_div(p)
            .unwrap_or(self.cardinality);
        let mut out = Vec::new();
        for stats in self.degrees.values() {
            out.extend(stats.heavy_hitters(threshold));
        }
        out
    }

    /// Maximum frequency of any value of `attribute`.
    pub fn max_degree(&self, attribute: &str) -> usize {
        self.degrees
            .get(attribute)
            .map(|d| d.max_frequency())
            .unwrap_or(0)
    }

    /// A 64-bit fingerprint of the planner-relevant statistics: name,
    /// cardinality, bit size, and per-attribute distinct counts and maximum
    /// frequencies. Two relations with equal fingerprints look identical to
    /// a cost-based planner, so the fingerprint is a sound cache key for
    /// query plans; the full degree maps are deliberately *not* hashed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&self.relation);
        h.write_u64(self.cardinality as u64);
        h.write_u64(self.size_bits);
        for (attribute, degrees) in &self.degrees {
            h.write_str(attribute);
            h.write_u64(degrees.distinct() as u64);
            h.write_u64(degrees.max_frequency() as u64);
        }
        h.finish()
    }
}

/// Statistics of a whole database, computed in **one pass** over the data:
/// per-relation [`RelationStatistics`] (cardinalities, bit sizes, full
/// per-attribute degree maps) plus the combined fingerprint. Every consumer
/// that used to re-scan the data independently — fingerprint for the plan
/// cache, heavy-hitter detection per join variable, per-column distinct
/// counts for selectivity estimation — reads from this catalogue instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseStatistics {
    /// Per-relation statistics, keyed by relation name.
    pub relations: BTreeMap<String, RelationStatistics>,
    /// The combined fingerprint (equals [`database_fingerprint`]).
    pub fingerprint: u64,
}

impl DatabaseStatistics {
    /// Scan every relation of `database` once and build the catalogue.
    pub fn compute(database: &crate::database::Database) -> Self {
        let bpv = database.bits_per_value();
        let relations: BTreeMap<String, RelationStatistics> = database
            .relations()
            .map(|r| (r.name().to_string(), RelationStatistics::compute(r, bpv)))
            .collect();
        let mut h = Fnv1a::new();
        h.write_u64(database.domain_size());
        for stats in relations.values() {
            h.write_u64(stats.fingerprint());
        }
        DatabaseStatistics {
            relations,
            fingerprint: h.finish(),
        }
    }

    /// Statistics of one relation (None when it is not in the catalogue).
    pub fn relation(&self, name: &str) -> Option<&RelationStatistics> {
        self.relations.get(name)
    }
}

/// A 64-bit fingerprint of a whole database's planner-relevant statistics:
/// the domain size combined with every relation's
/// [`RelationStatistics::fingerprint`]. Plan caches key on this value — any
/// change of cardinality, size or skew profile changes the fingerprint and
/// invalidates the cached plan.
///
/// Convenience wrapper over [`DatabaseStatistics::compute`]; callers that
/// also need degree or distinct-count statistics should compute the full
/// catalogue once and read the fingerprint from it.
pub fn database_fingerprint(database: &crate::database::Database) -> u64 {
    DatabaseStatistics::compute(database).fingerprint
}

/// Minimal FNV-1a hasher (the workspace is offline, so no hashing crates).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for byte in s.as_bytes() {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length delimiter so `("ab","c")` and `("a","bc")` differ.
        self.write_u64(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `x`-statistics of a relation (Section 4.2.3): for a set of attributes
/// `x_j = x ∩ vars(S_j)`, the exact frequency of every tuple over those
/// attributes. Generalises cardinality statistics (empty `x`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStatistics {
    /// Relation name.
    pub relation: String,
    /// The attributes the statistics are grouped by (possibly empty).
    pub attributes: Vec<String>,
    /// Frequency `m_j(h)` of every group tuple `h`.
    pub frequencies: BTreeMap<Tuple, usize>,
}

impl GroupStatistics {
    /// Compute grouped frequencies. With an empty attribute set there is a
    /// single group (the empty tuple) whose frequency is the cardinality.
    pub fn compute(relation: &Relation, attributes: &[String]) -> Self {
        let mut frequencies: BTreeMap<Tuple, usize> = BTreeMap::new();
        if attributes.is_empty() {
            frequencies.insert(Tuple::new(vec![]), relation.len());
        } else {
            for (key, count) in relation.degree_map(attributes) {
                frequencies.insert(key, count);
            }
        }
        GroupStatistics {
            relation: relation.name().to_string(),
            attributes: attributes.to_vec(),
            frequencies,
        }
    }

    /// Frequency of a group (zero if absent).
    pub fn frequency(&self, group: &Tuple) -> usize {
        self.frequencies.get(group).copied().unwrap_or(0)
    }

    /// Sum of all group frequencies (the relation cardinality).
    pub fn total(&self) -> usize {
        self.frequencies.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn skewed_relation() -> Relation {
        // Value 7 appears 5 times in attribute x, others once.
        let mut rows = vec![];
        for i in 0..5 {
            rows.push(vec![7, 100 + i]);
        }
        for i in 0..5 {
            rows.push(vec![i, 200 + i]);
        }
        Relation::from_rows(Schema::from_strs("R", &["x", "y"]), rows)
    }

    #[test]
    fn degree_statistics_basics() {
        let r = skewed_relation();
        let d = DegreeStatistics::compute(&r, "x");
        assert_eq!(d.frequency(7), 5);
        assert_eq!(d.frequency(0), 1);
        assert_eq!(d.frequency(999), 0);
        assert_eq!(d.max_frequency(), 5);
        assert_eq!(d.distinct(), 6);
        assert_eq!(d.total(), 10);
    }

    #[test]
    fn heavy_hitter_detection() {
        let r = skewed_relation();
        let d = DegreeStatistics::compute(&r, "x");
        let hh = d.heavy_hitters(2);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].value, 7);
        assert_eq!(hh[0].frequency, 5);
        assert_eq!(hh[0].attribute, "x");
        // Threshold at the max: nothing qualifies (strict inequality).
        assert!(d.heavy_hitters(5).is_empty());
    }

    #[test]
    fn relation_statistics_threshold_m_over_p() {
        let r = skewed_relation();
        let stats = RelationStatistics::compute(&r, 8);
        assert_eq!(stats.cardinality, 10);
        assert_eq!(stats.size_bits, 10 * 2 * 8);
        // p = 4: threshold 10/4 = 2, so value 7 (freq 5) in x is heavy;
        // y values all have frequency 1.
        let hh = stats.heavy_hitters(4);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].value, 7);
        // p = 1: threshold 10, nothing heavy.
        assert!(stats.heavy_hitters(1).is_empty());
        assert_eq!(stats.max_degree("x"), 5);
        assert_eq!(stats.max_degree("y"), 1);
        assert_eq!(stats.max_degree("nonexistent"), 0);
    }

    #[test]
    fn group_statistics_over_attributes() {
        let r = skewed_relation();
        let g = GroupStatistics::compute(&r, &["x".to_string()]);
        assert_eq!(g.frequency(&Tuple::from([7])), 5);
        assert_eq!(g.total(), 10);
        // Empty grouping = cardinality statistics.
        let g0 = GroupStatistics::compute(&r, &[]);
        assert_eq!(g0.frequency(&Tuple::new(vec![])), 10);
        assert_eq!(g0.total(), 10);
    }

    #[test]
    fn fingerprints_track_planner_relevant_changes() {
        let r = skewed_relation();
        let base = RelationStatistics::compute(&r, 8).fingerprint();
        // Deterministic.
        assert_eq!(base, RelationStatistics::compute(&r, 8).fingerprint());
        // Adding a tuple changes cardinality => new fingerprint.
        let mut bigger = r.clone();
        bigger.push(Tuple::from([99, 999]));
        assert_ne!(base, RelationStatistics::compute(&bigger, 8).fingerprint());
        // Same shape under a different name => new fingerprint.
        let renamed = r.renamed("R2");
        assert_ne!(base, RelationStatistics::compute(&renamed, 8).fingerprint());
    }

    #[test]
    fn database_fingerprint_changes_with_content() {
        let mut db = crate::Database::new(1 << 10);
        db.insert(skewed_relation());
        let base = database_fingerprint(&db);
        assert_eq!(base, database_fingerprint(&db));
        db.relation_mut("R").unwrap().push(Tuple::from([5, 501]));
        assert_ne!(base, database_fingerprint(&db));
    }

    #[test]
    fn matching_relation_has_no_heavy_hitters() {
        let r = Relation::from_rows(
            Schema::from_strs("M", &["x", "y"]),
            (0..20).map(|i| vec![i, i + 100]).collect(),
        );
        let stats = RelationStatistics::compute(&r, 8);
        assert!(stats.heavy_hitters(4).is_empty());
        assert!(stats.heavy_hitters(20).is_empty());
    }
}
