//! Data statistics: cardinalities, degree sequences and heavy hitters.
//!
//! The paper distinguishes three knowledge regimes (Table 1): cardinality
//! statistics only (`m_j` / `M_j`), skew-oblivious computation, and
//! computation with heavy-hitter information — the identities and
//! (approximate) frequencies of every value whose frequency exceeds
//! `m_j / p` (Section 4.2). This module computes all of these from concrete
//! relation instances.
//!
//! Statistics can also be maintained **incrementally** for insert-only
//! deltas: [`DegreeStatistics::apply_insert`],
//! [`RelationStatistics::apply_inserts`] and
//! [`DatabaseStatistics::apply_inserts`] update cardinalities, bit sizes,
//! degree maps, the derived heavy-hitter sets and every fingerprint in
//! O(delta) instead of re-scanning the data — with the invariant, checked
//! by property tests, that the incremental result is **identical** (same
//! `PartialEq`, same fingerprints) to a recomputation from scratch.

use crate::database::Database;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A heavy hitter: a value of some attribute whose frequency exceeds the
/// threshold `m / p`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyHitter {
    /// The attribute (query variable) in which the value is heavy.
    pub attribute: String,
    /// The heavy value.
    pub value: Value,
    /// Its frequency in the relation (`m_j(h)`).
    pub frequency: usize,
}

/// Per-attribute degree statistics of a single relation.
///
/// The maximum frequency is cached alongside the map so that fingerprints
/// (and the skew checks reading them) stay O(1) per attribute even as
/// degree maps are maintained incrementally; treat the `frequencies` field
/// as read-only and mutate only through [`DegreeStatistics::apply_insert`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStatistics {
    /// Relation name.
    pub relation: String,
    /// Attribute the statistics are over.
    pub attribute: String,
    /// Frequency of every distinct value of that attribute.
    pub frequencies: BTreeMap<Value, usize>,
    /// Cached maximum of `frequencies` (inserts can only raise it).
    max_frequency: usize,
}

impl DegreeStatistics {
    /// Compute the degree statistics of `relation` over `attribute`.
    ///
    /// # Panics
    /// Panics when the attribute is not part of the relation's schema.
    pub fn compute(relation: &Relation, attribute: &str) -> Self {
        let pos = relation
            .schema()
            .position(attribute)
            .unwrap_or_else(|| panic!("attribute `{attribute}` not in `{}`", relation.name()));
        let mut frequencies: BTreeMap<Value, usize> = BTreeMap::new();
        for row in relation.iter() {
            *frequencies.entry(row[pos]).or_insert(0) += 1;
        }
        let max_frequency = frequencies.values().copied().max().unwrap_or(0);
        DegreeStatistics {
            relation: relation.name().to_string(),
            attribute: attribute.to_string(),
            frequencies,
            max_frequency,
        }
    }

    /// Count one inserted value: bump its frequency and the cached maximum.
    /// O(log distinct) — the insert-only incremental maintenance path.
    pub fn apply_insert(&mut self, value: Value) {
        let frequency = self.frequencies.entry(value).or_insert(0);
        *frequency += 1;
        self.max_frequency = self.max_frequency.max(*frequency);
    }

    /// Frequency of a specific value (zero when absent).
    pub fn frequency(&self, value: Value) -> usize {
        self.frequencies.get(&value).copied().unwrap_or(0)
    }

    /// Maximum frequency over all values (cached; O(1)).
    pub fn max_frequency(&self) -> usize {
        self.max_frequency
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.frequencies.len()
    }

    /// Total number of tuples counted.
    pub fn total(&self) -> usize {
        self.frequencies.values().sum()
    }

    /// The values whose frequency is strictly above `threshold`.
    pub fn heavy_hitters(&self, threshold: usize) -> Vec<HeavyHitter> {
        self.frequencies
            .iter()
            .filter(|(_, &f)| f > threshold)
            .map(|(&value, &frequency)| HeavyHitter {
                attribute: self.attribute.clone(),
                value,
                frequency,
            })
            .collect()
    }
}

/// Full statistics of a relation: cardinality, bit size and per-attribute
/// degree statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationStatistics {
    /// Relation name.
    pub relation: String,
    /// Cardinality `m_j`.
    pub cardinality: usize,
    /// Bit size `M_j`.
    pub size_bits: u64,
    /// Degree statistics keyed by attribute name.
    pub degrees: BTreeMap<String, DegreeStatistics>,
}

impl RelationStatistics {
    /// Compute statistics for a relation given the bits needed per value.
    pub fn compute(relation: &Relation, bits_per_value: u64) -> Self {
        let degrees = relation
            .schema()
            .attributes()
            .iter()
            .map(|a| (a.clone(), DegreeStatistics::compute(relation, a)))
            .collect();
        RelationStatistics {
            relation: relation.name().to_string(),
            cardinality: relation.len(),
            size_bits: relation.size_bits(bits_per_value),
            degrees,
        }
    }

    /// Fold an insert-only delta into the statistics: cardinality, bit
    /// size and every per-attribute degree map (and with them the derived
    /// heavy-hitter sets and the fingerprint) are updated in O(delta),
    /// never re-scanning the relation. The result is identical to
    /// recomputing from the relation after the insert.
    ///
    /// # Panics
    /// Panics when `schema` does not name this relation, when an attribute
    /// is missing from the degree catalogue, or when a row's arity does not
    /// match the schema.
    pub fn apply_inserts<'a>(
        &mut self,
        schema: &Schema,
        rows: impl IntoIterator<Item = &'a [Value]>,
        bits_per_value: u64,
    ) {
        assert_eq!(
            schema.name(),
            self.relation,
            "schema names `{}` but the statistics are for `{}`",
            schema.name(),
            self.relation
        );
        let attributes = schema.attributes();
        for row in rows {
            assert_eq!(
                row.len(),
                attributes.len(),
                "row arity mismatch for relation `{}`",
                self.relation
            );
            self.cardinality += 1;
            for (attribute, &value) in attributes.iter().zip(row) {
                self.degrees
                    .get_mut(attribute)
                    .unwrap_or_else(|| {
                        panic!("attribute `{attribute}` not in the catalogue of `{}`", schema.name())
                    })
                    .apply_insert(value);
            }
        }
        // M_j = a_j · m_j · log n, so the new bit size follows from the new
        // cardinality directly.
        self.size_bits = attributes.len() as u64 * self.cardinality as u64 * bits_per_value;
    }

    /// Heavy hitters of this relation under the paper's threshold
    /// `m_j / p` (values with frequency strictly greater than the
    /// threshold). At most `p` values per attribute can exceed it.
    pub fn heavy_hitters(&self, p: usize) -> Vec<HeavyHitter> {
        let threshold = self
            .cardinality
            .checked_div(p)
            .unwrap_or(self.cardinality);
        let mut out = Vec::new();
        for stats in self.degrees.values() {
            out.extend(stats.heavy_hitters(threshold));
        }
        out
    }

    /// Maximum frequency of any value of `attribute`.
    pub fn max_degree(&self, attribute: &str) -> usize {
        self.degrees
            .get(attribute)
            .map(|d| d.max_frequency())
            .unwrap_or(0)
    }

    /// A 64-bit fingerprint of the planner-relevant statistics: name,
    /// cardinality, bit size, and per-attribute distinct counts and maximum
    /// frequencies. Two relations with equal fingerprints look identical to
    /// a cost-based planner, so the fingerprint is a sound cache key for
    /// query plans; the full degree maps are deliberately *not* hashed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&self.relation);
        h.write_u64(self.cardinality as u64);
        h.write_u64(self.size_bits);
        for (attribute, degrees) in &self.degrees {
            h.write_str(attribute);
            h.write_u64(degrees.distinct() as u64);
            h.write_u64(degrees.max_frequency() as u64);
        }
        h.finish()
    }
}

/// Statistics of a whole database, computed in **one pass** over the data:
/// per-relation [`RelationStatistics`] (cardinalities, bit sizes, full
/// per-attribute degree maps) plus the combined fingerprint. Every consumer
/// that used to re-scan the data independently — fingerprint for the plan
/// cache, heavy-hitter detection per join variable, per-column distinct
/// counts for selectivity estimation — reads from this catalogue instead.
///
/// Per-relation statistics sit behind [`Arc`], mirroring the per-relation
/// copy-on-write of [`Database`]: cloning a catalogue is shallow, and the
/// incremental paths ([`DatabaseStatistics::apply_inserts`],
/// [`DatabaseStatistics::compute_reusing`]) rebuild only the touched
/// relations' entries while untouched ones keep being shared — which is
/// also how tests *assert* that nothing was recomputed (`Arc::ptr_eq`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseStatistics {
    /// Per-relation statistics, keyed by relation name.
    pub relations: BTreeMap<String, Arc<RelationStatistics>>,
    /// The combined fingerprint (equals [`database_fingerprint`]).
    pub fingerprint: u64,
    /// Domain size of the analysed database — needed to recombine the
    /// fingerprint after incremental maintenance.
    domain_size: u64,
}

impl DatabaseStatistics {
    /// Scan every relation of `database` once and build the catalogue.
    pub fn compute(database: &Database) -> Self {
        let bpv = database.bits_per_value();
        let relations: BTreeMap<String, Arc<RelationStatistics>> = database
            .relations()
            .map(|r| {
                (
                    r.name().to_string(),
                    Arc::new(RelationStatistics::compute(r, bpv)),
                )
            })
            .collect();
        let domain_size = database.domain_size();
        DatabaseStatistics {
            fingerprint: combined_fingerprint(domain_size, &relations),
            relations,
            domain_size,
        }
    }

    /// Build the catalogue for `database`, **reusing** the statistics of
    /// every relation whose shared row buffer is pointer-equal to the one
    /// `previous` was computed from (see [`Database::relation_arc`]) — the
    /// copy-on-write mutation path: after an edit that touched one relation
    /// of a cloned database, only that relation is re-scanned.
    pub fn compute_reusing(
        database: &Database,
        previous_database: &Database,
        previous: &DatabaseStatistics,
    ) -> Self {
        if database.domain_size() != previous_database.domain_size() {
            // A different domain changes the bits-per-value accounting of
            // every relation; nothing is reusable.
            return DatabaseStatistics::compute(database);
        }
        let bpv = database.bits_per_value();
        let relations: BTreeMap<String, Arc<RelationStatistics>> = database
            .relation_arcs()
            .map(|(name, rows)| {
                let reusable = previous_database
                    .relation_arc(name)
                    .filter(|old| Arc::ptr_eq(old, rows))
                    .and_then(|_| previous.relations.get(name));
                let stats = match reusable {
                    Some(shared) => Arc::clone(shared),
                    None => Arc::new(RelationStatistics::compute(rows, bpv)),
                };
                (name.to_string(), stats)
            })
            .collect();
        let domain_size = database.domain_size();
        DatabaseStatistics {
            fingerprint: combined_fingerprint(domain_size, &relations),
            relations,
            domain_size,
        }
    }

    /// Fold an insert-only delta for one relation into the catalogue in
    /// O(delta): the touched relation's entry is copied once
    /// (copy-on-write) and updated via [`RelationStatistics::apply_inserts`],
    /// every other entry keeps being shared, and the combined fingerprint is
    /// recombined from the per-relation fingerprints (O(relations), no data
    /// scan). Identical to recomputing from the post-insert database.
    ///
    /// # Panics
    /// Panics when the relation named by `schema` is not in the catalogue,
    /// or on any arity/attribute mismatch (see
    /// [`RelationStatistics::apply_inserts`]).
    pub fn apply_inserts<'a>(
        &mut self,
        schema: &Schema,
        rows: impl IntoIterator<Item = &'a [Value]>,
    ) {
        let bpv = crate::bits_per_value(self.domain_size);
        let stats = self
            .relations
            .get_mut(schema.name())
            .unwrap_or_else(|| panic!("relation `{}` not in the catalogue", schema.name()));
        Arc::make_mut(stats).apply_inserts(schema, rows, bpv);
        self.fingerprint = combined_fingerprint(self.domain_size, &self.relations);
    }

    /// The domain size of the database this catalogue was computed from.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Statistics of one relation (None when it is not in the catalogue).
    pub fn relation(&self, name: &str) -> Option<&RelationStatistics> {
        self.relations.get(name).map(Arc::as_ref)
    }
}

/// Combine the domain size and every relation's fingerprint (in name
/// order) into the database fingerprint. O(relations × attributes) thanks
/// to the cached per-attribute maxima — no degree map is walked.
fn combined_fingerprint(
    domain_size: u64,
    relations: &BTreeMap<String, Arc<RelationStatistics>>,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(domain_size);
    for stats in relations.values() {
        h.write_u64(stats.fingerprint());
    }
    h.finish()
}

/// A 64-bit fingerprint of a whole database's planner-relevant statistics:
/// the domain size combined with every relation's
/// [`RelationStatistics::fingerprint`]. Plan caches key on this value — any
/// change of cardinality, size or skew profile changes the fingerprint and
/// invalidates the cached plan.
///
/// Convenience wrapper over [`DatabaseStatistics::compute`]; callers that
/// also need degree or distinct-count statistics should compute the full
/// catalogue once and read the fingerprint from it.
pub fn database_fingerprint(database: &crate::database::Database) -> u64 {
    DatabaseStatistics::compute(database).fingerprint
}

/// Minimal FNV-1a hasher (the workspace is offline, so no hashing crates).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for byte in s.as_bytes() {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length delimiter so `("ab","c")` and `("a","bc")` differ.
        self.write_u64(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// `x`-statistics of a relation (Section 4.2.3): for a set of attributes
/// `x_j = x ∩ vars(S_j)`, the exact frequency of every tuple over those
/// attributes. Generalises cardinality statistics (empty `x`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStatistics {
    /// Relation name.
    pub relation: String,
    /// The attributes the statistics are grouped by (possibly empty).
    pub attributes: Vec<String>,
    /// Frequency `m_j(h)` of every group tuple `h`.
    pub frequencies: BTreeMap<Tuple, usize>,
}

impl GroupStatistics {
    /// Compute grouped frequencies. With an empty attribute set there is a
    /// single group (the empty tuple) whose frequency is the cardinality.
    pub fn compute(relation: &Relation, attributes: &[String]) -> Self {
        let mut frequencies: BTreeMap<Tuple, usize> = BTreeMap::new();
        if attributes.is_empty() {
            frequencies.insert(Tuple::new(vec![]), relation.len());
        } else {
            for (key, count) in relation.degree_map(attributes) {
                frequencies.insert(key, count);
            }
        }
        GroupStatistics {
            relation: relation.name().to_string(),
            attributes: attributes.to_vec(),
            frequencies,
        }
    }

    /// Frequency of a group (zero if absent).
    pub fn frequency(&self, group: &Tuple) -> usize {
        self.frequencies.get(group).copied().unwrap_or(0)
    }

    /// Sum of all group frequencies (the relation cardinality).
    pub fn total(&self) -> usize {
        self.frequencies.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn skewed_relation() -> Relation {
        // Value 7 appears 5 times in attribute x, others once.
        let mut rows = vec![];
        for i in 0..5 {
            rows.push(vec![7, 100 + i]);
        }
        for i in 0..5 {
            rows.push(vec![i, 200 + i]);
        }
        Relation::from_rows(Schema::from_strs("R", &["x", "y"]), rows)
    }

    #[test]
    fn degree_statistics_basics() {
        let r = skewed_relation();
        let d = DegreeStatistics::compute(&r, "x");
        assert_eq!(d.frequency(7), 5);
        assert_eq!(d.frequency(0), 1);
        assert_eq!(d.frequency(999), 0);
        assert_eq!(d.max_frequency(), 5);
        assert_eq!(d.distinct(), 6);
        assert_eq!(d.total(), 10);
    }

    #[test]
    fn heavy_hitter_detection() {
        let r = skewed_relation();
        let d = DegreeStatistics::compute(&r, "x");
        let hh = d.heavy_hitters(2);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].value, 7);
        assert_eq!(hh[0].frequency, 5);
        assert_eq!(hh[0].attribute, "x");
        // Threshold at the max: nothing qualifies (strict inequality).
        assert!(d.heavy_hitters(5).is_empty());
    }

    #[test]
    fn relation_statistics_threshold_m_over_p() {
        let r = skewed_relation();
        let stats = RelationStatistics::compute(&r, 8);
        assert_eq!(stats.cardinality, 10);
        assert_eq!(stats.size_bits, 10 * 2 * 8);
        // p = 4: threshold 10/4 = 2, so value 7 (freq 5) in x is heavy;
        // y values all have frequency 1.
        let hh = stats.heavy_hitters(4);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].value, 7);
        // p = 1: threshold 10, nothing heavy.
        assert!(stats.heavy_hitters(1).is_empty());
        assert_eq!(stats.max_degree("x"), 5);
        assert_eq!(stats.max_degree("y"), 1);
        assert_eq!(stats.max_degree("nonexistent"), 0);
    }

    #[test]
    fn group_statistics_over_attributes() {
        let r = skewed_relation();
        let g = GroupStatistics::compute(&r, &["x".to_string()]);
        assert_eq!(g.frequency(&Tuple::from([7])), 5);
        assert_eq!(g.total(), 10);
        // Empty grouping = cardinality statistics.
        let g0 = GroupStatistics::compute(&r, &[]);
        assert_eq!(g0.frequency(&Tuple::new(vec![])), 10);
        assert_eq!(g0.total(), 10);
    }

    #[test]
    fn fingerprints_track_planner_relevant_changes() {
        let r = skewed_relation();
        let base = RelationStatistics::compute(&r, 8).fingerprint();
        // Deterministic.
        assert_eq!(base, RelationStatistics::compute(&r, 8).fingerprint());
        // Adding a tuple changes cardinality => new fingerprint.
        let mut bigger = r.clone();
        bigger.push(Tuple::from([99, 999]));
        assert_ne!(base, RelationStatistics::compute(&bigger, 8).fingerprint());
        // Same shape under a different name => new fingerprint.
        let renamed = r.renamed("R2");
        assert_ne!(base, RelationStatistics::compute(&renamed, 8).fingerprint());
    }

    #[test]
    fn database_fingerprint_changes_with_content() {
        let mut db = crate::Database::new(1 << 10);
        db.insert(skewed_relation());
        let base = database_fingerprint(&db);
        assert_eq!(base, database_fingerprint(&db));
        db.relation_mut("R").unwrap().push(Tuple::from([5, 501]));
        assert_ne!(base, database_fingerprint(&db));
    }

    #[test]
    fn apply_insert_tracks_frequencies_and_cached_maximum() {
        let r = skewed_relation();
        let mut d = DegreeStatistics::compute(&r, "x");
        d.apply_insert(0); // 1 -> 2, below the max of 5
        assert_eq!(d.frequency(0), 2);
        assert_eq!(d.max_frequency(), 5);
        for _ in 0..4 {
            d.apply_insert(3); // 1 -> 5, ties the max
        }
        assert_eq!(d.max_frequency(), 5);
        d.apply_insert(3); // 6, a new max
        assert_eq!(d.max_frequency(), 6);
        // Brand-new value.
        d.apply_insert(777);
        assert_eq!(d.frequency(777), 1);
        assert_eq!(d.distinct(), 7);
    }

    #[test]
    fn relation_apply_inserts_matches_recompute() {
        let mut r = skewed_relation();
        let mut stats = RelationStatistics::compute(&r, 8);
        let schema = r.schema().clone();
        let delta: Vec<Vec<Value>> = vec![vec![7, 300], vec![42, 301], vec![7, 300]];
        stats.apply_inserts(&schema, delta.iter().map(Vec::as_slice), 8);
        for row in &delta {
            r.push_row(row);
        }
        let recomputed = RelationStatistics::compute(&r, 8);
        assert_eq!(stats, recomputed);
        assert_eq!(stats.fingerprint(), recomputed.fingerprint());
        assert_eq!(stats.cardinality, 13);
        assert_eq!(stats.size_bits, 13 * 2 * 8);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn relation_apply_inserts_rejects_ragged_rows() {
        let r = skewed_relation();
        let mut stats = RelationStatistics::compute(&r, 8);
        let schema = r.schema().clone();
        stats.apply_inserts(&schema, std::iter::once(&[1u64][..]), 8);
    }

    fn two_relation_db() -> crate::Database {
        let mut db = crate::Database::new(1 << 10);
        db.insert(skewed_relation());
        db.insert(Relation::from_rows(
            Schema::from_strs("S", &["y", "z"]),
            vec![vec![100, 1], vec![101, 2]],
        ));
        db
    }

    #[test]
    fn database_apply_inserts_matches_recompute_and_shares_untouched_entries() {
        let mut db = two_relation_db();
        let mut stats = DatabaseStatistics::compute(&db);
        let untouched_before = Arc::clone(&stats.relations["S"]);
        let schema = db.relation("R").unwrap().schema().clone();
        stats.apply_inserts(&schema, std::iter::once(&[7u64, 999][..]));
        db.relation_mut("R").unwrap().push(Tuple::from([7, 999]));
        let recomputed = DatabaseStatistics::compute(&db);
        assert_eq!(stats, recomputed, "incremental == from-scratch");
        assert_eq!(stats.fingerprint, recomputed.fingerprint);
        assert!(
            Arc::ptr_eq(&stats.relations["S"], &untouched_before),
            "untouched relation's statistics stay shared, not recomputed"
        );
    }

    #[test]
    fn compute_reusing_shares_statistics_of_pointer_equal_relations() {
        let before = two_relation_db();
        let previous = DatabaseStatistics::compute(&before);
        let mut after = before.clone();
        after.relation_mut("R").unwrap().push(Tuple::from([7, 999]));
        let next = DatabaseStatistics::compute_reusing(&after, &before, &previous);
        assert_eq!(next, DatabaseStatistics::compute(&after));
        assert!(
            Arc::ptr_eq(&next.relations["S"], &previous.relations["S"]),
            "S's rows are pointer-equal, so its statistics are reused"
        );
        assert!(
            !Arc::ptr_eq(&next.relations["R"], &previous.relations["R"]),
            "R changed and was re-analysed"
        );
    }

    #[test]
    fn matching_relation_has_no_heavy_hitters() {
        let r = Relation::from_rows(
            Schema::from_strs("M", &["x", "y"]),
            (0..20).map(|i| vec![i, i + 100]).collect(),
        );
        let stats = RelationStatistics::compute(&r, 8);
        assert!(stats.heavy_hitters(4).is_empty());
        assert!(stats.heavy_hitters(20).is_empty());
    }
}
