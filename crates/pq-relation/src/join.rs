//! Sequential join evaluation.
//!
//! Two uses:
//!
//! 1. **Local computation** — after the communication phase each simulated
//!    server evaluates its residual query over the tuples it received; the
//!    MPC model does not charge for this, so any in-memory algorithm is
//!    admissible. We use hash-based natural joins with a greedy
//!    most-connected-first ordering.
//! 2. **Correctness oracle** — tests compare every distributed algorithm's
//!    output against [`natural_join_all`] run on the full database.
//!
//! Attribute names double as query-variable names, so the natural join over
//! shared attribute names is exactly conjunctive-query evaluation for the
//! instantiated atoms.
//!
//! The build/probe loops are **allocation-free per row**: attribute
//! positions are resolved to position vectors once per join (no `String`
//! comparison inside loops), the build-side index hashes key slices in place
//! with the seeded mixer of [`crate::hash`] (no key tuple, no SipHash), the
//! output is pre-sized from the build-side match counts, and output rows are
//! emitted by `extend_from_slice` into the flat buffer.
//!
//! **Morsel parallelism.** When the calling thread has a `pq-exec` pool
//! installed (the engine installs its pool around execution; cluster
//! workers install theirs around `local_answer`), a large probe side is
//! split into fixed-size morsels of [`MORSEL_ROWS`] rows. Every morsel
//! probes the same shared read-only `RowKeyIndex` build, emits into its
//! own exactly pre-sized buffer, and the buffers are concatenated in morsel
//! order — so the output is byte-identical to the sequential path at any
//! pool size. Small inputs (and pool size 1) take the sequential path
//! unconditionally.

use crate::hash::hash_key;
use crate::relation::Relation;
use crate::rowindex::RowKeyIndex;
use crate::schema::Schema;
use crate::tuple::Value;

/// Natural join of two relations over their shared attribute names.
///
/// The output schema is the left schema followed by the right attributes
/// that are not shared; the output name is `"{left}⋈{right}"`.
/// With no shared attributes this is the Cartesian product.
pub fn natural_join(left: &Relation, right: &Relation) -> Relation {
    let common = left.schema().common_attributes(right.schema());
    let left_positions: Vec<usize> = common
        .iter()
        .map(|a| left.schema().position(a).expect("common attr in left"))
        .collect();
    let right_positions: Vec<usize> = common
        .iter()
        .map(|a| right.schema().position(a).expect("common attr in right"))
        .collect();
    // Right attributes not in common, found by a position-set lookup (one
    // boolean mask) instead of scanning `common` per attribute.
    let mut right_is_common = vec![false; right.arity()];
    for &p in &right_positions {
        right_is_common[p] = true;
    }
    let right_extra: Vec<usize> = (0..right.arity())
        .filter(|&p| !right_is_common[p])
        .collect();

    let mut out_attrs: Vec<String> = left.schema().attributes().to_vec();
    out_attrs.extend(
        right_extra
            .iter()
            .map(|&p| right.schema().attributes()[p].clone()),
    );
    let out_schema = Schema::new(format!("{}⋈{}", left.name(), right.name()), out_attrs);
    let mut out = Relation::empty(out_schema);
    if left.is_empty() || right.is_empty() {
        return out;
    }

    if common.is_empty() {
        // Cartesian product, exactly pre-sized.
        out.reserve_rows(left.len() * right.len());
        for lrow in left.iter() {
            for rrow in right.iter() {
                push_joined(&mut out, lrow, rrow, &right_extra);
            }
        }
        return out;
    }

    // Build a hash index on the smaller side keyed by the join attributes,
    // and stream the larger side over it. The output row format is the same
    // either way (left row followed by the extra right attributes), so the
    // choice of build side never changes the output schema or contents.
    let spec = if right.len() <= left.len() {
        JoinSpec {
            probe: left,
            probe_positions: &left_positions,
            build: right,
            build_positions: &right_positions,
            index: RowKeyIndex::build(right, &right_positions),
            right_extra: &right_extra,
            build_is_left: false,
        }
    } else {
        JoinSpec {
            probe: right,
            probe_positions: &right_positions,
            build: left,
            build_positions: &left_positions,
            index: RowKeyIndex::build(left, &left_positions),
            right_extra: &right_extra,
            build_is_left: true,
        }
    };

    let n = spec.probe.len();
    let pool = pq_exec::current().filter(|p| p.threads() > 1);
    match pool {
        // Morsel-parallel path: split the probe side into fixed-size row
        // ranges over the shared read-only build index. Each morsel emits
        // into its own pre-sized buffer; in-order concatenation makes the
        // output identical to the sequential path.
        Some(pool) if n >= 2 * MORSEL_ROWS => {
            let ranges: Vec<(usize, usize)> = (0..n)
                .step_by(MORSEL_ROWS)
                .map(|lo| (lo, (lo + MORSEL_ROWS).min(n)))
                .collect();
            let parts = pool.map_indexed(&ranges, |_, &(lo, hi)| {
                let mut values = Vec::new();
                let rows = spec.probe_range(lo, hi, &mut values);
                (values, rows)
            });
            let total: usize = parts.iter().map(|(values, _)| values.len()).sum();
            out.values.reserve(total);
            for (values, rows) in parts {
                out.values.extend_from_slice(&values);
                out.rows += rows;
            }
        }
        _ => {
            out.rows = spec.probe_range(0, n, &mut out.values);
        }
    }
    out
}

/// Probe-side rows per parallel task. Coarse enough that per-morsel
/// bookkeeping (two passes over the range, one buffer append) is noise
/// next to the hash probes; fine enough that a skewed key leaves the other
/// workers with plenty of morsels to steal.
pub const MORSEL_ROWS: usize = 4096;

/// Everything one probe pass needs, resolved once per join so both the
/// sequential path and every parallel morsel share the exact same loop.
struct JoinSpec<'a> {
    probe: &'a Relation,
    probe_positions: &'a [usize],
    build: &'a Relation,
    build_positions: &'a [usize],
    index: RowKeyIndex,
    right_extra: &'a [usize],
    /// Which side of the output the build rows land on: output rows are
    /// always the *left* row followed by the extra *right* columns,
    /// independent of which side was indexed.
    build_is_left: bool,
}

impl JoinSpec<'_> {
    /// Probe rows `lo..hi` against the build index, appending output rows to
    /// `values` (exactly pre-sized from the build-side match counts) and
    /// returning the number of rows emitted.
    fn probe_range(&self, lo: usize, hi: usize, values: &mut Vec<Value>) -> usize {
        // First pass: hash every probe key once and sum the build-side
        // match counts to pre-size the output buffer.
        let mut hashes: Vec<u64> = Vec::with_capacity(hi - lo);
        let mut expected = 0usize;
        for r in lo..hi {
            let h = hash_key(self.probe.row(r), self.probe_positions);
            expected += self.index.count_for_hash(h);
            hashes.push(h);
        }
        let out_arity = self.probe.arity() + self.build.arity() - self.build_positions.len();
        values.reserve(expected * out_arity);
        let mut rows = 0usize;
        for (k, &h) in hashes.iter().enumerate() {
            let prow = self.probe.row(lo + k);
            for i in self.index.candidates(h) {
                let brow = self.build.row(i);
                if !keys_match(prow, self.probe_positions, brow, self.build_positions) {
                    continue;
                }
                let (lrow, rrow) = if self.build_is_left {
                    (brow, prow)
                } else {
                    (prow, brow)
                };
                values.extend_from_slice(lrow);
                values.extend(self.right_extra.iter().map(|&p| rrow[p]));
                rows += 1;
            }
        }
        rows
    }
}

/// Do two rows agree on their respective key positions?
#[inline]
fn keys_match(
    lrow: &[Value],
    left_positions: &[usize],
    rrow: &[Value],
    right_positions: &[usize],
) -> bool {
    left_positions
        .iter()
        .zip(right_positions.iter())
        .all(|(&lp, &rp)| lrow[lp] == rrow[rp])
}

/// Emit one output row — the left row followed by the extra right columns —
/// straight into the flat buffer.
#[inline]
fn push_joined(out: &mut Relation, lrow: &[Value], rrow: &[Value], right_extra: &[usize]) {
    out.values.extend_from_slice(lrow);
    out.values.extend(right_extra.iter().map(|&p| rrow[p]));
    out.rows += 1;
}

/// Natural join of a list of relations, using a greedy ordering that always
/// joins in a relation sharing at least one attribute with the accumulated
/// result when possible (avoiding needless Cartesian products).
///
/// The accumulator is renamed to `⋈{k}` (with `k` the number of relations
/// absorbed so far) after every step, so wide queries never build an
/// unbounded `A⋈B⋈C⋈…` name string.
///
/// Returns an empty nullary relation when the input list is empty.
pub fn natural_join_all(relations: &[Relation]) -> Relation {
    if relations.is_empty() {
        return Relation::empty(Schema::new("⊤", vec![]));
    }
    let mut remaining: Vec<&Relation> = relations.iter().collect();
    // Start from the smallest relation: cheap and a decent heuristic.
    let start = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.len())
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut acc = remaining.remove(start).clone();
    let mut joined = 1usize;
    while !remaining.is_empty() {
        // Prefer a relation sharing attributes with the accumulator; for
        // disconnected queries (no such relation) the Cartesian step picks
        // the smallest remaining relation, like the connected case.
        let next = remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| !acc.schema().common_attributes(r.schema()).is_empty())
            .min_by_key(|(_, r)| r.len())
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.len())
                    .map(|(i, _)| i)
                    .expect("non-empty remaining")
            });
        let r = remaining.remove(next);
        acc = natural_join(&acc, r);
        joined += 1;
        acc.rename(format!("⋈{joined}"));
    }
    acc
}

/// Project a relation onto the given attributes with set semantics and a
/// fresh name (convenience wrapper used for query heads).
pub fn project(relation: &Relation, attributes: &[String], name: &str) -> Relation {
    let mut out = relation.project(attributes, name);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, Tuple};

    fn r(name: &str, attrs: &[&str], rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, attrs), rows)
    }

    #[test]
    fn binary_join_on_one_attribute() {
        let left = r("R", &["x", "y"], vec![vec![1, 10], vec![2, 20], vec![3, 10]]);
        let right = r("S", &["y", "z"], vec![vec![10, 100], vec![20, 200], vec![30, 300]]);
        let j = natural_join(&left, &right).canonicalized();
        assert_eq!(
            j.schema().attributes(),
            &["x".to_string(), "y".to_string(), "z".to_string()]
        );
        assert_eq!(
            j.to_tuples(),
            vec![
                Tuple::from([1, 10, 100]),
                Tuple::from([2, 20, 200]),
                Tuple::from([3, 10, 100]),
            ]
        );
    }

    #[test]
    fn build_side_choice_does_not_change_the_output() {
        // Larger right side: the index is built on the (smaller) left, but
        // the result must be identical to the right-build case.
        let small = r("R", &["x", "y"], vec![vec![1, 10], vec![2, 20]]);
        let big = r(
            "S",
            &["y", "z"],
            vec![vec![10, 100], vec![10, 101], vec![20, 200], vec![30, 300], vec![40, 400]],
        );
        let forward = natural_join(&small, &big).canonicalized();
        assert_eq!(
            forward.schema().attributes(),
            &["x".to_string(), "y".to_string(), "z".to_string()]
        );
        assert_eq!(
            forward.to_tuples(),
            vec![
                Tuple::from([1, 10, 100]),
                Tuple::from([1, 10, 101]),
                Tuple::from([2, 20, 200]),
            ]
        );
        // Swapping the sides swaps the schema prefix but yields the same
        // rows up to column order.
        let backward = natural_join(&big, &small);
        assert_eq!(
            backward.schema().attributes(),
            &["y".to_string(), "z".to_string(), "x".to_string()]
        );
        let reordered = backward
            .project(
                &["x".to_string(), "y".to_string(), "z".to_string()],
                "j",
            )
            .canonicalized();
        assert_eq!(reordered.to_tuples(), forward.to_tuples());
    }

    #[test]
    fn join_all_accumulator_name_stays_bounded() {
        let rels: Vec<Relation> = (0..12)
            .map(|j| {
                r(
                    &format!("S{j}"),
                    &[&format!("x{j}"), &format!("x{}", j + 1)],
                    (0..5).map(|i| vec![i, i]).collect(),
                )
            })
            .collect();
        let out = natural_join_all(&rels);
        assert_eq!(out.len(), 5);
        // Bounded name, not the concatenation of all twelve inputs.
        assert!(out.name().len() < 8, "unbounded name `{}`", out.name());
    }

    #[test]
    fn join_without_common_attributes_is_cartesian_product() {
        let left = r("R", &["x"], vec![vec![1], vec![2]]);
        let right = r("S", &["y"], vec![vec![10], vec![20], vec![30]]);
        let j = natural_join(&left, &right);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn join_with_empty_relation_is_empty() {
        let left = r("R", &["x", "y"], vec![vec![1, 2]]);
        let right = r("S", &["y", "z"], vec![]);
        assert!(natural_join(&left, &right).is_empty());
    }

    #[test]
    fn join_over_two_shared_attributes() {
        let left = r("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]);
        let right = r("S", &["x", "y"], vec![vec![1, 2], vec![3, 5]]);
        let j = natural_join(&left, &right);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0), &[1, 2]);
    }

    #[test]
    fn triangle_query_via_three_way_join() {
        // C3 = S1(x,y), S2(y,z), S3(z,x); single triangle (1,2,3) plus noise.
        let s1 = r("S1", &["x", "y"], vec![vec![1, 2], vec![5, 6]]);
        let s2 = r("S2", &["y", "z"], vec![vec![2, 3], vec![6, 9]]);
        let s3 = r("S3", &["z", "x"], vec![vec![3, 1], vec![7, 5]]);
        let out = natural_join_all(&[s1, s2, s3]).canonicalized();
        assert_eq!(out.len(), 1);
        let t = out.row(0).to_vec();
        let sch = out.schema().clone();
        let x = t[sch.position("x").unwrap()];
        let y = t[sch.position("y").unwrap()];
        let z = t[sch.position("z").unwrap()];
        assert_eq!((x, y, z), (1, 2, 3));
    }

    #[test]
    fn join_all_of_single_relation_is_identity() {
        let only = r("R", &["x"], vec![vec![1], vec![2]]);
        let out = natural_join_all(std::slice::from_ref(&only));
        assert_eq!(out.canonicalized().to_tuples(), only.canonicalized().to_tuples());
    }

    #[test]
    fn join_all_of_empty_list_is_nullary_empty() {
        let out = natural_join_all(&[]);
        assert_eq!(out.arity(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn greedy_order_handles_disconnected_queries() {
        // R(x), S(y): a Cartesian product is unavoidable but must still be
        // computed correctly.
        let a = r("R", &["x"], vec![vec![1], vec![2]]);
        let b = r("S", &["y"], vec![vec![7]]);
        let out = natural_join_all(&[a, b]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn disconnected_fallback_picks_the_smallest_remaining_relation() {
        // Accumulator starts from the smallest relation (T, 1 row). Both R
        // and S are disconnected from T; the Cartesian step must absorb the
        // *smaller* of the two first, keeping the intermediate at 1·2 = 2
        // rows instead of 1·3 = 3. Output size is invariant either way, so
        // we check order via the schema: T's attr, then S's, then R's.
        let big = r("R", &["x"], vec![vec![1], vec![2], vec![3]]);
        let small = r("S", &["y"], vec![vec![7], vec![8]]);
        let tiny = r("T", &["w"], vec![vec![0]]);
        let out = natural_join_all(&[big, small, tiny]);
        assert_eq!(out.len(), 6);
        assert_eq!(
            out.schema().attributes(),
            &["w".to_string(), "y".to_string(), "x".to_string()]
        );
    }

    #[test]
    fn star_query_join() {
        // T2 = S1(z, x1), S2(z, x2).
        let s1 = r("S1", &["z", "x1"], vec![vec![1, 10], vec![1, 11], vec![2, 20]]);
        let s2 = r("S2", &["z", "x2"], vec![vec![1, 100], vec![2, 200], vec![3, 300]]);
        let out = natural_join_all(&[s1, s2]);
        assert_eq!(out.len(), 3); // (1,10,100), (1,11,100), (2,20,200)
    }

    #[test]
    fn morsel_parallel_join_is_byte_identical_to_sequential() {
        // Probe side large enough for the parallel path (≥ 2 morsels),
        // with repeated keys so morsels emit different row counts.
        let m = 2 * MORSEL_ROWS + 777;
        let left_rows: Vec<Vec<u64>> = (0..m as u64).map(|i| vec![i, i % 97]).collect();
        let right_rows: Vec<Vec<u64>> = (0..97u64).flat_map(|y| [vec![y, y + 1000], vec![y, y + 2000]]).collect();
        let left = r("R", &["x", "y"], left_rows);
        let right = r("S", &["y", "z"], right_rows);
        let sequential = natural_join(&left, &right);
        for threads in [2, 4] {
            let pool = pq_exec::TaskPool::new(threads);
            let parallel = pool.install(|| natural_join(&left, &right));
            assert_eq!(parallel.schema().attributes(), sequential.schema().attributes());
            assert_eq!(parallel.len(), sequential.len());
            assert!(
                parallel.iter().zip(sequential.iter()).all(|(a, b)| a == b),
                "rows must match in order at pool size {threads}"
            );
            assert!(pool.stats().tasks > 0, "the probe must run on the pool");
        }
        // Build side as the big side: probe is still the bigger relation.
        let swapped_seq = natural_join(&right, &left);
        let pool = pq_exec::TaskPool::new(4);
        let swapped_par = pool.install(|| natural_join(&right, &left));
        assert_eq!(swapped_par.len(), swapped_seq.len());
        assert!(swapped_par.iter().zip(swapped_seq.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn project_applies_set_semantics() {
        let rel = r("R", &["x", "y"], vec![vec![1, 2], vec![1, 3]]);
        let p = project(&rel, &["x".to_string()], "P");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn long_chain_query_join() {
        // L4: S1(x0,x1), S2(x1,x2), S3(x2,x3), S4(x3,x4) over matchings of
        // the identity permutation: every i yields one path.
        let mk = |name: &str, a: &str, b: &str| {
            r(name, &[a, b], (0..50).map(|i| vec![i, i]).collect())
        };
        let rels = vec![
            mk("S1", "x0", "x1"),
            mk("S2", "x1", "x2"),
            mk("S3", "x2", "x3"),
            mk("S4", "x3", "x4"),
        ];
        let out = natural_join_all(&rels);
        assert_eq!(out.len(), 50);
        assert_eq!(out.arity(), 5);
    }
}
