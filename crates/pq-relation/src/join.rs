//! Sequential join evaluation.
//!
//! Two uses:
//!
//! 1. **Local computation** — after the communication phase each simulated
//!    server evaluates its residual query over the tuples it received; the
//!    MPC model does not charge for this, so any in-memory algorithm is
//!    admissible. We use hash-based natural joins with a greedy
//!    most-connected-first ordering.
//! 2. **Correctness oracle** — tests compare every distributed algorithm's
//!    output against [`natural_join_all`] run on the full database.
//!
//! Attribute names double as query-variable names, so the natural join over
//! shared attribute names is exactly conjunctive-query evaluation for the
//! instantiated atoms.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Natural join of two relations over their shared attribute names.
///
/// The output schema is the left schema followed by the right attributes
/// that are not shared; the output name is `"{left}⋈{right}"`.
/// With no shared attributes this is the Cartesian product.
pub fn natural_join(left: &Relation, right: &Relation) -> Relation {
    let common = left.schema().common_attributes(right.schema());
    let left_positions: Vec<usize> = common
        .iter()
        .map(|a| left.schema().position(a).expect("common attr in left"))
        .collect();
    let right_positions: Vec<usize> = common
        .iter()
        .map(|a| right.schema().position(a).expect("common attr in right"))
        .collect();
    // Right attributes not in common, with their positions.
    let right_extra: Vec<(String, usize)> = right
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .filter(|(_, a)| !common.contains(a))
        .map(|(i, a)| (a.clone(), i))
        .collect();

    let mut out_attrs: Vec<String> = left.schema().attributes().to_vec();
    out_attrs.extend(right_extra.iter().map(|(a, _)| a.clone()));
    let out_schema = Schema::new(
        format!("{}⋈{}", left.name(), right.name()),
        out_attrs,
    );
    let mut out = Relation::empty(out_schema);

    // Build a hash index on the smaller side keyed by the join attributes,
    // and stream the larger side over it. The output row format is the same
    // either way (left tuple followed by the extra right attributes), so the
    // choice of build side never changes the output schema or contents.
    if right.len() <= left.len() {
        let mut index: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
        for t in right.iter() {
            index.entry(t.project(&right_positions)).or_default().push(t);
        }
        for lt in left.iter() {
            let key = lt.project(&left_positions);
            if let Some(matches) = index.get(&key) {
                for rt in matches {
                    let extra: Vec<u64> =
                        right_extra.iter().map(|&(_, pos)| rt.get(pos)).collect();
                    out.push(lt.concat(&Tuple::new(extra)));
                }
            }
        }
    } else {
        let mut index: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
        for t in left.iter() {
            index.entry(t.project(&left_positions)).or_default().push(t);
        }
        for rt in right.iter() {
            let key = rt.project(&right_positions);
            if let Some(matches) = index.get(&key) {
                let extra: Vec<u64> = right_extra.iter().map(|&(_, pos)| rt.get(pos)).collect();
                let extra = Tuple::new(extra);
                for lt in matches {
                    out.push(lt.concat(&extra));
                }
            }
        }
    }
    out
}

/// Natural join of a list of relations, using a greedy ordering that always
/// joins in a relation sharing at least one attribute with the accumulated
/// result when possible (avoiding needless Cartesian products).
///
/// The accumulator is renamed to `⋈{k}` (with `k` the number of relations
/// absorbed so far) after every step, so wide queries never build an
/// unbounded `A⋈B⋈C⋈…` name string.
///
/// Returns an empty nullary relation when the input list is empty.
pub fn natural_join_all(relations: &[Relation]) -> Relation {
    if relations.is_empty() {
        return Relation::empty(Schema::new("⊤", vec![]));
    }
    let mut remaining: Vec<&Relation> = relations.iter().collect();
    // Start from the smallest relation: cheap and a decent heuristic.
    let start = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.len())
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut acc = remaining.remove(start).clone();
    let mut joined = 1usize;
    while !remaining.is_empty() {
        // Prefer a relation sharing attributes with the accumulator.
        let next = remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| !acc.schema().common_attributes(r.schema()).is_empty())
            .min_by_key(|(_, r)| r.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let r = remaining.remove(next);
        acc = natural_join(&acc, r);
        joined += 1;
        acc.rename(format!("⋈{joined}"));
    }
    acc
}

/// Project a relation onto the given attributes with set semantics and a
/// fresh name (convenience wrapper used for query heads).
pub fn project(relation: &Relation, attributes: &[String], name: &str) -> Relation {
    let mut out = relation.project(attributes, name);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn r(name: &str, attrs: &[&str], rows: Vec<Vec<u64>>) -> Relation {
        Relation::from_rows(Schema::from_strs(name, attrs), rows)
    }

    #[test]
    fn binary_join_on_one_attribute() {
        let left = r("R", &["x", "y"], vec![vec![1, 10], vec![2, 20], vec![3, 10]]);
        let right = r("S", &["y", "z"], vec![vec![10, 100], vec![20, 200], vec![30, 300]]);
        let j = natural_join(&left, &right).canonicalized();
        assert_eq!(
            j.schema().attributes(),
            &["x".to_string(), "y".to_string(), "z".to_string()]
        );
        assert_eq!(
            j.tuples(),
            &[
                Tuple::from([1, 10, 100]),
                Tuple::from([2, 20, 200]),
                Tuple::from([3, 10, 100]),
            ]
        );
    }

    #[test]
    fn build_side_choice_does_not_change_the_output() {
        // Larger right side: the index is built on the (smaller) left, but
        // the result must be identical to the right-build case.
        let small = r("R", &["x", "y"], vec![vec![1, 10], vec![2, 20]]);
        let big = r(
            "S",
            &["y", "z"],
            vec![vec![10, 100], vec![10, 101], vec![20, 200], vec![30, 300], vec![40, 400]],
        );
        let forward = natural_join(&small, &big).canonicalized();
        assert_eq!(
            forward.schema().attributes(),
            &["x".to_string(), "y".to_string(), "z".to_string()]
        );
        assert_eq!(
            forward.tuples(),
            &[
                Tuple::from([1, 10, 100]),
                Tuple::from([1, 10, 101]),
                Tuple::from([2, 20, 200]),
            ]
        );
        // Swapping the sides swaps the schema prefix but yields the same
        // rows up to column order.
        let backward = natural_join(&big, &small);
        assert_eq!(
            backward.schema().attributes(),
            &["y".to_string(), "z".to_string(), "x".to_string()]
        );
        let reordered = backward
            .project(
                &["x".to_string(), "y".to_string(), "z".to_string()],
                "j",
            )
            .canonicalized();
        assert_eq!(reordered.tuples(), forward.tuples());
    }

    #[test]
    fn join_all_accumulator_name_stays_bounded() {
        let rels: Vec<Relation> = (0..12)
            .map(|j| {
                r(
                    &format!("S{j}"),
                    &[&format!("x{j}"), &format!("x{}", j + 1)],
                    (0..5).map(|i| vec![i, i]).collect(),
                )
            })
            .collect();
        let out = natural_join_all(&rels);
        assert_eq!(out.len(), 5);
        // Bounded name, not the concatenation of all twelve inputs.
        assert!(out.name().len() < 8, "unbounded name `{}`", out.name());
    }

    #[test]
    fn join_without_common_attributes_is_cartesian_product() {
        let left = r("R", &["x"], vec![vec![1], vec![2]]);
        let right = r("S", &["y"], vec![vec![10], vec![20], vec![30]]);
        let j = natural_join(&left, &right);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn join_with_empty_relation_is_empty() {
        let left = r("R", &["x", "y"], vec![vec![1, 2]]);
        let right = r("S", &["y", "z"], vec![]);
        assert!(natural_join(&left, &right).is_empty());
    }

    #[test]
    fn join_over_two_shared_attributes() {
        let left = r("R", &["x", "y"], vec![vec![1, 2], vec![3, 4]]);
        let right = r("S", &["x", "y"], vec![vec![1, 2], vec![3, 5]]);
        let j = natural_join(&left, &right);
        assert_eq!(j.len(), 1);
        assert_eq!(j.tuples()[0], Tuple::from([1, 2]));
    }

    #[test]
    fn triangle_query_via_three_way_join() {
        // C3 = S1(x,y), S2(y,z), S3(z,x); single triangle (1,2,3) plus noise.
        let s1 = r("S1", &["x", "y"], vec![vec![1, 2], vec![5, 6]]);
        let s2 = r("S2", &["y", "z"], vec![vec![2, 3], vec![6, 9]]);
        let s3 = r("S3", &["z", "x"], vec![vec![3, 1], vec![7, 5]]);
        let out = natural_join_all(&[s1, s2, s3]).canonicalized();
        assert_eq!(out.len(), 1);
        let t = &out.tuples()[0];
        let sch = out.schema().clone();
        let x = t.get(sch.position("x").unwrap());
        let y = t.get(sch.position("y").unwrap());
        let z = t.get(sch.position("z").unwrap());
        assert_eq!((x, y, z), (1, 2, 3));
    }

    #[test]
    fn join_all_of_single_relation_is_identity() {
        let only = r("R", &["x"], vec![vec![1], vec![2]]);
        let out = natural_join_all(std::slice::from_ref(&only));
        assert_eq!(out.canonicalized().tuples(), only.canonicalized().tuples());
    }

    #[test]
    fn join_all_of_empty_list_is_nullary_empty() {
        let out = natural_join_all(&[]);
        assert_eq!(out.arity(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn greedy_order_handles_disconnected_queries() {
        // R(x), S(y): a Cartesian product is unavoidable but must still be
        // computed correctly.
        let a = r("R", &["x"], vec![vec![1], vec![2]]);
        let b = r("S", &["y"], vec![vec![7]]);
        let out = natural_join_all(&[a, b]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn star_query_join() {
        // T2 = S1(z, x1), S2(z, x2).
        let s1 = r("S1", &["z", "x1"], vec![vec![1, 10], vec![1, 11], vec![2, 20]]);
        let s2 = r("S2", &["z", "x2"], vec![vec![1, 100], vec![2, 200], vec![3, 300]]);
        let out = natural_join_all(&[s1, s2]);
        assert_eq!(out.len(), 3); // (1,10,100), (1,11,100), (2,20,200)
    }

    #[test]
    fn project_applies_set_semantics() {
        let rel = r("R", &["x", "y"], vec![vec![1, 2], vec![1, 3]]);
        let p = project(&rel, &["x".to_string()], "P");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn long_chain_query_join() {
        // L4: S1(x0,x1), S2(x1,x2), S3(x2,x3), S4(x3,x4) over matchings of
        // the identity permutation: every i yields one path.
        let mk = |name: &str, a: &str, b: &str| {
            r(name, &[a, b], (0..50).map(|i| vec![i, i]).collect())
        };
        let rels = vec![
            mk("S1", "x0", "x1"),
            mk("S2", "x1", "x2"),
            mk("S3", "x2", "x3"),
            mk("S4", "x3", "x4"),
        ];
        let out = natural_join_all(&rels);
        assert_eq!(out.len(), 50);
        assert_eq!(out.arity(), 5);
    }
}
